"""Figure 8: single-drive recording process for a 25 GB disc.

Paper: the burning speed ramps from ~4X up to almost 12X over the disc
(text quotes an average of 8.2X), totalling 675 seconds for one disc.
The bench regenerates the speed-vs-progress series, the average multiple
and the total time by burning one full-size declared image on a drive.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro import units
from repro.drives import OpticalDrive
from repro.drives.speed import ZonedCAVCurve
from repro.media.disc import BD25, OpticalDisc
from repro.sim import Engine

#: Progress sample points mirroring the paper's Figure 8 x-axis.
SAMPLE_POINTS = [0.0, 0.098, 0.23, 0.382, 0.555, 0.749, 0.964]


def run_fig8():
    curve = ZonedCAVCurve()
    series = [
        {"progress": p, "speed_x": round(curve.speed_multiple(p), 2)}
        for p in SAMPLE_POINTS
    ]
    engine = Engine()
    drive = OpticalDrive(engine, "drv")
    drive.open_tray()
    drive.insert_disc(OpticalDisc("d", BD25))
    drive.close_tray()
    size = 24_990 * units.MB

    def burn():
        result = yield from drive.burn(b"x", logical_size=size, label="img")
        return result

    result = engine.run_process(burn())
    burn_seconds = result.elapsed_seconds - 2.0  # minus spin-up
    average = size / burn_seconds / units.BLU_RAY_1X
    return series, burn_seconds, average


def test_fig8_single_drive_25gb(benchmark):
    series, seconds, average = benchmark.pedantic(
        run_fig8, rounds=1, iterations=1
    )
    print_table("Figure 8: 25 GB single-drive burn curve", series)
    summary = [
        {
            "metric": "total burn time (s)",
            "paper": 675,
            "measured": round(seconds, 1),
        },
        {
            "metric": "average speed (X)",
            "paper": 8.2,
            "measured": round(average, 2),
        },
        {
            "metric": "final speed (X)",
            "paper": "~12",
            "measured": series[-1]["speed_x"],
        },
    ]
    print_table("Figure 8: summary", summary)
    record_result("fig8_single_25gb", {"series": series, "summary": summary})
    assert seconds == pytest.approx(675.0, rel=0.02)
    assert average == pytest.approx(8.2, rel=0.02)
    speeds = [row["speed_x"] for row in series]
    assert speeds == sorted(speeds)  # monotone ramp (CAV shape)
    assert speeds[0] == pytest.approx(4.5, abs=0.1)
    assert speeds[-1] > 11.7
