"""Figure 9: aggregate throughput of 12 drives burning 25 GB discs.

Paper: the drives do not start simultaneously; the aggregate peaks around
380 MB/s "for only a short period of time", averages 268 MB/s, and the
whole array takes 1146 seconds (vs 675 s for one disc alone).

The model reproduces this with the controller's serialized image staging
(start stagger) and the shared streaming ceiling (BurnThrottle): late in
the run the CAV ramps of many drives together would exceed the HBA path,
so the throttle flat-tops the aggregate curve.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro import units
from repro.drives import DriveSet
from repro.media.disc import BD25, OpticalDisc
from repro.sim import Delay, Engine, Spawn


def run_fig9(sample_every=20.0):
    engine = Engine()
    drive_set = DriveSet(engine, 0)
    for index, drive in enumerate(drive_set.drives):
        drive.open_tray()
        drive.insert_disc(OpticalDisc(f"d{index}", BD25))
        drive.close_tray()
    size = 24_990 * units.MB
    images = [(b"x", size, f"img-{i}") for i in range(12)]
    samples = []

    def sampler():
        while True:
            yield Delay(sample_every)
            demand = drive_set.throttle.total_demand
            factor = drive_set.throttle.factor()
            samples.append((engine.now, demand * factor / units.MB))
            if not any(d.is_busy for d in drive_set.drives) and engine.now > 100:
                return

    def main():
        yield Spawn(sampler())
        results = yield from drive_set.burn_array(images)
        return results

    results = engine.run_process(main())
    total_seconds = engine.now
    total_bytes = 12 * size
    average = total_bytes / total_seconds / units.MB
    peak = max(rate for _, rate in samples)
    return samples, total_seconds, average, peak, results


def test_fig9_aggregate_burn(benchmark):
    samples, seconds, average, peak, results = benchmark.pedantic(
        run_fig9, rounds=1, iterations=1
    )
    assert all(result.completed for result in results)
    series = [
        {"t_s": round(t, 0), "aggregate_mb_s": round(rate, 1)}
        for t, rate in samples[:: max(1, len(samples) // 16)]
    ]
    print_table("Figure 9: aggregate burn throughput over time", series)
    summary = [
        {"metric": "array total time (s)", "paper": 1146, "measured": round(seconds, 0)},
        {"metric": "average throughput (MB/s)", "paper": 268, "measured": round(average, 1)},
        {"metric": "peak throughput (MB/s)", "paper": "~380", "measured": round(peak, 1)},
    ]
    print_table("Figure 9: summary", summary)
    record_result("fig9_aggregate_25gb", {"series": series, "summary": summary})
    # Shape: total well above single-disc 675 s; peak at the ceiling,
    # held only for part of the run; average in the paper's ballpark.
    assert seconds == pytest.approx(1146.0, rel=0.10)
    assert average == pytest.approx(268.0, rel=0.10)
    assert peak == pytest.approx(380.0, rel=0.05)
    at_peak = sum(1 for _, rate in samples if rate > 0.97 * peak)
    assert at_peak < len(samples) / 2  # "maintained for only a short period"
