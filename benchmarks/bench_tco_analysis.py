"""§2.1: TCO of a 1 PB / 100-year datacenter by media technology.

Paper (citing Gupta et al.): "the TCO of an optical disc based datacenter
is 250K$/PB, about 1/3 of an HDD-based datacenter, 1/2 of a tape-based
datacenter."
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro.reliability.tco import TCOInputs, compare_all


def run_tco():
    comparison = compare_all(TCOInputs())
    rows = []
    paper = {"optical": 1.0, "hdd": 3.0, "tape": 2.0, "ssd": None}
    for name in ("optical", "tape", "hdd", "ssd"):
        data = comparison[name]
        rows.append(
            {
                "media": name,
                "total_k$": round(data["total"] / 1000, 0),
                "vs_optical": round(data["vs_optical"], 2),
                "paper_vs_optical": paper[name] or "-",
                "media_k$": round(data["breakdown"]["media"] / 1000, 0),
                "migration_k$": round(data["breakdown"]["migration"] / 1000, 0),
                "energy_k$": round(data["breakdown"]["energy"] / 1000, 0),
            }
        )
    return rows


def test_tco_analysis(benchmark):
    rows = benchmark.pedantic(run_tco, rounds=1, iterations=1)
    print_table("§2.1 TCO: 1 PB preserved for 100 years", rows)
    record_result("tco_analysis", rows)
    by_name = {row["media"]: row for row in rows}
    assert by_name["optical"]["total_k$"] == pytest.approx(250, rel=0.1)
    assert by_name["hdd"]["vs_optical"] == pytest.approx(3.0, rel=0.15)
    assert by_name["tape"]["vs_optical"] == pytest.approx(2.0, rel=0.15)
    # Shape: optical < tape < hdd < ssd.
    totals = [by_name[m]["total_k$"] for m in ("optical", "tape", "hdd", "ssd")]
    assert totals == sorted(totals)


def test_tco_crossover_horizon(benchmark):
    """Extension: where does optical overtake HDD?  Short horizons favour
    HDD (no media premium amortized); the crossover sits well inside one
    HDD lifetime."""

    def sweep():
        crossover = None
        for years in range(2, 40):
            comparison = compare_all(TCOInputs(horizon_years=years))
            if comparison["hdd"]["total"] > comparison["optical"]["total"]:
                crossover = years
                break
        return crossover

    crossover = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "TCO crossover sweep",
        [{"metric": "optical beats HDD from year", "measured": crossover}],
    )
    record_result("tco_crossover", [{"crossover_years": crossover}])
    assert crossover is not None
    assert crossover <= 10
