"""Extension: 50-year preservation with periodic scrubbing (§4.7 applied).

The paper argues optical media last 50+ years and that the 11+1 parity
schema plus idle-time scrubbing handles sector decay.  This bench runs an
accelerated-aging experiment: burned arrays age period by period (an
artificially elevated per-period sector error rate so the simulation-scale
disc actually decays), with or without scrubbing between periods, and
reports how much data survives each regime.

Deterministic: aging draws come from seeded RNG streams.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro.errors import SectorError
from repro.media.errors_model import SectorErrorModel
from repro.sim.rng import DeterministicRNG
from tests.conftest import make_ros

PERIODS = 10  # "decades"
#: per-period sector error probability, accelerated so small discs decay
AGING_RATE = 1.0e-3
#: independent accelerated-aging trials (deterministic per seed)
SEEDS = (5, 7, 11, 13)


def build_vault(seed):
    ros = make_ros()
    payloads = {}
    for index in range(12):
        path = f"/vault/f{index:02d}.bin"
        payloads[path] = bytes([index + 1]) * 20000
        ros.write(path, payloads[path])
    ros.flush()
    return ros, payloads


def age_all_discs(ros, model):
    errors = 0
    for roller in ros.mech.rollers:
        for tray in roller.trays.values():
            for disc in tray.discs():
                if disc.tracks:
                    errors += model.age_disc(disc)
    return errors


def count_readable(ros, payloads):
    readable = 0
    for path, payload in payloads.items():
        image = ros.stat(path)["locations"][0]
        ros.cache.evict(image)
        try:
            if ros.read(path).data == payload:
                readable += 1
        except (SectorError, Exception):  # noqa: BLE001
            continue
    return readable


def run_regime(scrub: bool, seed: int):
    ros, payloads = build_vault(seed)
    model = SectorErrorModel(
        DeterministicRNG(seed).child("aging"), sector_error_rate=AGING_RATE
    )
    injected = 0
    repaired = 0
    for period in range(PERIODS):
        injected += age_all_discs(ros, model)
        if scrub:
            for (roller, address), images in list(ros.mc.array_images.items()):
                if ros.mc.state_of(roller, address).value != "Used":
                    continue
                try:
                    report = ros.run(ros.mi.scrub_array(roller, address))
                    repaired += len(report["repaired"])
                except Exception:  # noqa: BLE001 — array beyond repair
                    continue
            ros.flush()  # re-burn any repaired images
    readable = count_readable(ros, payloads)
    return {
        "files_total": len(payloads),
        "files_readable": readable,
        "sector_errors": injected,
        "images_repaired": repaired,
    }


def test_longevity_with_and_without_scrubbing(benchmark):
    def trials():
        rows = []
        for seed in SEEDS:
            scrubbed = run_regime(scrub=True, seed=seed)
            unscrubbed = run_regime(scrub=False, seed=seed)
            rows.append(
                {
                    "seed": seed,
                    "scrubbed_readable": scrubbed["files_readable"],
                    "unscrubbed_readable": unscrubbed["files_readable"],
                    "of": scrubbed["files_total"],
                    "repairs": scrubbed["images_repaired"],
                    "errors": scrubbed["sector_errors"],
                }
            )
        return rows

    rows = benchmark.pedantic(trials, rounds=1, iterations=1)
    print_table(
        f"50-year accelerated aging ({PERIODS} periods @ {AGING_RATE:g}/sector, "
        f"{len(SEEDS)} trials)",
        rows,
    )
    record_result("longevity", rows)
    scrub_total = sum(row["scrubbed_readable"] for row in rows)
    noscrub_total = sum(row["unscrubbed_readable"] for row in rows)
    files_total = sum(row["of"] for row in rows)
    # Decay happened, scrubbing repaired things, and per-trial the
    # scrubbed vault never does worse.
    assert any(row["errors"] > 0 for row in rows)
    assert sum(row["repairs"] for row in rows) >= 1
    for row in rows:
        assert row["scrubbed_readable"] >= row["unscrubbed_readable"]
    # Aggregate: scrubbing preserves clearly more of the archive.
    assert scrub_total > noscrub_total
    assert scrub_total / files_total > 0.9
