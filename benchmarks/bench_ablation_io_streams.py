"""§4.7 ablation: one shared RAID volume vs multiple independent volumes.

The paper identifies four concurrent intensive streams — user writes,
parity reads, parity writes, burn-staging reads — and warns they "might
interfere each other to worsen overall performance", which is why ROS
schedules them onto independent RAID volumes.  The bench runs the four
streams under both policies and reports each stream's completion time.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro import units
from repro.sim import AllOf, Engine, Spawn
from repro.storage import IOStreamScheduler, StreamKind, Volume

STREAMS = [
    (StreamKind.USER_WRITE, "write", 4 * units.GB),
    (StreamKind.PARITY_READ, "read", 4 * units.GB),
    (StreamKind.PARITY_WRITE, "write", 4 * units.GB),
    (StreamKind.BURN_READ, "read", 4 * units.GB),
]


def make_volumes(engine, count):
    return [
        Volume(
            engine,
            f"raid5-{index}",
            read_throughput=1.2 * units.GB,
            write_throughput=1.0 * units.GB,
            capacity=units.TB,
            access_latency=0.0004,
        )
        for index in range(count)
    ]


def run_policy(policy: str, volume_count: int):
    engine = Engine()
    scheduler = IOStreamScheduler(make_volumes(engine, volume_count), policy)
    finish_times = {}

    def stream(kind, direction, nbytes):
        volume = scheduler.volume_for(kind)
        if direction == "read":
            yield from volume.read(nbytes)
        else:
            yield from volume.write(nbytes)
        finish_times[kind.value] = engine.now

    def main():
        procs = []
        for kind, direction, nbytes in STREAMS:
            procs.append(
                (yield Spawn(stream(kind, direction, nbytes), name=kind.value))
            )
        yield AllOf(procs)

    engine.run_process(main())
    return finish_times, engine.now


def test_ablation_io_stream_scheduling(benchmark):
    def run_both():
        shared = run_policy("shared", 2)
        partitioned = run_policy("partitioned", 2)
        return shared, partitioned

    (shared, shared_end), (part, part_end) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    rows = []
    for kind, _, nbytes in STREAMS:
        rows.append(
            {
                "stream": kind.value,
                "GB": nbytes / units.GB,
                "shared_s": round(shared[kind.value], 2),
                "partitioned_s": round(part[kind.value], 2),
                "speedup": round(shared[kind.value] / part[kind.value], 2),
            }
        )
    rows.append(
        {
            "stream": "ALL (makespan)",
            "GB": sum(n for _, _, n in STREAMS) / units.GB,
            "shared_s": round(shared_end, 2),
            "partitioned_s": round(part_end, 2),
            "speedup": round(shared_end / part_end, 2),
        }
    )
    print_table("§4.7 ablation: shared vs partitioned volumes", rows)
    record_result("ablation_io_streams", rows)
    # Partitioning finishes every stream sooner, and the user-write
    # stream (the client-visible one) improves the most strongly.
    assert part_end < shared_end
    assert part["user-write"] < shared["user-write"] / 1.5
