"""§4.7: system-level redundancy — array error rates and scrub/repair.

Paper: disc sector error rate ~1e-16; the 11+1 RAID-5 schema brings a
disc array to ~1e-23; the 10+2 RAID-6 schema to ~1e-40.  The bench checks
the analytical rates and exercises the full repair path (corrupt disc ->
parity reconstruction -> rewrite) end to end.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro.reliability import raid5_array_error_rate, raid6_array_error_rate
from repro.reliability.model import array_error_rate


def run_rates():
    return [
        {
            "schema": "11 data + 1 parity (RAID-5)",
            "paper": "~1e-23",
            "measured": raid5_array_error_rate(),
        },
        {
            "schema": "10 data + 2 parity (RAID-6)",
            "paper": "~1e-40",
            "measured": raid6_array_error_rate(),
        },
        {
            "schema": "12 data, no parity",
            "paper": "-",
            "measured": array_error_rate(parity=0),
        },
    ]


def test_reliability_rates(benchmark):
    rows = benchmark.pedantic(run_rates, rounds=1, iterations=1)
    print_table("§4.7: disc-array unrecoverable error rates", rows)
    record_result("reliability_rates", rows)
    raid5 = rows[0]["measured"]
    raid6 = rows[1]["measured"]
    none = rows[2]["measured"]
    assert 1e-24 < raid5 < 1e-22  # paper: ~1e-23
    assert raid6 < raid5 * 1e-12  # many orders below RAID-5
    assert none > raid5 * 1e6  # parity buys ~7+ orders


def test_reliability_end_to_end_repair(benchmark):
    """Corrupt a burned disc, scrub, verify every file still reads."""

    def scenario():
        from repro.media.errors_model import SectorErrorModel
        from repro.sim.rng import DeterministicRNG
        from tests.conftest import make_ros

        ros = make_ros()
        payloads = {}
        for index in range(8):
            path = f"/rel/f{index}.bin"
            payloads[path] = bytes([index + 3]) * 15000
            ros.write(path, payloads[path])
        ros.flush()
        (roller, address) = next(iter(ros.mc.array_images))
        images = ros.mc.array_images[(roller, address)]
        victim = next(i for i in images if not i.startswith("par-"))
        disc_id = ros.dim.record(victim).disc_id
        tray = ros.mech.rollers[roller].tray_at(address)
        disc = next(d for d in tray.discs() if d.disc_id == disc_id)
        model = SectorErrorModel(DeterministicRNG(2), sector_error_rate=0.0)
        model.corrupt_exact(disc, [disc.tracks[0].start_sector])
        report = ros.run(ros.mi.scrub_array(roller, address, model))
        ok = all(ros.read(p).data == payloads[p] for p in payloads)
        return report, ok

    report, ok = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "§4.7: scrub + parity repair",
        [
            {
                "discs_checked": report["checked"],
                "errors_found": report["errors"],
                "images_repaired": len(report["repaired"]),
                "all_files_readable": ok,
            }
        ],
    )
    record_result(
        "reliability_repair",
        [{"errors": report["errors"], "repaired": len(report["repaired"]), "ok": ok}],
    )
    assert report["errors"] == 1
    assert len(report["repaired"]) == 1
    assert ok
