"""§2.2 / §5.3 / §6: inline accessibility vs conventional alternatives.

The paper's core claim: "the latency for accessing a file is lower than
60 ms regardless of file size, which is far better than conventional
archival system which has minutes-level latency", and LTFS-style tape
POSIX pays linear seek per access.  The bench puts the three access models
side by side on the same 1 MB-file request.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro import units
from repro.baselines import ConventionalArchivalSystem, LTFSTapeModel
from repro.frontend import make_stack
from tests.conftest import make_ros


def run_comparison():
    # ROS: a warm read through the full samba+OLFS stack.
    ros = make_ros()
    make_stack("samba+OLFS").attach(ros.pi)
    payload = b"m" * (1 * units.MB)
    ros.write("/cmp/file.bin", payload)
    result = ros.read("/cmp/file.bin")
    ros_latency = result.total_seconds

    archival = ConventionalArchivalSystem()
    ltfs = LTFSTapeModel()
    return [
        {
            "system": "ROS (samba+OLFS, hits disks)",
            "latency_s": round(ros_latency, 4),
            "inline": True,
        },
        {
            "system": "LTFS tape (mounted, mean seek)",
            "latency_s": round(
                ltfs.read_latency(1 * units.MB, 0.5, mounted=True), 1
            ),
            "inline": True,
        },
        {
            "system": "LTFS tape (incl. mount)",
            "latency_s": round(ltfs.read_latency(1 * units.MB, 0.5), 1),
            "inline": True,
        },
        {
            "system": "conventional archival restore",
            "latency_s": round(archival.restore_latency(1 * units.MB), 1),
            "inline": False,
        },
    ]


def test_inline_accessibility_comparison(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table("Inline accessibility: 1 MB file access latency", rows)
    record_result("inline_vs_archival", rows)
    ros_latency = rows[0]["latency_s"]
    # "lower than 60 ms regardless of file size" (§5.3)
    assert ros_latency < 0.060
    # minutes-level for the backup-system path (§2.2)
    assert rows[-1]["latency_s"] > 120
    # LTFS pays tens of seconds of linear seek (§6)
    assert rows[1]["latency_s"] > 10
    assert ros_latency * 100 < rows[1]["latency_s"]


def test_latency_independent_of_file_size(benchmark):
    """§5.3: OLFS's disk-hit latency stays sub-60 ms across sizes."""

    def sweep():
        ros = make_ros(bucket_capacity=64 * 1024 * 1024)
        make_stack("samba+OLFS").attach(ros.pi)
        rows = []
        for size in (1 * units.KB, 100 * units.KB, 1 * units.MB, 8 * units.MB):
            path = f"/sz/f{size}.bin"
            ros.write(path, b"s" * int(size))
            result = ros.read(path)
            rows.append(
                {
                    "file_size": int(size),
                    "read_latency_ms": round(result.total_seconds * 1e3, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Read latency vs file size (disk hits)", rows)
    record_result("latency_vs_size", rows)
    for row in rows:
        assert row["read_latency_ms"] < 60.0
