"""§4.2: recovering the Metadata Volume from discs.

Paper: "As an experiment, ROS took half an hour to recover MV from 120
discs."  The bench populates a namespace large enough that its MV
snapshot spans 120 discs (10 arrays of 11 data + 1 parity at the scaled
bucket size), burns the checkpoint, wipes MV and measures the timed
scan-and-rebuild.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from tests.conftest import make_ros


def run_recovery():
    ros = make_ros(
        data_discs=11,
        parity_discs=1,
        bucket_capacity=64 * 1024,
        auto_burn=False,
    )
    # Enough index files that the snapshot needs ~110 data images:
    # each image carries ~48 KB of snapshot; target ~5.3 MB of snapshot.
    files = 21_500
    for index in range(files):
        ros.write(f"/ns/d{index % 40:02d}/f{index:05d}", b"x")
    tasks = ros.checkpoint_mv()
    metadata_images = [
        record
        for record in ros.dim.records.values()
        if record.image_id.startswith("mv-")
    ]
    discs_burned = sum(
        len(images)
        for images in ros.mc.array_images.values()
        if any(i.startswith("mv-") for i in images)
    )
    paths_before = len(ros.mv.all_index_paths())
    ros.mv.load_snapshot(b'{"state": {}, "entries": []}')
    start = ros.now
    snapshot_id, discs_read = ros.recover_mv()
    elapsed = ros.now - start
    paths_after = len(ros.mv.all_index_paths())
    return {
        "metadata_images": len(metadata_images),
        "discs_burned": discs_burned,
        "discs_read": discs_read,
        "recover_seconds": elapsed,
        "recover_minutes": elapsed / 60.0,
        "paths_before": paths_before,
        "paths_after": paths_after,
    }


def test_mv_recovery_from_120_discs(benchmark):
    result = benchmark.pedantic(run_recovery, rounds=1, iterations=1)
    rows = [
        {
            "metric": "discs holding the checkpoint",
            "paper": 120,
            "measured": result["discs_burned"],
        },
        {
            "metric": "recovery time (min)",
            "paper": "~30",
            "measured": round(result["recover_minutes"], 1),
        },
        {
            "metric": "namespace fully restored",
            "paper": "yes",
            "measured": result["paths_after"] == result["paths_before"],
        },
    ]
    print_table("§4.2: MV recovery from discs", rows)
    record_result("mv_recovery", rows)
    assert result["paths_after"] == result["paths_before"]
    # Shape: ~120 discs, recovery on the order of half an hour.
    assert 100 <= result["discs_burned"] <= 140
    assert 20 <= result["recover_minutes"] <= 45
