"""§5.1: power corner points and archival energy efficiency.

The paper measures the prototype at 185 W idle / 652 W peak.  The bench
checks the composed corner points, measures average draw over a realistic
ingest-and-burn cycle, and contrasts the energy cost of preserving a TB on
a (mostly idle) optical rack vs an always-spinning HDD array — the §2.1
energy argument made concrete.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro import units
from repro.power import IDLE_POWER_W, PEAK_POWER_W, PowerModel
from tests.conftest import make_ros


def run_power_cycle():
    ros = make_ros()
    model = PowerModel(ros)
    for index in range(12):
        ros.write(f"/pw/f{index:02d}.bin", bytes([index + 1]) * 25000)
    ros.flush()
    # A cold read exercises the mechanics.
    image = ros.stat("/pw/f00.bin")["locations"][0]
    ros.cache.evict(image)
    ros.read("/pw/f00.bin")
    ros.drain_background()
    report = model.report()
    return ros, report


def test_power_corner_points_and_cycle(benchmark):
    def run():
        ros, report = run_power_cycle()
        return {
            "idle_w": PowerModel.idle_power_w(),
            "peak_w": PowerModel.peak_power_w(),
            "avg_w": report.average_power_w,
            "elapsed_s": report.elapsed_seconds,
            "total_kwh": report.total_kwh,
            "breakdown": report.breakdown(),
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"metric": "idle power (W)", "paper": 185, "measured": data["idle_w"]},
        {"metric": "peak power (W)", "paper": 652, "measured": data["peak_w"]},
        {
            "metric": "avg power over ingest+burn+fetch (W)",
            "paper": "185-652",
            "measured": round(data["avg_w"], 1),
        },
    ]
    print_table("§5.1: power", rows)
    shares = [
        {"component": name, "joules": round(value, 0)}
        for name, value in data["breakdown"].items()
    ]
    print_table("energy breakdown over the cycle", shares)
    record_result("power", rows)
    assert data["idle_w"] == 185.0
    assert data["peak_w"] == 652.0
    assert IDLE_POWER_W < data["avg_w"] < PEAK_POWER_W


def test_preservation_energy_vs_hdd(benchmark):
    """Energy to *hold* a PB for a year: a ROS rack idles at 185 W while
    an equal-capacity HDD array spins at ~1 kW (§2.1 energy argument)."""

    def compare():
        hours = 8766.0
        optical_kwh = IDLE_POWER_W / 1000.0 * hours
        hdd_kwh = 1.0 * hours  # 1 kW/PB steady (TCO profile)
        return optical_kwh, hdd_kwh

    optical_kwh, hdd_kwh = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [
        {"medium": "ROS rack (idle discs)", "kwh_per_pb_year": round(optical_kwh, 0)},
        {"medium": "HDD array (spinning)", "kwh_per_pb_year": round(hdd_kwh, 0)},
        {"medium": "ratio", "kwh_per_pb_year": round(hdd_kwh / optical_kwh, 2)},
    ]
    print_table("steady-state preservation energy", rows)
    record_result("power_preservation", rows)
    assert hdd_kwh > 4 * optical_kwh
