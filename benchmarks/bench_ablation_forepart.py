"""§4.8 ablation: the forepart-data-stored mechanism.

Paper: storing the first 256 KB of each file in its index file lets a
cold read (disc still in the roller) answer its first bytes "within 2 ms"
instead of after the ~70 s mechanical fetch, avoiding client timeouts.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from tests.conftest import make_ros


def cold_read(forepart_enabled: bool):
    ros = make_ros(forepart_enabled=forepart_enabled)
    ros.write("/cold/file.bin", b"c" * 30000)
    ros.flush()
    image_id = ros.stat("/cold/file.bin")["locations"][0]
    ros.cache.evict(image_id)
    result = ros.read("/cold/file.bin")
    return result


def run_forepart_ablation():
    with_fp = cold_read(forepart_enabled=True)
    without_fp = cold_read(forepart_enabled=False)
    return with_fp, without_fp


def test_ablation_forepart(benchmark):
    with_fp, without_fp = benchmark.pedantic(
        run_forepart_ablation, rounds=1, iterations=1
    )
    rows = [
        {
            "config": "forepart enabled",
            "first_byte_s": round(with_fp.first_byte_seconds, 4),
            "completion_s": round(with_fp.total_seconds, 1),
            "used_forepart": with_fp.used_forepart,
        },
        {
            "config": "forepart disabled",
            "first_byte_s": round(without_fp.first_byte_seconds, 4),
            "completion_s": round(without_fp.total_seconds, 1),
            "used_forepart": without_fp.used_forepart,
        },
    ]
    print_table("§4.8 ablation: forepart-data-stored", rows)
    record_result("ablation_forepart", rows)
    # First bytes within a few ms (paper: "within 2 ms" internally; our
    # figure includes the full POSIX stat path).
    assert with_fp.first_byte_seconds < 0.005
    assert without_fp.first_byte_seconds > 60
    # Completion still pays the mechanical fetch either way.
    assert with_fp.total_seconds > 60
    # Storage overhead: the forepart rides in the index file.
    improvement = without_fp.first_byte_seconds / with_fp.first_byte_seconds
    assert improvement > 10_000


def test_forepart_trickle_plan(benchmark):
    """The trickle keeps a client fed until the fetch completes for
    small files; large files drain the forepart first (§4.8 notes this
    'avoids read timeout continuously')."""

    def plans():
        from repro.olfs.config import OLFSConfig
        from repro.olfs.forepart import ForepartManager

        manager = ForepartManager(OLFSConfig())
        small = manager.plan(b"x" * 200_000, 0.0005, fetch_seconds=1.0)
        cold = manager.plan(b"x" * 262_144, 0.0005, fetch_seconds=70.0)
        return small, cold

    small, cold = benchmark.pedantic(plans, rounds=1, iterations=1)
    rows = [
        {
            "scenario": "disc already near (1 s fetch)",
            "first_byte_s": round(small.first_byte_seconds, 4),
            "forepart_drains_at_s": round(small.forepart_drained_at, 2),
            "bridges_fetch": small.bridges_fetch,
        },
        {
            "scenario": "roller fetch (70 s)",
            "first_byte_s": round(cold.first_byte_seconds, 4),
            "forepart_drains_at_s": round(cold.forepart_drained_at, 2),
            "bridges_fetch": cold.bridges_fetch,
        },
    ]
    print_table("§4.8: forepart trickle timelines", rows)
    record_result("forepart_trickle", rows)
    assert small.bridges_fetch
    assert not cold.bridges_fetch  # 256 KB at 128 KB/s covers only ~2 s
    assert small.first_byte_seconds < 0.002
