"""Extension: cold-read response time under load (queueing behaviour).

The paper measures single-request latencies (Table 1); a datacenter also
cares what happens when cold reads *queue*: one drive set is a single
server whose service time is the ~155 s array swap, so response time
follows the classic open-queue hockey stick as the arrival rate approaches
the service rate (~23 swaps/hour).
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro.sim import Delay, Spawn, AllOf
from tests.conftest import make_ros

ARRAYS = 4
SERVICE_ESTIMATE_S = 155.0


def build_rack():
    ros = make_ros(read_cache_images=1)
    paths = []
    for array in range(ARRAYS):
        for index in range(4):
            path = f"/load/a{array}/f{index}.bin"
            ros.write(path, bytes([array * 4 + index + 1]) * 15000)
            paths.append(path)
        ros.flush()
    # One representative file per array, so consecutive requests force
    # array swaps (the worst-case service pattern).
    representatives = []
    seen = set()
    for path in paths:
        image = ros.stat(path)["locations"][0]
        array_address = ros.dim.record(image).array_address
        if array_address is not None and array_address not in seen:
            seen.add(array_address)
            representatives.append(path)
    return ros, representatives


def run_at_interarrival(interarrival_s: float, requests: int = 10):
    ros, reps = build_rack()
    latencies = []

    def client(path, start_delay):
        yield Delay(start_delay)
        image = ros.stat(path)["locations"][0]
        ros.cache.evict(image)
        began = ros.engine.now
        result = yield from ros.pi.read_file(path)
        latencies.append(ros.engine.now - began)

    def main():
        procs = []
        for index in range(requests):
            path = reps[index % len(reps)]
            procs.append(
                (
                    yield Spawn(
                        client(path, index * interarrival_s),
                        name=f"client-{index}",
                    )
                )
            )
        yield AllOf(procs)

    ros.run(main())
    latencies.sort()
    mean = sum(latencies) / len(latencies)
    p95 = latencies[int(0.95 * (len(latencies) - 1))]
    return mean, p95


def test_load_response_curve(benchmark):
    def sweep():
        rows = []
        for interarrival in (600.0, 180.0, 140.0, 110.0):
            mean, p95 = run_at_interarrival(interarrival)
            rows.append(
                {
                    "interarrival_s": interarrival,
                    "offered_load": round(SERVICE_ESTIMATE_S / interarrival, 2),
                    "mean_response_s": round(mean, 1),
                    "p95_response_s": round(p95, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Cold-read response time vs offered load (one drive set)", rows
    )
    record_result("load_response", rows)
    means = [row["mean_response_s"] for row in rows]
    # Deterministic arrivals + deterministic service: flat below
    # saturation, then the backlog grows without bound past it.
    assert means == sorted(means)
    assert means[-1] > 1.5 * means[0]
    p95s = [row["p95_response_s"] for row in rows]
    assert p95s[-1] > 2 * p95s[0]
    # Lightly loaded requests cost about one swap (~155 s).
    assert means[0] == pytest.approx(SERVICE_ESTIMATE_S, rel=0.25)
