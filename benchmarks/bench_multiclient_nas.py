"""Extension: multi-client NAS scaling over samba+OLFS.

§3.3 positions ROS as a shared NAS node ("providing more than 1 GB/s
external throughput") — but the samba+OLFS stack tops out near 320 MB/s
writes / 236 MB/s reads (Figure 6).  This bench shows how those ceilings
divide across concurrent clients: aggregate throughput saturates at the
stack limit while per-client shares drop 1/N — the case for the
direct-writing mode when many ingest streams arrive at once.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro import units
from repro.frontend import make_stack
from repro.sim import AllOf, Engine, Spawn


def run_clients(direction: str, client_count: int, per_client=512 * units.MB):
    engine = Engine()
    stack = make_stack("samba+OLFS")
    pipes = stack.shared_pipes(engine)
    pipe = pipes[direction]
    finish = []

    def client():
        yield from pipe.transfer(per_client)
        finish.append(engine.now)

    def main():
        procs = []
        for _ in range(client_count):
            procs.append((yield Spawn(client())))
        yield AllOf(procs)

    engine.run_process(main())
    elapsed = max(finish)
    aggregate = client_count * per_client / elapsed / units.MB
    per_client_rate = aggregate / client_count
    return aggregate, per_client_rate


def test_multiclient_scaling(benchmark):
    def sweep():
        rows = []
        for clients in (1, 2, 4, 8):
            agg_w, per_w = run_clients("write", clients)
            agg_r, per_r = run_clients("read", clients)
            rows.append(
                {
                    "clients": clients,
                    "agg_write_mb_s": round(agg_w, 1),
                    "per_client_write": round(per_w, 1),
                    "agg_read_mb_s": round(agg_r, 1),
                    "per_client_read": round(per_r, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Multi-client samba+OLFS scaling", rows)
    record_result("multiclient_nas", rows)
    # Aggregate pins at the stack ceilings regardless of client count.
    for row in rows:
        assert row["agg_write_mb_s"] == pytest.approx(320, rel=0.02)
        assert row["agg_read_mb_s"] == pytest.approx(236, rel=0.02)
    # Per-client shares fall as 1/N (processor sharing fairness).
    assert rows[-1]["per_client_write"] == pytest.approx(
        rows[0]["per_client_write"] / 8, rel=0.05
    )
