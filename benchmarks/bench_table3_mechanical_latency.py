"""Table 3: mechanical load/unload latency by slot position.

Paper values:

    uppermost layer   load 68.7 s   unload 81.7 s
    lowest layer      load 73.2 s   unload 86.5 s

Measured by driving the full PLC instruction sequence (rotate, travel,
hook, fan-out, grab, fan-in, separate / collect, lower) on the simulated
mechanics — the same decomposition §3.2 describes.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro.mechanics import MechanicalSubsystem, TrayAddress
from repro.sim import Engine

PAPER = {
    ("uppermost", "load"): 68.7,
    ("uppermost", "unload"): 81.7,
    ("lowest", "load"): 73.2,
    ("lowest", "unload"): 86.5,
}


def measure(layer: int) -> tuple[float, float]:
    engine = Engine()
    subsystem = MechanicalSubsystem(engine, roller_count=1)
    address = TrayAddress(layer, 1)
    start = engine.now
    engine.run_process(subsystem.load_array(0, address))
    load = engine.now - start
    start = engine.now
    engine.run_process(subsystem.unload_array(0))
    unload = engine.now - start
    return load, unload


def run_table3():
    rows = []
    for label, layer in (("uppermost", 0), ("lowest", 84)):
        load, unload = measure(layer)
        rows.append(
            {
                "slot": label,
                "paper_load_s": PAPER[(label, "load")],
                "measured_load_s": round(load, 2),
                "paper_unload_s": PAPER[(label, "unload")],
                "measured_unload_s": round(unload, 2),
            }
        )
    return rows


def test_table3_mechanical_latency(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    print_table("Table 3: mechanical latency", rows)
    record_result("table3_mechanical_latency", rows)
    for row in rows:
        assert row["measured_load_s"] == pytest.approx(
            row["paper_load_s"], rel=0.01
        )
        assert row["measured_unload_s"] == pytest.approx(
            row["paper_unload_s"], rel=0.01
        )
    # Lowest layer costs ~5 s more on both paths (the arm's full stroke).
    assert rows[1]["measured_load_s"] - rows[0]["measured_load_s"] == pytest.approx(
        4.5, abs=0.2
    )


def test_table3_component_facts(benchmark):
    """§5.5 component statements: rotation <2 s, arm stroke <=5 s,
    separation ~61 s, collection ~74 s."""

    def components():
        from repro.mechanics.timing import DEFAULT_TIMINGS as t

        return {
            "rotate_s": t.rotate,
            "arm_stroke_s": max(t.travel_empty_full, t.travel_loaded_full),
            "separate_12_s": t.separate_all,
            "collect_12_s": t.collect_all,
        }

    values = benchmark.pedantic(components, rounds=1, iterations=1)
    print_table(
        "Table 3 components (§5.5)",
        [
            {"component": k, "value_s": v, "paper": p}
            for (k, v), p in zip(
                values.items(), ["<2", "<=5", "~61", "~74"]
            )
        ],
    )
    record_result(
        "table3_components",
        [{"component": k, "value_s": v} for k, v in values.items()],
    )
    assert values["rotate_s"] < 2.0
    assert values["arm_stroke_s"] <= 5.0
    assert values["separate_12_s"] == pytest.approx(61.0)
    assert values["collect_12_s"] == pytest.approx(74.0)
