"""§4.8 ablation: FUSE flush granularity and the direct-writing mode.

"By default, FUSE flushes 4 KB data from the user space to the kernel
space each time, resulting in frequent kernel-user mode switches...  OLFS
sets the mount option big_writes to flush 128 KB data each time."  And for
performance-critical paths a *direct-writing mode* bypasses FUSE entirely:
files stream to the SSD tier at full external bandwidth, then trickle into
OLFS asynchronously.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro import units
from repro.frontend import make_stack
from repro.frontend.layers import NETWORK_10GBE
from repro.sim import Engine
from repro.workloads import SinglestreamWorkload


def run_flush_comparison():
    engine = Engine()
    rows = []
    for name in ("ext4+FUSE-4k", "ext4+FUSE", "ext4+OLFS-4k", "ext4+OLFS"):
        stack = make_stack(name)
        rates = {}
        for direction in ("read", "write"):
            workload = SinglestreamWorkload(direction, total_bytes=1 * units.GB)
            result = engine.run_process(workload.run_on_stack(engine, stack))
            rates[direction] = result.throughput_mb_s
        rows.append(
            {
                "config": name,
                "flush": "4 KB" if name.endswith("-4k") else "128 KB",
                "read_mb_s": round(rates["read"], 1),
                "write_mb_s": round(rates["write"], 1),
            }
        )
    return rows


def test_ablation_fuse_big_writes(benchmark):
    rows = benchmark.pedantic(run_flush_comparison, rounds=1, iterations=1)
    print_table("§4.8 ablation: FUSE flush granularity", rows)
    record_result("ablation_fuse_bigwrites", rows)
    by_name = {row["config"]: row for row in rows}
    # big_writes improves the FUSE write path several-fold.
    assert (
        by_name["ext4+FUSE"]["write_mb_s"]
        > 3 * by_name["ext4+FUSE-4k"]["write_mb_s"]
    )
    assert (
        by_name["ext4+OLFS"]["read_mb_s"]
        > by_name["ext4+OLFS-4k"]["read_mb_s"]
    )


def test_ablation_direct_writing_mode(benchmark):
    """Direct-writing mode: ingest at near-wire speed vs through the
    FUSE/OLFS stack."""

    def compare():
        stacked = make_stack("samba+OLFS").write_throughput()
        # Direct mode: CIFS straight onto the SSD tier — the wire and the
        # SSD tier are the only limits (§4.8).
        ssd_tier_rate = 900 * units.MB
        direct = min(NETWORK_10GBE.write_rate_cap, ssd_tier_rate)
        return stacked / units.MB, direct / units.MB

    stacked, direct = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [
        {"mode": "through samba+OLFS", "write_mb_s": round(stacked, 1)},
        {"mode": "direct-writing (to SSD tier)", "write_mb_s": round(direct, 1)},
        {"mode": "speedup", "write_mb_s": round(direct / stacked, 2)},
    ]
    print_table("§4.8 ablation: direct-writing mode", rows)
    record_result("ablation_direct_writing", rows)
    assert direct > 2 * stacked
