"""Engine throughput suite: events/s per scheduling pattern (ISSUE 3).

Unlike the paper benches (which report *simulated* metrics), this suite
measures the simulator itself: how many engine events per wall-second
each hot scheduling pattern sustains, plus wall-clock for the three
canonical end-to-end scenarios.  Results land in ``benchmarks/results.json``
alongside the paper tables; the CI perf gate runs the same microbenches
through ``python -m repro bench --check`` against
``benchmarks/perf/baseline.json``.
"""

import pathlib

import pytest

from benchmarks.conftest import print_table, record_result
from repro.perf.harness import gate_check, load_baseline
from repro.perf.microbench import run_microbenches
from repro.perf.scenarios import run_scenarios

#: full-size events counts keep a laptop run under ~5 s; the CLI uses the
#: same defaults, so numbers here are comparable with BENCH_engine.json
SCALE = 1.0
REPEATS = 2


@pytest.fixture(scope="module")
def microbench_results():
    return run_microbenches(scale=SCALE, repeats=REPEATS)


def test_engine_events_per_second(microbench_results):
    rows = [
        {"microbench": name, "events_per_sec": round(value)}
        for name, value in microbench_results.items()
    ]
    print_table("Engine event-loop throughput", rows)
    record_result("perf_engine_events", rows)
    assert all(value > 0 for value in microbench_results.values())


def test_scenario_wall_clock():
    results = run_scenarios()
    rows = [
        {"scenario": name, "wall_seconds": stats["wall_seconds"]}
        for name, stats in results.items()
    ]
    print_table("Scenario wall-clock", rows)
    record_result("perf_scenarios", rows)
    # The chaos campaign must still satisfy every invariant when run
    # through the perf harness — speed must not cost correctness.
    assert results["chaos_campaign"]["invariants_ok"]


def test_perf_gate_against_committed_baseline(microbench_results):
    """The committed floors hold on this host (generous 60% tolerance:
    this is a smoke check that the gate plumbing and baseline agree;
    the CI job runs the real 30% gate)."""
    baseline = load_baseline(
        str(pathlib.Path(__file__).parent / "baseline.json")
    )
    failures = gate_check(microbench_results, baseline, tolerance=0.60)
    assert not failures, failures
