"""Table 2: optical drive read speeds, single vs 12-drive aggregate.

Paper values: 25 GB — 24.1 MB/s single, 282.5 MB/s aggregate;
             100 GB — 18.0 MB/s single, 210.2 MB/s aggregate.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro import units
from repro.drives import DriveSet
from repro.media.disc import BD25, BD100, OpticalDisc
from repro.sim import Engine

PAPER = {
    ("BD25", "single"): 24.1,
    ("BD25", "aggregate"): 282.5,
    ("BD100", "single"): 18.0,
    ("BD100", "aggregate"): 210.2,
}


def _loaded_set(engine, disc_type, count, track_bytes):
    drive_set = DriveSet(engine, 0)
    for index in range(count):
        disc = OpticalDisc(f"disc-{index}", disc_type)
        disc.burn_track(b"D" * 1024, logical_size=track_bytes, label=f"i{index}")
        drive = drive_set.drives[index]
        drive.open_tray()
        drive.insert_disc(disc)
        drive.close_tray()
    return drive_set


def _measure(disc_type, drives, track_bytes):
    engine = Engine()
    drive_set = _loaded_set(engine, disc_type, drives, track_bytes)

    def proc():
        yield from drive_set.read_all_tracks()

    engine.run_process(proc())
    return drives * track_bytes / engine.now / units.MB


def run_table2():
    rows = []
    for label, disc_type, track in (
        ("BD25", BD25, 24 * units.GB),
        ("BD100", BD100, 99 * units.GB),
    ):
        single = _measure(disc_type, 1, track)
        aggregate = _measure(disc_type, 12, track)
        rows.append(
            {
                "disc": label,
                "mode": "single",
                "paper_mb_s": PAPER[(label, "single")],
                "measured_mb_s": round(single, 1),
            }
        )
        rows.append(
            {
                "disc": label,
                "mode": "aggregate (12)",
                "paper_mb_s": PAPER[(label, "aggregate")],
                "measured_mb_s": round(aggregate, 1),
            }
        )
    return rows


def test_table2_drive_read_speeds(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    print_table("Table 2: optical drive read speeds", rows)
    record_result("table2_drive_read_speed", rows)
    for row in rows:
        assert row["measured_mb_s"] == pytest.approx(
            row["paper_mb_s"], rel=0.05
        )
    # Aggregate is slightly under 12x single (arbitration, Table 2 shape).
    single = rows[0]["measured_mb_s"]
    aggregate = rows[1]["measured_mb_s"]
    assert 11.0 * single < aggregate < 12.0 * single
