"""Figure 10: single-drive recording process for a 100 GB disc.

Paper: the BDR-PR1AME burns BDXL at a near-constant 6X; the fail-safe
mechanism drops to 4X when servo disturbance is detected and restores 6X
after.  Average 5.9X; one disc records in 3757 seconds.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro import units
from repro.drives.speed import FailSafeCurve
from repro.media.disc import BD100


def run_fig10():
    curve = FailSafeCurve(seed=5)
    series = []
    for step in range(0, 101, 2):
        progress = step / 100.0
        series.append(
            {
                "progress": progress,
                "speed_x": curve.speed_multiple(min(progress, 1.0)),
            }
        )
    seconds = curve.burn_seconds(BD100.capacity)
    average = curve.average_multiple(BD100.capacity)
    return series, seconds, average, curve


def test_fig10_single_drive_100gb(benchmark):
    series, seconds, average, curve = benchmark.pedantic(
        run_fig10, rounds=1, iterations=1
    )
    dips = [row for row in series if row["speed_x"] < 6.0]
    shown = series[:: max(1, len(series) // 12)]
    print_table("Figure 10: 100 GB burn speed samples", shown)
    summary = [
        {"metric": "total burn time (s)", "paper": 3757, "measured": round(seconds, 0)},
        {"metric": "average speed (X)", "paper": 5.9, "measured": round(average, 2)},
        {"metric": "nominal speed (X)", "paper": 6.0, "measured": 6.0},
        {"metric": "fail-safe dips (count)", "paper": "several", "measured": len(curve.dips)},
    ]
    print_table("Figure 10: summary", summary)
    record_result("fig10_single_100gb", {"summary": summary})
    assert seconds == pytest.approx(3757.0, rel=0.02)
    assert average == pytest.approx(5.9, abs=0.05)
    # Shape: mostly 6X with discrete 4X dips (the zoomed inset of Fig 10).
    speeds = {row["speed_x"] for row in series}
    assert speeds <= {4.0, 6.0}
    assert any(row["speed_x"] == 4.0 for row in series) or curve.dips
    at_6x = sum(1 for row in series if row["speed_x"] == 6.0)
    assert at_6x / len(series) > 0.9
