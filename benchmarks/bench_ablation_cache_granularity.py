"""§4.1 ablation: image-grain vs file-grain read caching (+ prefetch).

The paper caches whole disc images ("sufficiently exploiting spatial
locality") and leaves file-grain caching and prefetching as future work.
This bench quantifies the trade on two access patterns:

* a **sequential scan** of one image's files — image-grain turns one
  mechanical fetch into free neighbours; file-grain must prefetch to
  compete;
* a **random point-read** pattern across many images under a tight buffer
  budget — file-grain keeps more distinct hot files per byte.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from tests.conftest import make_ros


def _populated(**kwargs):
    ros = make_ros(
        bucket_capacity=64 * 1024,
        read_cache_images=1,
        **kwargs,
    )
    paths = []
    for index in range(12):
        path = f"/grain/f{index:02d}.bin"
        ros.write(path, bytes([index + 1]) * 12000)
        paths.append(path)
    ros.flush()
    for image_id in list(ros.cache.cached_ids):
        ros.cache.evict(image_id)
    for record in ros.dim.records.values():
        if record.state == "burned" and record.image is not None:
            ros.dim.evict_content(record.image_id)
    return ros, paths


def _sequential_scan(ros, paths):
    fetches_before = ros.ftm.fetch_tasks
    total = 0.0
    for path in paths:
        result = ros.read(path)
        total += result.total_seconds
        ros.drain_background()
    return total / len(paths), ros.ftm.fetch_tasks - fetches_before


def run_granularity_ablation():
    rows = []
    for label, kwargs in (
        ("image-grain (paper)", {}),
        ("file-grain", {"cache_granularity": "file"}),
        (
            "file-grain + prefetch 4",
            {"cache_granularity": "file", "prefetch_siblings": 4},
        ),
    ):
        ros, paths = _populated(**kwargs)
        mean_latency, fetches = _sequential_scan(ros, paths)
        rows.append(
            {
                "config": label,
                "mean_read_s": round(mean_latency, 2),
                "mechanical_fetches": fetches,
            }
        )
    return rows


def test_ablation_cache_granularity(benchmark):
    rows = benchmark.pedantic(
        run_granularity_ablation, rounds=1, iterations=1
    )
    print_table(
        "§4.1 ablation: cache granularity, sequential scan of 12 files",
        rows,
    )
    record_result("ablation_cache_granularity", rows)
    by_name = {row["config"]: row for row in rows}
    image = by_name["image-grain (paper)"]
    plain_file = by_name["file-grain"]
    prefetch = by_name["file-grain + prefetch 4"]
    # Image-grain exploits spatial locality: fewer mechanical fetches
    # than plain file-grain on a sequential scan.
    assert image["mechanical_fetches"] <= plain_file["mechanical_fetches"]
    # Prefetching claws the locality back for file-grain.
    assert prefetch["mechanical_fetches"] <= plain_file["mechanical_fetches"]
    assert prefetch["mean_read_s"] <= plain_file["mean_read_s"]
