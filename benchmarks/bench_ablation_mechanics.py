"""§3.2 ablation: ROS roller + 1-D arm vs magazine library; scheduling.

The paper argues its roller design (a) simplifies motion (2 axes instead
of a 3-D gantry), (b) roughly doubles disc placement density versus
magazine cassettes in fixed slots, and (c) that overlapping roller/arm
motions "can save up to almost 10 seconds" per load/unload pair.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro.baselines import MagazineLibraryModel
from repro.mechanics import MechanicalSubsystem, TrayAddress
from repro.mechanics.timing import DEFAULT_TIMINGS
from repro.sim import Engine


def run_design_comparison():
    magazine = MagazineLibraryModel()
    mid_fraction = 0.5
    rows = [
        {
            "design": "ROS roller + 1-D arm",
            "load_s": round(DEFAULT_TIMINGS.load_total(mid_fraction), 1),
            "unload_s": round(DEFAULT_TIMINGS.unload_total(mid_fraction), 1),
            "discs_per_42U": 12240,
            "motion_axes": 2,
        },
        {
            "design": "magazine library (DH8-class)",
            "load_s": round(magazine.load_seconds(), 1),
            "unload_s": round(magazine.unload_seconds(), 1),
            "discs_per_42U": magazine.discs_per_rack,
            "motion_axes": magazine.motion_axes,
        },
    ]
    return rows, magazine


def test_ablation_roller_vs_magazine(benchmark):
    rows, magazine = benchmark.pedantic(
        run_design_comparison, rounds=1, iterations=1
    )
    print_table("§3.2 ablation: roller vs magazine design", rows)
    record_result("ablation_mechanics_design", rows)
    ros_row, mag_row = rows
    assert ros_row["load_s"] < mag_row["load_s"]
    assert ros_row["unload_s"] < mag_row["unload_s"]
    # "half the capacity of our design" (§6)
    assert mag_row["discs_per_42U"] == pytest.approx(
        ros_row["discs_per_42U"] / 2, rel=0.1
    )
    assert ros_row["motion_axes"] < mag_row["motion_axes"]


def run_scheduling_comparison():
    results = {}
    for parallel in (False, True):
        engine = Engine()
        subsystem = MechanicalSubsystem(
            engine, roller_count=1, parallel_scheduling=parallel
        )
        address = TrayAddress(40, 2)
        start = engine.now
        engine.run_process(subsystem.load_array(0, address))
        load = engine.now - start
        start = engine.now
        engine.run_process(subsystem.unload_array(0))
        unload = engine.now - start
        results["parallel" if parallel else "serial"] = (load, unload)
    return results


def test_ablation_parallel_scheduling(benchmark):
    results = benchmark.pedantic(
        run_scheduling_comparison, rounds=1, iterations=1
    )
    serial = results["serial"]
    parallel = results["parallel"]
    saved = (serial[0] + serial[1]) - (parallel[0] + parallel[1])
    rows = [
        {
            "mode": mode,
            "load_s": round(values[0], 1),
            "unload_s": round(values[1], 1),
            "pair_total_s": round(values[0] + values[1], 1),
        }
        for mode, values in results.items()
    ]
    rows.append(
        {"mode": "saved (paper: 'up to almost 10 s')", "pair_total_s": round(saved, 1)}
    )
    print_table("§3.2 ablation: serial vs overlapped scheduling", rows)
    record_result("ablation_parallel_scheduling", rows)
    assert 8.0 <= saved <= 10.0
