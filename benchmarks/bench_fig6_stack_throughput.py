"""Figure 6: normalized singlestream throughput of five stack configurations.

Paper (§5.3): ext4 on the RAID-5 volume reaches 1.2 GB/s read, 1.0 GB/s
write.  Normalized to that, ext4+FUSE loses 24.1 % R / 51.8 % W, ext4+OLFS
a further 28.9 % R / 10.1 % W, samba drops to ~31 % both ways, and
samba+OLFS lands at 236.1 MB/s read, 323.6 MB/s write.

Measured by driving the filebench singlestream workload (1 MB I/O)
through each composed stack on the simulator.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro import units
from repro.frontend import make_stack
from repro.sim import Engine
from repro.workloads import SinglestreamWorkload

#: (read, write) normalized to ext4, derived from the §5.3 text.
PAPER_NORMALIZED = {
    "ext4+FUSE": (0.759, 0.482),
    "ext4+OLFS": (0.539, 0.433),
    "samba": (0.311, 0.320),
    "samba+FUSE": (None, None),  # shown in the figure, no number in text
    "samba+OLFS": (0.197, 0.324),
}

CONFIGS = ["ext4", "ext4+FUSE", "ext4+OLFS", "samba", "samba+FUSE", "samba+OLFS"]


def run_fig6():
    engine = Engine()
    measured = {}
    for name in CONFIGS:
        stack = make_stack(name)
        rates = {}
        for direction in ("read", "write"):
            workload = SinglestreamWorkload(
                direction, total_bytes=2 * units.GB
            )
            result = engine.run_process(workload.run_on_stack(engine, stack))
            rates[direction] = result.throughput_mb_s
        measured[name] = rates
    base = measured["ext4"]
    rows = []
    for name in CONFIGS:
        paper_r, paper_w = PAPER_NORMALIZED.get(name, (1.0, 1.0))
        rows.append(
            {
                "config": name,
                "read_mb_s": round(measured[name]["read"], 1),
                "write_mb_s": round(measured[name]["write"], 1),
                "norm_read": round(measured[name]["read"] / base["read"], 3),
                "norm_write": round(
                    measured[name]["write"] / base["write"], 3
                ),
                "paper_norm_read": paper_r if paper_r else "-",
                "paper_norm_write": paper_w if paper_w else "-",
            }
        )
    return rows


def test_fig6_stack_throughput(benchmark):
    rows = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    print_table("Figure 6: normalized throughput vs ext4", rows)
    record_result("fig6_stack_throughput", rows)
    by_name = {row["config"]: row for row in rows}
    for name, (paper_r, paper_w) in PAPER_NORMALIZED.items():
        if paper_r is None:
            continue
        assert by_name[name]["norm_read"] == pytest.approx(paper_r, rel=0.06)
        assert by_name[name]["norm_write"] == pytest.approx(paper_w, rel=0.06)
    # Headline absolute numbers (§5.3): 236.1 MB/s R / 323.6 MB/s W.
    assert by_name["samba+OLFS"]["read_mb_s"] == pytest.approx(236.1, rel=0.05)
    assert by_name["samba+OLFS"]["write_mb_s"] == pytest.approx(323.6, rel=0.05)
    # Figure shape: each additional layer slows reads.
    reads = [by_name[c]["read_mb_s"] for c in CONFIGS]
    assert reads == sorted(reads, reverse=True)
