"""§4.2: Metadata Volume sizing.

Paper: index files are typically 388 bytes; MV uses 1 KB blocks and 128 B
inodes; 1 billion files + 1 billion directories need ~2.3 TB — 0.23 % of
the 1 PB data capacity.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro import units
from repro.olfs.index import IndexFile, VersionEntry
from repro.reliability.sizing import (
    mv_capacity_bytes,
    mv_fraction_of_capacity,
)


def run_sizing():
    index = IndexFile("/data/records/2026/customer-archive-000001.bin")
    index.add_version(
        VersionEntry(
            version=1,
            size=1_048_576,
            mtime=12345.678,
            locations=["img-00001234"],
        )
    )
    typical = len(index.serialize())
    total = mv_capacity_bytes()
    fraction = mv_fraction_of_capacity()
    return [
        {"metric": "typical index file (bytes)", "paper": 388, "measured": typical},
        {
            "metric": "MV for 1B files + 1B dirs (TB)",
            "paper": 2.3,
            "measured": round(total / units.TB, 3),
        },
        {
            "metric": "fraction of 1 PB (%)",
            "paper": 0.23,
            "measured": round(100 * fraction, 3),
        },
    ]


def test_mv_sizing(benchmark):
    rows = benchmark.pedantic(run_sizing, rounds=1, iterations=1)
    print_table("§4.2: MV sizing", rows)
    record_result("mv_sizing", rows)
    assert rows[0]["measured"] <= 388
    assert rows[1]["measured"] == pytest.approx(2.3, rel=0.05)
    assert rows[2]["measured"] == pytest.approx(0.23, rel=0.05)


def test_mv_sizing_measured_from_live_system(benchmark):
    """Cross-check the analytical model against a real populated MV."""

    def scenario():
        from tests.conftest import make_ros

        ros = make_ros()
        files = 200
        for index in range(files):
            ros.write(f"/ns/d{index % 10}/f{index:04d}.bin", b"z" * 64)
        return ros.mv.used_bytes() / files

    per_file = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "§4.2: live MV bytes per file",
        [{"metric": "bytes/file (incl. dirs)", "measured": round(per_file, 0)}],
    )
    record_result("mv_sizing_live", [{"bytes_per_file": per_file}])
    # ~1.15 KB analytic footprint, plus shared directory overhead.
    assert 1000 < per_file < 2500
