"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one table or figure from the paper's
evaluation (§5).  Benchmarks run the deterministic simulator, so
pytest-benchmark timings measure *simulator* cost; the paper-relevant
output is the simulated metrics each bench prints — a table of
paper-value vs measured-value rows, echoed to stdout and collected into
``benchmarks/results.json`` for EXPERIMENTS.md.
"""

import json
import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.json"
_results: dict = {}


def record_result(experiment: str, rows: list[dict]) -> None:
    """Collect one experiment's paper-vs-measured rows."""
    _results[experiment] = rows


def print_table(title: str, rows: list[dict]) -> None:
    print(f"\n=== {title} ===")
    if not rows:
        return
    keys = list(rows[0].keys())
    widths = {
        k: max(len(str(k)), *(len(_fmt(r.get(k))) for r in rows)) for k in keys
    }
    header = "  ".join(str(k).ljust(widths[k]) for k in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row.get(k)).ljust(widths[k]) for k in keys))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@pytest.fixture(scope="session", autouse=True)
def _dump_results():
    yield
    if _results:
        existing = {}
        if RESULTS_PATH.exists():
            try:
                existing = json.loads(RESULTS_PATH.read_text())
            except json.JSONDecodeError:
                existing = {}
        existing.update(_results)
        RESULTS_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True))
