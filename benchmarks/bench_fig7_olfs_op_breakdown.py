"""Figure 7: OLFS internal-operation breakdown of file write/read.

Paper (§5.3): through ext4+OLFS a 1 KB file write decomposes into
stat; mknod; stat; write; close — ~16 ms total; a read into stat; read;
close — ~9 ms.  Through samba+OLFS the write gains seven extra stat calls
(53 ms) and the read reaches ~15 ms.  Each internal op averages ~2.5 ms.

Measured by replaying the paper's methodology: write and read a 1 KB file
50 times with direct I/O and average the per-op timestamps.  The per-op
numbers come from the tracer: every client call is a ``posix.*`` span whose
``op.*`` child spans are the internal operations.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro.frontend import make_stack
from tests.conftest import make_ros

PAPER = {
    ("ext4+OLFS", "write"): 0.016,
    ("ext4+OLFS", "read"): 0.009,
    ("samba+OLFS", "write"): 0.053,
    ("samba+OLFS", "read"): 0.015,
}

ROUNDS = 50


def _op_spans(tracer, call_name):
    """The ``op.*`` children of the latest ``posix.<call>`` span."""
    root = [span for span in tracer.find(name=call_name)][-1]
    return [
        span
        for span in tracer.children_of(root)
        if span.name.startswith("op.")
    ]


def run_breakdown(config: str):
    ros = make_ros(tracing=True)
    tracer = ros.tracer
    if config != "ext4+OLFS":
        make_stack(config).attach(ros.pi)
    write_totals, read_totals = [], []
    op_samples: dict[str, list[float]] = {}
    write_ops = read_ops = None
    for round_index in range(ROUNDS):
        path = f"/fig7/{config}/file-{round_index:03d}.bin"
        tracer.clear()
        ros.write(path, b"k" * 1024)
        ops = _op_spans(tracer, "posix.write")
        write_totals.append(sum(span.duration for span in ops))
        write_ops = [span.name[len("op.") :] for span in ops]
        for name, span in zip(write_ops, ops):
            op_samples.setdefault(name, []).append(span.duration)
        tracer.clear()
        ros.read(path)
        ops = _op_spans(tracer, "posix.read")
        read_totals.append(sum(span.duration for span in ops))
        read_ops = [span.name[len("op.") :] for span in ops]
        for name, span in zip(read_ops, ops):
            op_samples.setdefault(name, []).append(span.duration)
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    return {
        "write_s": mean(write_totals),
        "read_s": mean(read_totals),
        "write_ops": write_ops,
        "read_ops": read_ops,
        "per_op_ms": {
            name: round(1e3 * mean(samples), 2)
            for name, samples in sorted(op_samples.items())
        },
    }


def test_fig7_op_breakdown(benchmark):
    results = benchmark.pedantic(
        lambda: {c: run_breakdown(c) for c in ("ext4+OLFS", "samba+OLFS")},
        rounds=1,
        iterations=1,
    )
    rows = []
    for config, data in results.items():
        for direction in ("write", "read"):
            rows.append(
                {
                    "config": config,
                    "call": direction,
                    "paper_ms": PAPER[(config, direction)] * 1e3,
                    "measured_ms": round(data[f"{direction}_s"] * 1e3, 2),
                    "ops": "; ".join(data[f"{direction}_ops"]),
                }
            )
    print_table("Figure 7: OLFS call -> internal op breakdown", rows)
    per_op = [
        {"config": c, **{"op_" + k: v for k, v in d["per_op_ms"].items()}}
        for c, d in results.items()
    ]
    print_table("Figure 7: mean per-internal-op latency (ms)", per_op)
    record_result("fig7_op_breakdown", rows)

    ext4 = results["ext4+OLFS"]
    samba = results["samba+OLFS"]
    # The exact op sequences of Figure 7.
    assert ext4["write_ops"] == ["stat", "mknod", "stat", "write", "close"]
    assert ext4["read_ops"] == ["stat", "read", "close"]
    assert samba["write_ops"].count("stat") == 9  # 2 + 7 extra (§5.3)
    # Totals within 25 % of the paper's milliseconds.
    for (config, direction), paper in PAPER.items():
        measured = results[config][f"{direction}_s"]
        assert measured == pytest.approx(paper, rel=0.25), (config, direction)
    # "Each internal operation ... almost 2.5 ms in average" (ext4+OLFS).
    ops_ms = list(results["ext4+OLFS"]["per_op_ms"].values())
    assert sum(ops_ms) / len(ops_ms) == pytest.approx(2.5, rel=0.5)
