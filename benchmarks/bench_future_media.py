"""§2.1 extension: rack capacity with the paper's projected future media.

"Hologram discs with 2TB have been realized and demonstrated ...  In the
foreseeable future, 5D optical discs are poised to offer hundreds of TB
capacity."  The bench projects the same 42U rack (12,240 disc slots,
11+1 redundancy) across media generations, plus the burn-time economics.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro import units
from repro.drives.speed import curve_for
from repro.media.disc import BD25, BD100, FIVED_DISC, HOLO2TB

RACK_SLOTS = 12240
USABLE = 11 / 12  # 11 data + 1 parity


def run_projection():
    rows = []
    for disc in (BD25, BD100, HOLO2TB, FIVED_DISC):
        raw = RACK_SLOTS * disc.capacity
        curve = curve_for(disc, seed=1)
        burn = curve.burn_seconds(disc.capacity)
        rows.append(
            {
                "media": disc.name,
                "rack_raw_PB": round(raw / units.PB, 2),
                "rack_usable_PB": round(raw * USABLE / units.PB, 2),
                "disc_burn_h": round(burn / 3600, 2),
                "write_rate_mb_s": round(
                    disc.capacity / burn / units.MB, 1
                ),
            }
        )
    return rows


def test_future_media_projection(benchmark):
    rows = benchmark.pedantic(run_projection, rounds=1, iterations=1)
    print_table("§2.1: rack projection across media generations", rows)
    record_result("future_media", rows)
    by_name = {row["media"]: row for row in rows}
    # The paper's prototype: 100 GB discs -> ~1.2 PB raw per 2-roller rack.
    assert by_name["BDXL 100GB"]["rack_raw_PB"] == pytest.approx(1.22, abs=0.03)
    # Hologram generation crosses the 20 PB mark in the same rack.
    assert by_name["Holographic 2TB"]["rack_raw_PB"] > 20
    # 5D reaches the exabyte-scale club.
    assert by_name["5D 360TB"]["rack_raw_PB"] > 4000
    # Capacity strictly grows across generations.
    capacities = [row["rack_raw_PB"] for row in rows]
    assert capacities == sorted(capacities)
