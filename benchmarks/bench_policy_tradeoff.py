"""§4.8 policy trade-off: wait vs interrupt under an identical trace.

"In the fourth case [all drives burning], there are two policies.  One is
waiting for the burning task to complete ...  The other is immediately
interrupting the current disc array burning process."  This bench replays
the *same* recorded workload — background burns with an urgent read
landing mid-burn — under both policies and reports what each side pays:
the reader's latency (interrupt wins) vs the burn's completion time
(wait wins).
"""

import pytest

from benchmarks.conftest import print_table, record_result
from tests.conftest import make_ros


def run_policy(policy: str):
    from repro import units

    ros = make_ros(
        bucket_capacity=3 * units.GB,
        busy_drive_policy=policy,
        forepart_enabled=False,
        buffer_volume_capacity=64 * units.GB,
    )
    # A burned array to read back later.
    for index in range(4):
        ros.write(f"/old/f{index}.bin", b"o" * 300_000)
    ros.flush()
    target_image = ros.stat("/old/f0.bin")["locations"][0]
    ros.cache.evict(target_image)
    # Background burn of four ~2 GB (declared) images: each disc burns
    # for ~80 s, so the policy choice matters.
    for index in range(4):
        ros.write(f"/new/f{index}.bin", b"n" * 300_000, 2 * units.GB)
    ros.wbm.close_nonempty_buckets()
    tasks = ros.btm.flush_pending()
    tasks += [t for t in ros.btm.active_tasks if t not in tasks]
    burn_started = ros.now
    while not any(ds.is_burning for ds in ros.mech.drive_sets):
        ros.engine.run(until=ros.now + 0.05)
    # The urgent read lands mid-burn.
    result = ros.read("/old/f0.bin")
    read_latency = result.total_seconds
    ros.drain_background()
    burn_completion = ros.now - burn_started
    interruptions = sum(task.interruptions for task in tasks)
    assert all(task.state == "done" for task in tasks)
    return read_latency, burn_completion, interruptions


def test_policy_tradeoff(benchmark):
    def both():
        return {policy: run_policy(policy) for policy in ("wait", "interrupt")}

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    rows = []
    for policy, (read_latency, burn_completion, interruptions) in results.items():
        rows.append(
            {
                "policy": policy,
                "urgent_read_s": round(read_latency, 1),
                "burn_completion_s": round(burn_completion, 1),
                "interruptions": interruptions,
            }
        )
    print_table("§4.8: wait vs interrupt under the same workload", rows)
    record_result("policy_tradeoff", rows)
    wait = results["wait"]
    interrupt = results["interrupt"]
    # Interrupt serves the reader much sooner ...
    assert interrupt[0] < wait[0] / 1.3
    # ... at the cost of a later burn completion (reload + POW append).
    assert interrupt[1] > wait[1]
    assert interrupt[2] >= 1 and wait[2] == 0
