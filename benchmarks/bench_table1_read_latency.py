"""Table 1: read latency from different file locations.

Paper values (§5.2):

    disk bucket                               0.001 s
    disc image (on the disk buffer)           0.002 s
    disc in optical drive                     0.223 s
    disc array in roller, free drives        70.553 s
    disc array in roller, drives occupied   155.037 s
    disc array in roller, all drives busy    minutes

Measured here end-to-end through the OLFS data path: MV index lookup,
bucket/image/disc access, and mechanical operations where needed.  The
sub-10 ms POSIX op overhead (Figure 7) is excluded, as in the paper's
table, by measuring the fetch path directly.
"""

import pytest

from benchmarks.conftest import print_table, record_result
from repro import units
from tests.conftest import make_ros

PAPER = {
    "disk bucket": 0.001,
    "disc image": 0.002,
    "disc in optical drive": 0.223,
    "roller, free drives": 70.553,
    "roller, drives occupied": 155.037,
}


def _subtree_sum(tracer, root, prefix):
    """Total seconds under ``root`` in spans named ``prefix``*, skipping
    the background cache-fill branch (it runs after the read returns)."""
    total = 0.0

    def visit(span):
        nonlocal total
        for child in tracer.children_of(span):
            if child.name == "ftm.cache_fill":
                continue
            if child.name.startswith(prefix):
                total += child.duration
            visit(child)

    visit(root)
    return total


def _fetch_latency(ros, path):
    """Data-path latency: resolve the index and fetch the bytes.

    The whole fetch runs under one ``table1.read`` span, so the span tree
    is the latency decomposition; returns (latency, source, phases).
    """
    ros.stat(path)
    start = ros.now
    ros.tracer.clear()

    # include the MV lookup the read path performs
    def timed():
        with ros.tracer.span("table1.read"):
            index = yield from ros.mv.lookup_index(path)
            result = yield from ros.ftm.fetch_file(
                index.current.locations[0], path
            )
        return result

    result = ros.run(timed())
    latency = ros.now - start
    root = ros.tracer.find(name="table1.read")[0]
    # The direct children partition the fetch end to end (Table 1's rows
    # have no dead time between phases).
    child_sum = sum(
        span.duration for span in ros.tracer.children_of(root)
    )
    assert root.duration == pytest.approx(latency, abs=1e-9)
    assert child_sum == pytest.approx(root.duration, abs=1e-6), (
        "span tree does not decompose the end-to-end latency"
    )
    phases = {
        "mv_ms": 1e3 * _subtree_sum(ros.tracer, root, "mv."),
        "mech_s": _subtree_sum(ros.tracer, root, "mc.ensure_disc_in_drive"),
        "drive_s": _subtree_sum(ros.tracer, root, "drive."),
    }
    return latency, result.source, phases


def build_scenarios():
    """One ROS instance per Table 1 row, file planted at each location."""
    rows = []

    # Row 1: file still in an open disk bucket.
    ros = make_ros(tracing=True)
    ros.write("/t1/bucket.bin", b"b" * 1024)
    latency, source, phases = _fetch_latency(ros, "/t1/bucket.bin")
    rows.append(("disk bucket", latency, source, phases))

    # Row 2: file in a closed disc image on the disk buffer.
    ros = make_ros(tracing=True)
    ros.write("/t1/image.bin", b"i" * 1024)
    ros.wbm.close_nonempty_buckets()
    latency, source, phases = _fetch_latency(ros, "/t1/image.bin")
    rows.append(("disc image", latency, source, phases))

    # Row 3: disc already sitting in a drive (awake, image unmounted).
    ros = make_ros(tracing=True)
    ros.write("/t1/drive.bin", b"d" * 1024)
    ros.flush()
    image_id = ros.stat("/t1/drive.bin")["locations"][0]
    ros.cache.evict(image_id)
    ros.read("/t1/drive.bin")  # pulls the array into the drives
    ros.drain_background()
    ros.cache.evict(image_id)
    drive_set = ros.mech.drive_sets[0]
    drive = drive_set.find_disc(ros.dim.record(image_id).disc_id)
    # The VFS mount is dropped but the spindle stays up (§5.4).
    from repro.drives.drive import DriveState

    drive.state = DriveState.IDLE
    latency, source, phases = _fetch_latency(ros, "/t1/drive.bin")
    rows.append(("disc in optical drive", latency, source, phases))

    # Row 4: disc array in the roller, drives free.
    ros = make_ros(tracing=True)
    ros.write("/t1/roller.bin", b"r" * 1024)
    ros.flush()
    image_id = ros.stat("/t1/roller.bin")["locations"][0]
    ros.cache.evict(image_id)
    latency, source, phases = _fetch_latency(ros, "/t1/roller.bin")
    rows.append(("roller, free drives", latency, source, phases))

    # Row 5: target in the roller while the only drive set holds another
    # (idle) array: unload + load.
    ros = make_ros(tracing=True)
    ros.write("/t1/first.bin", b"f" * 1024)
    ros.flush()
    first_image = ros.stat("/t1/first.bin")["locations"][0]
    ros.write("/t1/second.bin", b"s" * 1024)
    ros.flush()
    second_image = ros.stat("/t1/second.bin")["locations"][0]
    ros.cache.evict(first_image)
    ros.cache.evict(second_image)
    # Load the second array into the drives, then ask for the first.
    ros.read("/t1/second.bin")
    ros.drain_background()
    ros.cache.evict(first_image)
    ros.cache.evict(second_image)
    latency, source, phases = _fetch_latency(ros, "/t1/first.bin")
    rows.append(("roller, drives occupied", latency, source, phases))

    return rows


def test_table1_read_latency(benchmark):
    rows = benchmark.pedantic(build_scenarios, rounds=1, iterations=1)
    table = []
    for name, measured, source, phases in rows:
        paper = PAPER[name]
        table.append(
            {
                "location": name,
                "paper_s": paper,
                "measured_s": round(measured, 4),
                "ratio": round(measured / paper, 3),
                "served_from": source,
                "mv_ms": round(phases["mv_ms"], 3),
                "mech_s": round(phases["mech_s"], 3),
                "drive_s": round(phases["drive_s"], 3),
            }
        )
    print_table("Table 1: read latency by file location", table)
    record_result("table1_read_latency", table)
    by_name = {row["location"]: row for row in table}
    # Shape checks: same orders of magnitude and the same ordering.
    assert by_name["disk bucket"]["measured_s"] == pytest.approx(0.001, rel=0.6)
    assert by_name["disc image"]["measured_s"] == pytest.approx(0.002, rel=0.6)
    assert by_name["disc in optical drive"]["measured_s"] == pytest.approx(
        0.223, rel=0.15
    )
    assert by_name["roller, free drives"]["measured_s"] == pytest.approx(
        70.553, rel=0.05
    )
    assert by_name["roller, drives occupied"]["measured_s"] == pytest.approx(
        155.037, rel=0.05
    )
    latencies = [row["measured_s"] for row in table]
    assert latencies == sorted(latencies)


def test_table1_busy_drives_minutes(benchmark):
    """Row 6: every drive burning -> the read waits minutes (wait policy)."""

    def scenario():
        from tests.conftest import make_ros as _make

        ros = _make(
            bucket_capacity=16 * 1024 * 1024,
            busy_drive_policy="wait",
            forepart_enabled=False,
        )
        for index in range(4):
            ros.write(f"/old/f{index}.bin", b"o" * 400_000)
        ros.flush()
        target_image = ros.stat("/old/f0.bin")["locations"][0]
        ros.cache.evict(target_image)
        for index in range(4):
            ros.write(
                f"/new/f{index}.bin",
                b"n" * 400_000,
                12 * 1024 * 1024,
            )
        ros.wbm.close_nonempty_buckets()
        ros.btm.flush_pending()
        while not any(ds.is_burning for ds in ros.mech.drive_sets):
            ros.engine.run(until=ros.now + 0.05)
        result = ros.read("/old/f0.bin")
        return result.total_seconds

    latency = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "Table 1 (row 6): all drives busy",
        [
            {
                "location": "roller, all drives busy",
                "paper_s": "minutes",
                "measured_s": round(latency, 1),
            }
        ],
    )
    record_result(
        "table1_busy_drives",
        [{"location": "all drives busy", "paper": "minutes", "measured_s": latency}],
    )
    assert latency > 120  # "minutes"
