"""Legacy setup shim so `pip install -e .` works without network access.

All project metadata lives in pyproject.toml; this file only exists because
the offline environment ships a setuptools too old for PEP 660 editable
installs.
"""

from setuptools import setup

setup()
