"""Calibrated per-phase mechanical timings.

The paper reports composite latencies (Table 3: load 68.7/73.2 s, unload
81.7/86.5 s for uppermost/lowest layers) and a few component facts: roller
rotation "less than 2 seconds", vertical arm travel "up to 5 seconds",
separating 12 discs into drives "almost 61 seconds", fetching them back
"74 seconds" (§5.5).  The per-phase constants below are the inputs of the
model, chosen so the composed operations land on the published numbers:

    load(layer)   = rotate + fan_out + travel_empty(layer) + engage
                    + lift + fan_in + separate
                  = 1.9 + 1.5 + 4.5*f + 1.0 + 1.8 + 1.5 + 61.0
                  = 68.7 + 4.5*f           (f = layer fraction, 0..1)

    unload(layer) = collect + rotate + fan_out + travel_loaded(layer)
                    + engage + lower + fan_in
                  = 74.0 + 1.9 + 1.5 + 4.8*f + 1.0 + 1.8 + 1.5
                  = 81.7 + 4.8*f

A loaded arm travels slightly slower than an empty one (4.8 s vs 4.5 s full
stroke), matching the ~5 s lowest-layer penalty on both paths.

``parallel_scheduling`` models the §3.2 observation that overlapping roller
rotation, tray fan-in and drive-tray actuation with arm motion "can save up
to almost 10 seconds" per load/unload pair.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MechanicalTimings:
    """Per-phase delays in seconds; see module docstring for calibration."""

    rotate: float = 1.9  # reposition roller to a slot (<2 s, §5.5)
    fan_out: float = 1.5  # tray fans out of the roller
    fan_in: float = 1.5  # tray fans back in
    engage: float = 1.0  # arm locks/unlocks the tray hook
    lift: float = 1.8  # raise stack above drives / lower into tray
    separate_all: float = 61.0  # place 12 discs into 12 drives, one by one
    collect_all: float = 74.0  # fetch 12 discs from drives, one by one
    travel_empty_full: float = 4.5  # arm full stroke, not carrying discs
    travel_loaded_full: float = 4.8  # arm full stroke, carrying a stack
    #: overlap savings when roller/arm/drive motions are pipelined (§3.2)
    parallel_save_load: float = 4.4
    parallel_save_unload: float = 5.3

    def travel(self, layer_fraction: float, loaded: bool) -> float:
        """Vertical travel time to a layer at ``layer_fraction`` from top."""
        full = self.travel_loaded_full if loaded else self.travel_empty_full
        return full * layer_fraction

    def separate_one(self) -> float:
        """Time to separate a single disc from the stack into one drive."""
        return self.separate_all / 12.0

    def collect_one(self) -> float:
        """Time to fetch a single disc from one drive back onto the stack."""
        return self.collect_all / 12.0

    def load_total(
        self, layer_fraction: float, parallel: bool = False
    ) -> float:
        """Composite tray-to-drives load time (Table 3, row 'loading')."""
        total = (
            self.rotate
            + self.fan_out
            + self.travel(layer_fraction, loaded=False)
            + self.engage
            + self.lift
            + self.fan_in
            + self.separate_all
        )
        if parallel:
            total -= min(self.parallel_save_load, total - self.separate_all)
        return total

    def unload_total(
        self, layer_fraction: float, parallel: bool = False
    ) -> float:
        """Composite drives-to-tray unload time (Table 3, row 'unloading')."""
        total = (
            self.collect_all
            + self.rotate
            + self.fan_out
            + self.travel(layer_fraction, loaded=True)
            + self.engage
            + self.lift
            + self.fan_in
        )
        if parallel:
            total -= min(self.parallel_save_unload, total - self.collect_all)
        return total


#: Timings calibrated to the paper's prototype.
DEFAULT_TIMINGS = MechanicalTimings()
