"""The mechanical subsystem: rollers + arms + PLC + drive sets, composed.

This is the layer the OLFS Mechanical Controller talks to.  It exposes the
two composite operations the paper measures (Table 3):

* :meth:`MechanicalSubsystem.load_array` — bring a tray's 12 discs from the
  roller into a drive set (rotate, travel, hook, fan out, grab/lift,
  fan in, then separate discs one by one into opened drives).
* :meth:`MechanicalSubsystem.unload_array` — collect the 12 discs from the
  drives and return them to their tray.

Arm access is serialized per roller through a simulation resource, with
priorities so urgent fetches (cache-miss reads) can jump the queue ahead of
background burn staging.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.drives.drive_set import DriveSet
from repro.errors import MechanicsError
from repro.mechanics.arm import PARK_LAYER, RoboticArm
from repro.mechanics.geometry import DEFAULT_GEOMETRY, RollerGeometry, TrayAddress
from repro.mechanics.roller import Roller
from repro.mechanics.timing import DEFAULT_TIMINGS, MechanicalTimings
from repro.media.disc import DiscType, BD25
from repro.media.tray import Tray
from repro.plc.channel import ControlChannel
from repro.plc.controller import PLCController
from repro.plc.instructions import (
    FanIn,
    FanOut,
    GrabStack,
    HookTray,
    LowerStack,
    MoveArm,
    ReleaseTray,
    Rotate,
    SeparateDisc,
)
from repro.sim.engine import Acquire, Delay, Engine
from repro.sim.resources import Resource


class MechanicalSubsystem:
    """Rollers, arms, PLC and drive sets of one ROS rack."""

    def __init__(
        self,
        engine: Engine,
        roller_count: int = 2,
        drive_sets_per_roller: int = 1,
        geometry: RollerGeometry = DEFAULT_GEOMETRY,
        timings: MechanicalTimings = DEFAULT_TIMINGS,
        disc_type: DiscType = BD25,
        populate: bool = True,
        parallel_scheduling: bool = False,
    ):
        self.engine = engine
        self.geometry = geometry
        self.timings = timings
        self.parallel_scheduling = parallel_scheduling
        self.rollers = [
            Roller(engine, index, geometry, timings)
            for index in range(roller_count)
        ]
        self.arms = [
            RoboticArm(engine, index, geometry, timings)
            for index in range(roller_count)
        ]
        self.plc = PLCController(engine, self.rollers, self.arms)
        self.channel = ControlChannel(engine, self.plc)
        self.drive_sets: list[DriveSet] = []
        self._set_roller: dict[int, int] = {}
        for roller_index in range(roller_count):
            for _ in range(drive_sets_per_roller):
                set_id = len(self.drive_sets)
                self.drive_sets.append(DriveSet(engine, set_id))
                self._set_roller[set_id] = roller_index
        self._arm_locks = [
            Resource(engine, 1, name=f"arm{index}")
            for index in range(roller_count)
        ]
        if populate:
            for roller in self.rollers:
                roller.populate_blank(disc_type)

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def roller_of_set(self, set_id: int) -> int:
        return self._set_roller[set_id]

    def sets_of_roller(self, roller_index: int) -> list[DriveSet]:
        return [
            drive_set
            for drive_set in self.drive_sets
            if self._set_roller[drive_set.set_id] == roller_index
        ]

    def tray_at(self, roller_index: int, address: TrayAddress) -> Tray:
        return self.rollers[roller_index].tray_at(address)

    def locate_disc(
        self, disc_id: str
    ) -> Optional[tuple[int, TrayAddress]]:
        """Find which roller tray currently stores ``disc_id``, if any."""
        for roller in self.rollers:
            address = roller.find_disc(disc_id)
            if address is not None:
                return roller.roller_id, address
        return None

    def total_discs(self) -> int:
        in_rollers = sum(roller.disc_count() for roller in self.rollers)
        in_drives = sum(
            1
            for drive_set in self.drive_sets
            for drive in drive_set.drives
            if drive.has_disc
        )
        return in_rollers + in_drives

    def health(self) -> dict:
        """Aggregate snapshot of the whole mechanical subsystem."""
        return {
            "rollers": [roller.health() for roller in self.rollers],
            "arms": [arm.health() for arm in self.arms],
            "plc": self.plc.health(),
            "channel": self.channel.health(),
            "arm_queues": [
                {
                    "roller": index,
                    "available": lock.available,
                    "queue_length": lock.queue_length,
                }
                for index, lock in enumerate(self._arm_locks)
            ],
            "drive_sets": [ds.health() for ds in self.drive_sets],
        }

    # ------------------------------------------------------------------
    # Composite operations (simulation processes)
    # ------------------------------------------------------------------
    def load_array(
        self,
        set_id: int,
        address: TrayAddress,
        priority: int = 0,
    ) -> Generator:
        """Move a tray's discs from the roller into drive set ``set_id``.

        Returns the list of discs now sitting in the drives (top drive
        first).  Table 3, "loading" rows.
        """
        with self.engine.trace.span(
            "mech.load_array",
            "mech",
            {"set_id": set_id, "layer": address.layer, "slot": address.slot},
        ):
            placed = yield from self._load_array(set_id, address, priority)
        return placed

    def _load_array(
        self,
        set_id: int,
        address: TrayAddress,
        priority: int = 0,
    ) -> Generator:
        roller_index = self.roller_of_set(set_id)
        drive_set = self.drive_sets[set_id]
        if not drive_set.is_empty:
            raise MechanicsError(f"drive set {set_id} is not empty")
        roller = self.rollers[roller_index]
        tray = roller.tray_at(address)
        if tray.checked_out or tray.is_empty:
            raise MechanicsError(f"tray {address} has no discs to load")
        grant = yield Acquire(self._arm_locks[roller_index], priority)
        try:
            if self.parallel_scheduling:
                discs = yield from self._load_positioning_parallel(
                    roller_index, address
                )
            else:
                discs = yield from self._load_positioning_serial(
                    roller_index, address
                )
            drive_set.open_all_trays()
            placed = []
            for index in range(len(discs)):
                disc = yield from self.channel.send(
                    SeparateDisc(roller_index, set_id, index)
                )
                drive = drive_set.drives[index]
                drive.insert_disc(disc)
                drive.close_tray()
                placed.append(disc)
            # Any drives beyond the disc count close empty.
            for index in range(len(discs), len(drive_set.drives)):
                drive_set.drives[index].close_tray()
            drive_set.loaded_from = (roller_index, address)
            return placed
        finally:
            grant.release()

    def _load_positioning_serial(
        self, roller_index: int, address: TrayAddress
    ) -> Generator:
        """Rotate/travel/hook/fan-out/grab/fan-in, fully sequential."""
        send = self.channel.send
        yield from send(Rotate(roller_index, address.slot))
        yield from send(MoveArm(roller_index, address.layer))
        yield from send(HookTray(roller_index))
        yield from send(FanOut(roller_index, address.layer, address.slot))
        discs = yield from send(GrabStack(roller_index, roller_index))
        yield from send(ReleaseTray(roller_index))
        yield from send(FanIn(roller_index))
        return discs

    def _load_positioning_parallel(
        self, roller_index: int, address: TrayAddress
    ) -> Generator:
        """Overlapped positioning (§3.2 scheduling optimization).

        Roller rotation overlaps arm travel and the tray fan-in overlaps
        the first disc separations; modelled as the calibrated composite
        minus the separation phase.
        """
        timings = self.timings
        fraction = self.geometry.layer_fraction(address.layer)
        positioning = timings.load_total(fraction, parallel=True)
        positioning -= timings.separate_all
        yield Delay(positioning)
        roller = self.rollers[roller_index]
        arm = self.arms[roller_index]
        roller.facing_slot = address.slot
        roller.aligned = False
        discs = roller.tray_at(address).take_all()
        arm.holding = list(discs)
        arm.layer = PARK_LAYER
        return discs

    def unload_array(
        self,
        set_id: int,
        address: Optional[TrayAddress] = None,
        priority: int = 0,
    ) -> Generator:
        """Return the discs in drive set ``set_id`` to a roller tray.

        ``address`` defaults to the tray the array was loaded from.
        Table 3, "unloading" rows.
        """
        with self.engine.trace.span(
            "mech.unload_array", "mech", {"set_id": set_id}
        ):
            result = yield from self._unload_array(set_id, address, priority)
        return result

    def _unload_array(
        self,
        set_id: int,
        address: Optional[TrayAddress] = None,
        priority: int = 0,
    ) -> Generator:
        roller_index = self.roller_of_set(set_id)
        drive_set = self.drive_sets[set_id]
        if drive_set.is_busy:
            raise MechanicsError(f"drive set {set_id} has busy drives")
        if address is None:
            if drive_set.loaded_from is None:
                raise MechanicsError(
                    f"drive set {set_id} has no home tray recorded"
                )
            roller_index, address = drive_set.loaded_from
        roller = self.rollers[roller_index]
        tray = roller.tray_at(address)
        if not tray.checked_out and not tray.is_empty:
            raise MechanicsError(f"tray {address} already holds discs")
        grant = yield Acquire(self._arm_locks[roller_index], priority)
        try:
            send = self.channel.send
            arm = self.arms[roller_index]
            yield from send(MoveArm(roller_index, PARK_LAYER))
            # Collect discs from drive trays, top down, one by one.
            for drive in drive_set.drives:
                if drive.disc is None:
                    continue
                drive.open_tray()
                disc = drive.remove_disc()
                drive.close_tray()
                yield from self.plc.collect_into_arm(roller_index, disc)
            if self.parallel_scheduling:
                fraction = self.geometry.layer_fraction(address.layer)
                positioning = (
                    self.timings.unload_total(fraction, parallel=True)
                    - self.timings.collect_all
                )
                yield Delay(positioning)
                roller.facing_slot = address.slot
                roller.aligned = False
                discs = list(arm.holding)
                arm.holding = []
                if not tray.checked_out:
                    tray.checked_out = True
                tray.put_back(discs)
                arm.layer = address.layer
            else:
                yield from send(Rotate(roller_index, address.slot))
                yield from send(MoveArm(roller_index, address.layer))
                yield from send(HookTray(roller_index))
                yield from send(
                    FanOut(roller_index, address.layer, address.slot)
                )
                if not tray.checked_out:
                    # Returning to a different (empty) tray than the origin.
                    tray.checked_out = True
                yield from send(LowerStack(roller_index, roller_index))
                yield from send(ReleaseTray(roller_index))
                yield from send(FanIn(roller_index))
            drive_set.loaded_from = None
            return address
        finally:
            grant.release()

    def _orphaned_sets(self, roller_index: int) -> list:
        """Idle drive sets holding discs with no home tray recorded.

        The signature of a load aborted after disc separation began but
        before ``loaded_from`` was stamped; only
        :meth:`reset_after_fault` can return such a set's discs home.
        """
        return [
            drive_set
            for drive_set in self.sets_of_roller(roller_index)
            if not drive_set.is_busy
            and drive_set.loaded_from is None
            and any(drive.disc is not None for drive in drive_set.drives)
        ]

    @staticmethod
    def _home_of_disc(disc_id: str) -> Optional[TrayAddress]:
        """Parse the home tray out of a ``populate_blank`` disc id."""
        import re

        match = re.fullmatch(r"r\d+-l(\d+)-s(\d+)-d\d+", disc_id)
        if match is None:
            return None
        return TrayAddress(int(match.group(1)), int(match.group(2)))

    def reset_after_fault(self, priority: int = 0) -> Generator:
        """Return the mechanics to a consistent state after an aborted
        load/unload (a PLC fault or arm jam mid-sequence).

        Models the PLC's automatic fault-recovery routine: any disc stack
        stranded on an arm goes back to its tray, fanned-out trays close,
        hooks release, and a partially loaded/unloaded drive set is fully
        emptied back home.  No-op when every pair is already consistent.
        """
        for roller_index, (roller, arm) in enumerate(
            zip(self.rollers, self.arms)
        ):
            orphaned = self._orphaned_sets(roller_index)
            if not (
                roller.fanned_out is not None
                or arm.hooked
                or arm.holding
                or orphaned
            ):
                continue
            grant = yield Acquire(self._arm_locks[roller_index], priority)
            try:
                yield Delay(self.timings.fan_in)
                if arm.holding and roller.fanned_out is None:
                    # Aborted mid-unload (stack collected, tray not yet
                    # reached) or mid-separation: gather the rest of the
                    # faulted set's discs and send everything home.  The
                    # home tray is recovered from the held discs' ids
                    # (populate_blank encodes it) or the set's record.
                    stack = list(arm.holding)
                    arm.holding = []
                    home = self._home_of_disc(stack[0].disc_id)
                    for drive_set in self.sets_of_roller(roller_index):
                        if drive_set.is_busy:
                            continue
                        loaded = drive_set.loaded_from
                        if loaded is not None and loaded[1] != home:
                            continue  # a healthy idle set; leave it be
                        if not any(
                            d.disc is not None for d in drive_set.drives
                        ):
                            continue
                        if home is None and loaded is not None:
                            home = loaded[1]
                        for drive in drive_set.drives:
                            if drive.disc is None:
                                continue
                            drive.open_tray()
                            stack.append(drive.remove_disc())
                            drive.close_tray()
                        drive_set.loaded_from = None
                    if home is None:
                        home = next(
                            (
                                address
                                for address in self.geometry.addresses()
                                if roller.tray_at(address).checked_out
                                and roller.tray_at(address).is_empty
                            ),
                            None,
                        )
                    if home is not None:
                        tray = roller.tray_at(home)
                        if not tray.checked_out:
                            tray.checked_out = True
                        tray.put_back(stack)
                elif roller.fanned_out is not None:
                    tray = roller.tray_at(roller.fanned_out)
                    if arm.holding:
                        stack = list(arm.holding)
                        arm.holding = []
                        if not tray.checked_out:
                            tray.checked_out = True
                        tray.put_back(stack)
                    roller._fanned_out = None
                    roller.aligned = False
                # A load aborted between the first disc separation and
                # the home-tray record leaves a set holding discs with
                # ``loaded_from`` unset (and, if the abort hit the last
                # separation, an empty arm — invisible to the checks
                # above).  Such a set can never be unloaded through the
                # normal path, so empty it back to its home tray here.
                for drive_set in self._orphaned_sets(roller_index):
                    held = [
                        drive.disc
                        for drive in drive_set.drives
                        if drive.disc is not None
                    ]
                    home = self._home_of_disc(held[0].disc_id)
                    if home is not None:
                        candidate = roller.tray_at(home)
                        if not candidate.checked_out and not candidate.is_empty:
                            home = None  # home tray re-occupied; fall back
                    if home is None:
                        home = next(
                            (
                                address
                                for address in self.geometry.addresses()
                                if roller.tray_at(address).checked_out
                                and roller.tray_at(address).is_empty
                            ),
                            None,
                        )
                    if home is None:
                        continue  # nowhere safe to put the discs back
                    stack = []
                    for drive in drive_set.drives:
                        if drive.disc is None:
                            continue
                        drive.open_tray()
                        stack.append(drive.remove_disc())
                        drive.close_tray()
                    tray = roller.tray_at(home)
                    if not tray.checked_out:
                        tray.checked_out = True
                    tray.put_back(stack)
                arm.hooked = False
            finally:
                grant.release()

    def swap_array(
        self,
        set_id: int,
        new_address: TrayAddress,
        priority: int = 0,
    ) -> Generator:
        """Unload the current array (if any) and load another (Table 1's
        'drives are not working' case: ~155 s)."""
        drive_set = self.drive_sets[set_id]
        if not drive_set.is_empty:
            yield from self.unload_array(set_id, priority=priority)
        discs = yield from self.load_array(set_id, new_address, priority)
        return discs
