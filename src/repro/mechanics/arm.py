"""The robotic arm: vertical motion, tray hooking, disc separation.

The arm (§3.2) moves only vertically.  It locks a tray's outer hook so the
roller's rotation fans the tray out, lifts the 12-disc stack above the drive
set, then separates discs one by one — top drive first — into the opened
drive trays.  Unloading reverses the process.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import MechanicsError
from repro.mechanics.geometry import DEFAULT_GEOMETRY, RollerGeometry
from repro.mechanics.timing import DEFAULT_TIMINGS, MechanicalTimings
from repro.media.disc import OpticalDisc
from repro.sim.engine import Delay, Engine

#: The arm parks at the uppermost layer (§5.2 measurement note).
PARK_LAYER = 0


class RoboticArm:
    """One vertical-travel robotic arm serving one roller."""

    def __init__(
        self,
        engine: Engine,
        arm_id: int = 0,
        geometry: RollerGeometry = DEFAULT_GEOMETRY,
        timings: MechanicalTimings = DEFAULT_TIMINGS,
    ):
        self.engine = engine
        self.arm_id = arm_id
        self.geometry = geometry
        self.timings = timings
        self.layer = PARK_LAYER
        self.holding: list[OpticalDisc] = []
        self.hooked = False
        self.travel_seconds = 0.0
        self.moves = 0

    @property
    def is_loaded(self) -> bool:
        return bool(self.holding)

    # ------------------------------------------------------------------
    # Motion processes
    # ------------------------------------------------------------------
    def move_to_layer(self, layer: int) -> Generator:
        """Travel vertically to ``layer``; slower when carrying a stack."""
        if not (0 <= layer < self.geometry.layers):
            raise MechanicsError(f"layer {layer} out of range")
        if layer == self.layer:
            return
        distance = abs(
            self.geometry.layer_fraction(layer)
            - self.geometry.layer_fraction(self.layer)
        )
        seconds = self.timings.travel(distance, loaded=self.is_loaded)
        with self.engine.trace.span(
            "arm.move", "arm", {"arm_id": self.arm_id, "layer": layer}
        ):
            yield Delay(seconds)
        self.travel_seconds += seconds
        self.moves += 1
        self.layer = layer

    def park(self) -> Generator:
        yield from self.move_to_layer(PARK_LAYER)

    def hook_tray(self) -> Generator:
        """Lock the outer hook of the tray facing the arm."""
        if self.hooked:
            raise MechanicsError("arm already hooked to a tray")
        with self.engine.trace.span(
            "arm.hook", "arm", {"arm_id": self.arm_id}
        ):
            yield Delay(self.timings.engage)
        self.hooked = True

    def release_tray(self) -> Generator:
        if not self.hooked:
            raise MechanicsError("arm is not hooked to a tray")
        yield Delay(0.0)
        self.hooked = False

    def grab_stack(self, discs: list[OpticalDisc]) -> Generator:
        """Lift a fetched disc stack up to the position atop the drives.

        The prototype charges the lift-to-drives motion at a constant time
        regardless of source layer (the layer-dependent cost shows up only
        in the approach travel — Table 3 adds ~4.5 s for the lowest layer,
        once).  The arm therefore ends this operation parked at the drive
        position (layer 0).
        """
        if self.holding:
            raise MechanicsError("arm is already holding discs")
        with self.engine.trace.span(
            "arm.grab", "arm", {"arm_id": self.arm_id, "discs": len(discs)}
        ):
            yield Delay(self.timings.lift)
        self.holding = list(discs)
        self.layer = PARK_LAYER

    def lower_stack(self) -> Generator:
        """Lower the held stack into the open tray; returns the discs."""
        if not self.holding:
            raise MechanicsError("arm is not holding discs")
        with self.engine.trace.span(
            "arm.lower", "arm", {"arm_id": self.arm_id}
        ):
            yield Delay(self.timings.lift)
        discs, self.holding = self.holding, []
        return discs

    def separate_next(self) -> Generator:
        """Separate the bottom disc of the held stack (for the next drive).

        The ROS arm places discs from the bottom of the stack into drives
        from the top down (§3.2).  Returns the separated disc.
        """
        if not self.holding:
            raise MechanicsError("no discs left to separate")
        with self.engine.trace.span(
            "arm.separate", "arm", {"arm_id": self.arm_id}
        ):
            yield Delay(self.timings.separate_one())
        return self.holding.pop(0)

    def collect_next(self, disc: OpticalDisc) -> Generator:
        """Fetch one disc from an ejected drive tray onto the held stack."""
        with self.engine.trace.span(
            "arm.collect", "arm", {"arm_id": self.arm_id}
        ):
            yield Delay(self.timings.collect_one())
        self.holding.append(disc)

    def health(self) -> dict:
        """Cheap read-only snapshot for the system monitor."""
        return {
            "arm_id": self.arm_id,
            "layer": self.layer,
            "holding": len(self.holding),
            "hooked": self.hooked,
            "moves": self.moves,
            "travel_seconds": round(self.travel_seconds, 6),
        }

    def __repr__(self) -> str:
        return (
            f"<RoboticArm {self.arm_id} layer={self.layer} "
            f"holding={len(self.holding)} hooked={self.hooked}>"
        )
