"""The rotatable roller holding 510 trays of discs.

The roller's only degree of freedom is rotation: it turns (in either
direction, §3.2) to bring a tray slot in front of the robotic arm.  Tray
fan-out/fan-in are cooperative motions between the roller and the arm hook;
here they are modelled as timed roller operations with sensor feedback.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import MechanicsError
from repro.mechanics.geometry import DEFAULT_GEOMETRY, RollerGeometry, TrayAddress
from repro.mechanics.timing import DEFAULT_TIMINGS, MechanicalTimings
from repro.media.disc import DiscType, OpticalDisc, BD25
from repro.media.tray import Tray
from repro.sim.engine import Delay, Engine

#: Power drawn while the roller motor turns (§3.2: "less than 50 watts").
ROTATION_POWER_W = 50.0


class Roller:
    """One rotatable cylinder of trays plus its rotation state."""

    def __init__(
        self,
        engine: Engine,
        roller_id: int = 0,
        geometry: RollerGeometry = DEFAULT_GEOMETRY,
        timings: MechanicalTimings = DEFAULT_TIMINGS,
    ):
        self.engine = engine
        self.roller_id = roller_id
        self.geometry = geometry
        self.timings = timings
        self.trays: dict[TrayAddress, Tray] = {
            address: Tray(address.layer, address.slot, geometry.discs_per_tray)
            for address in geometry.addresses()
        }
        #: which slot column currently faces the arm
        self.facing_slot = 0
        #: fan-in leaves the roller in a mechanical detent slightly off
        #: angle, so every array operation begins with a short alignment
        #: rotation (<2 s, §5.5) even when the slot has not changed.
        self.aligned = False
        self.rotation_count = 0
        self.rotation_seconds = 0.0
        self._fanned_out: Optional[TrayAddress] = None

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def tray_at(self, address: TrayAddress) -> Tray:
        self.geometry.validate(address)
        return self.trays[address]

    def populate_blank(self, disc_type: DiscType = BD25) -> int:
        """Fill every tray with blank discs; returns the disc count."""
        count = 0
        for address, tray in self.trays.items():
            if not tray.is_empty:
                continue
            discs = [
                OpticalDisc(
                    disc_id=(
                        f"r{self.roller_id}-l{address.layer:02d}"
                        f"-s{address.slot}-d{position:02d}"
                    ),
                    disc_type=disc_type,
                )
                for position in range(self.geometry.discs_per_tray)
            ]
            tray.fill(discs)
            count += len(discs)
        return count

    def disc_count(self) -> int:
        return sum(tray.disc_count for tray in self.trays.values())

    def find_disc(self, disc_id: str) -> Optional[TrayAddress]:
        for address, tray in self.trays.items():
            for disc in tray.discs():
                if disc.disc_id == disc_id:
                    return address
        return None

    # ------------------------------------------------------------------
    # Motion (simulation processes)
    # ------------------------------------------------------------------
    def rotate_to(self, slot: int) -> Generator:
        """Rotate the roller so ``slot`` faces the arm (process)."""
        if self._fanned_out is not None:
            raise MechanicsError(
                f"cannot rotate roller {self.roller_id}: tray "
                f"{self._fanned_out} is fanned out"
            )
        if slot == self.facing_slot and self.aligned:
            return
        with self.engine.trace.span(
            "roller.rotate", "roller", {"roller_id": self.roller_id, "slot": slot}
        ):
            yield Delay(self.timings.rotate)
        self.rotation_count += 1
        self.rotation_seconds += self.timings.rotate
        self.facing_slot = slot
        self.aligned = True

    def fan_out(self, address: TrayAddress) -> Generator:
        """Fan the addressed tray out of the roller (process).

        Requires the roller to already face the tray's slot; the arm must
        have locked the tray's outer hook (the caller sequences this).
        """
        self.geometry.validate(address)
        if address.slot != self.facing_slot or not self.aligned:
            raise MechanicsError(
                f"tray {address} is not aligned with the arm "
                f"(facing slot {self.facing_slot}, aligned={self.aligned})"
            )
        if self._fanned_out is not None:
            raise MechanicsError(f"tray {self._fanned_out} already fanned out")
        with self.engine.trace.span(
            "roller.fan_out", "roller", {"roller_id": self.roller_id}
        ):
            yield Delay(self.timings.fan_out)
        self._fanned_out = address

    def fan_in(self) -> Generator:
        """Close the currently fanned-out tray back into the roller."""
        if self._fanned_out is None:
            raise MechanicsError("no tray is fanned out")
        with self.engine.trace.span(
            "roller.fan_in", "roller", {"roller_id": self.roller_id}
        ):
            yield Delay(self.timings.fan_in)
        self._fanned_out = None
        self.aligned = False

    @property
    def fanned_out(self) -> Optional[TrayAddress]:
        return self._fanned_out

    def rotation_energy_joules(self) -> float:
        """Energy spent rotating so far (50 W while turning)."""
        return ROTATION_POWER_W * self.rotation_seconds

    def health(self) -> dict:
        """Cheap read-only snapshot for the system monitor."""
        return {
            "roller_id": self.roller_id,
            "facing_slot": self.facing_slot,
            "aligned": self.aligned,
            "fanned_out": (
                [self._fanned_out.layer, self._fanned_out.slot]
                if self._fanned_out is not None
                else None
            ),
            "rotation_count": self.rotation_count,
            "rotation_seconds": round(self.rotation_seconds, 6),
            "discs": self.disc_count(),
        }

    def __repr__(self) -> str:
        return (
            f"<Roller {self.roller_id}: {self.disc_count()} discs, "
            f"facing slot {self.facing_slot}>"
        )
