"""Mechanical subsystem: roller geometry, robotic arm, sensors, timings.

The paper's §3.2 mechanical design reduced to its essence: a rotating
cylinder of trays plus an arm that only moves vertically.  Two movements
combine to load/unload 12-disc arrays into the drive sets; the timing model
is calibrated to the published per-phase delays (Table 3 and §3.2 text).
"""

from repro.mechanics.geometry import RollerGeometry, TrayAddress
from repro.mechanics.timing import MechanicalTimings
from repro.mechanics.roller import Roller
from repro.mechanics.arm import RoboticArm
from repro.mechanics.sensors import PositionSensor, RangeSensor, SensorSuite
from repro.mechanics.library import MechanicalSubsystem

__all__ = [
    "MechanicalSubsystem",
    "MechanicalTimings",
    "PositionSensor",
    "RangeSensor",
    "RobotArm",
    "RoboticArm",
    "Roller",
    "RollerGeometry",
    "SensorSuite",
    "TrayAddress",
]

RobotArm = RoboticArm  # legacy alias
