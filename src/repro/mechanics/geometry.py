"""Roller geometry: layers, slots and tray addressing.

One roller (§3.2): a rotatable cylinder, height 1.67 m, diameter 433 mm,
holding 510 trays of 12 discs — 85 layers of 6 lotus-arranged trays —
for 6120 discs.  A 42U rack fits two rollers (12,240 discs) plus 1-4 sets
of 12 half-height optical drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple


class TrayAddress(NamedTuple):
    """Physical position of a tray: layer (0 = uppermost) and slot."""

    layer: int
    slot: int


@dataclass(frozen=True)
class RollerGeometry:
    """Dimensions and addressing of one roller."""

    layers: int = 85
    slots_per_layer: int = 6
    discs_per_tray: int = 12
    height_m: float = 1.67
    diameter_mm: float = 433.0
    #: positioning precision of disc separation (§3.3: 0.05 mm)
    separation_precision_mm: float = 0.05

    def __post_init__(self):
        if self.layers < 1 or self.slots_per_layer < 1:
            raise ValueError("geometry must have at least one layer and slot")

    @property
    def trays(self) -> int:
        return self.layers * self.slots_per_layer

    @property
    def disc_capacity(self) -> int:
        return self.trays * self.discs_per_tray

    @property
    def lowest_layer(self) -> int:
        return self.layers - 1

    def validate(self, address: TrayAddress) -> None:
        if not (0 <= address.layer < self.layers):
            raise ValueError(
                f"layer {address.layer} out of range 0..{self.layers - 1}"
            )
        if not (0 <= address.slot < self.slots_per_layer):
            raise ValueError(
                f"slot {address.slot} out of range 0..{self.slots_per_layer - 1}"
            )

    def addresses(self) -> Iterator[TrayAddress]:
        """All tray addresses, top layer first (the arm parks at the top)."""
        for layer in range(self.layers):
            for slot in range(self.slots_per_layer):
                yield TrayAddress(layer, slot)

    def layer_fraction(self, layer: int) -> float:
        """Vertical position of a layer as a 0..1 fraction from the top."""
        if self.layers == 1:
            return 0.0
        return layer / (self.layers - 1)

    def slot_distance(self, slot_a: int, slot_b: int) -> int:
        """Rotation steps between two slots along the shorter direction."""
        raw = abs(slot_a - slot_b) % self.slots_per_layer
        return min(raw, self.slots_per_layer - raw)


#: The paper's production geometry.
DEFAULT_GEOMETRY = RollerGeometry()
