"""Sensors and the feedback-control loop.

ROS drives every motion in a closed loop (§3.3): the PLC issues a motor
command, then verifies the resulting state against sensor readings before
declaring the operation complete.  We model three kinds of sensors —
rotary encoders on the roller, a linear encoder on the arm, and the range
sensors used to separate discs at 0.05 mm precision — each of which can be
made to fail or drift for fault-injection tests.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import PLCFaultError


class Sensor:
    """Base sensor: reads a state via a probe callable, may be faulted."""

    def __init__(self, name: str, probe: Callable[[], float]):
        self.name = name
        self._probe = probe
        self._fault_offset = 0.0
        self.failed = False
        self.reads = 0

    def read(self) -> float:
        if self.failed:
            raise PLCFaultError(f"sensor {self.name} is not responding")
        self.reads += 1
        return self._probe() + self._fault_offset

    def inject_drift(self, offset: float) -> None:
        """Make the sensor report values offset by ``offset`` (miscalibration)."""
        self._fault_offset = offset

    def fail(self) -> None:
        self.failed = True

    def repair(self) -> None:
        self.failed = False
        self._fault_offset = 0.0


class PositionSensor(Sensor):
    """Encoder reporting a discrete position (slot index or layer index)."""


class RangeSensor(Sensor):
    """Range sensor used during disc separation; tolerance in millimetres."""

    def __init__(
        self,
        name: str,
        probe: Callable[[], float],
        tolerance_mm: float = 0.05,
    ):
        super().__init__(name, probe)
        self.tolerance_mm = tolerance_mm

    def verify_within(self, expected_mm: float) -> None:
        actual = self.read()
        if abs(actual - expected_mm) > self.tolerance_mm:
            raise PLCFaultError(
                f"range sensor {self.name}: expected {expected_mm:.3f} mm "
                f"+/- {self.tolerance_mm}, read {actual:.3f} mm"
            )


class SensorSuite:
    """All sensors of one roller/arm pair, with feedback verification."""

    def __init__(
        self,
        roller_position: Callable[[], float],
        arm_layer: Callable[[], float],
        separation_gap_mm: Callable[[], float],
    ):
        self.roller_encoder = PositionSensor("roller-encoder", roller_position)
        self.arm_encoder = PositionSensor("arm-encoder", arm_layer)
        self.separation_range = RangeSensor(
            "separation-range", separation_gap_mm
        )

    def verify_roller_at(self, slot: int) -> None:
        actual = self.roller_encoder.read()
        if round(actual) != slot:
            raise PLCFaultError(
                f"roller feedback mismatch: expected slot {slot}, "
                f"encoder reads {actual:.2f}"
            )

    def verify_arm_at(self, layer: int) -> None:
        actual = self.arm_encoder.read()
        if round(actual) != layer:
            raise PLCFaultError(
                f"arm feedback mismatch: expected layer {layer}, "
                f"encoder reads {actual:.2f}"
            )

    def verify_separation_gap(self, expected_mm: float) -> None:
        self.separation_range.verify_within(expected_mm)

    def all_sensors(self) -> list[Sensor]:
        return [self.roller_encoder, self.arm_encoder, self.separation_range]
