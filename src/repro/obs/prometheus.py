"""Prometheus text exposition for a :class:`MetricsRegistry`.

Produces the plain-text format scraped by Prometheus (version 0.0.4):
``# TYPE`` comment lines followed by sample lines.  Metric names are
sanitised (dots and dashes become underscores) and prefixed with
``repro_``; histogram buckets are emitted *cumulatively* with the
standard ``le`` label plus the ``_sum`` and ``_count`` series, so the
output round-trips through real Prometheus tooling.
"""

from __future__ import annotations

import re

from repro.sim.tracing import Counter, Gauge, Histogram, MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _format_value(value: float) -> str:
    # Integral values print without a trailing .0 — matches common
    # client-library output and keeps the exposition diff-stable.
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every metric in the registry as Prometheus exposition text."""
    lines: list[str] = []
    for name in sorted(registry._metrics):
        metric = registry._metrics[name]
        prom = _prom_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{bound:g}"}} {cumulative}'
                )
            lines.append(f'{prom}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{prom}_sum {_format_value(metric.total)}")
            lines.append(f"{prom}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")
