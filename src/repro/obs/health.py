"""System health monitor: periodic deep snapshots of every subsystem.

Every major subsystem exposes ``health() -> dict`` — a cheap, read-only
snapshot of its state machine, queue depths, occupancy and fault
counters.  :class:`SystemMonitor` aggregates those snapshots on the
simulated clock (riding the existing :class:`~repro.sim.telemetry.Sampler`
machinery via its ``on_tick`` hook, so one background process drives both
the numeric series and the health timeline), keeps a bounded timeline of
them, and polls an :class:`~repro.obs.slo.SLOWatchdog` on the same
cadence so paper-envelope violations are caught *while the run executes*,
not in a post-hoc sweep.

The monitor is strictly an observer: probes and snapshots never yield,
draw random numbers, or mutate subsystem state, so two runs of the same
seed with and without a monitor differ only by the sampler process's
sequence numbers — and not at all when the monitor is absent (the
default), which is what keeps the chaos corpus byte-identical.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterable, Optional

from repro.obs.recorder import FlightRecorder
from repro.obs.slo import PAPER_SLOS, SLO, SLOWatchdog
from repro.sim.telemetry import Sampler

#: Default sampling period (simulated seconds): fine enough to catch a
#: mechanical phase in flight, coarse enough to stay out of the way.
DEFAULT_PERIOD = 5.0

#: Bounded health-timeline length (ring, like the flight recorder).
DEFAULT_TIMELINE_CAPACITY = 512


class SystemMonitor:
    """Aggregates subsystem ``health()`` snapshots over simulated time."""

    def __init__(
        self,
        ros,
        period: float = DEFAULT_PERIOD,
        slos: Iterable[SLO] = PAPER_SLOS,
        timeline_capacity: int = DEFAULT_TIMELINE_CAPACITY,
        recorder: Optional[FlightRecorder] = None,
    ):
        self.ros = ros
        self.engine = ros.engine
        self.recorder = recorder
        self.timeline: deque[dict] = deque(maxlen=timeline_capacity)
        self.watchdog: Optional[SLOWatchdog] = (
            SLOWatchdog(self.engine.trace, slos)
            if self.engine.trace.enabled
            else None
        )
        self._finished = False
        #: extra subsystems rolled into every snapshot (name -> health fn)
        self._extra: dict[str, Callable[[], dict]] = {}
        #: monotonic event counters (gauges live in the timeline); unlike
        #: ``len(self.timeline)`` these never lose history to the ring
        self.counters = {"ticks": 0, "snapshots": 0, "slo_violations": 0}
        self.sampler = Sampler(
            self.engine,
            period=period,
            probes={
                "cache_images": lambda: len(ros.cache),
                "burning_drives": lambda: sum(
                    1 for ds in ros.mech.drive_sets if ds.is_burning
                ),
                "burn_tasks": lambda: len(ros.btm.active_tasks),
                "mech_queue": lambda: sum(
                    lock.queue_length for lock in ros.mc._locks.values()
                ),
            },
            on_tick=self._tick,
        )

    # ------------------------------------------------------------------
    def start(self) -> "SystemMonitor":
        if not self._finished:
            self.sampler.start()
        return self

    def stop(self) -> None:
        self.sampler.stop()

    @contextmanager
    def paused(self):
        """Suspend sampling across a full engine drain.

        The sampler's perpetual ``Delay`` would keep a no-horizon
        ``engine.run()`` alive forever; pause it for the drain, then
        resume on the (now later) clock.
        """
        self.stop()
        try:
            yield self
        finally:
            self.start()

    def __enter__(self) -> "SystemMonitor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _tick(self, now: float) -> None:
        self.counters["ticks"] += 1
        self.timeline.append(self.snapshot())
        if self.watchdog is not None:
            for violation in self.watchdog.poll():
                self.counters["slo_violations"] += 1
                if self.recorder is not None:
                    self.recorder.record("slo.violation", **violation)

    def attach_subsystem(
        self, name: str, health_fn: Callable[[], dict]
    ) -> "SystemMonitor":
        """Roll an extra subsystem's ``health()`` into every snapshot.

        Fleet campaigns attach the :class:`~repro.fleet.store.FleetStore`
        and :class:`~repro.fleet.recovery.RecoveryManager` here so site
        outages and rebuild progress land on the same timeline as the
        rack's own health.  Probes must stay read-only, like the
        monitor's own.
        """
        self._extra[name] = health_fn
        return self

    def snapshot(self) -> dict:
        """One aggregated health snapshot, stamped with the clock."""
        self.counters["snapshots"] += 1
        snap = {"t": round(self.engine.now, 6)}
        snap.update(self.ros.health())
        for name in sorted(self._extra):
            snap[name] = self._extra[name]()
        return snap

    # ------------------------------------------------------------------
    def finish(self) -> dict:
        """Final poll + summary: call once after the run settles.

        Terminal: the sampler will not restart (``start`` and ``paused``
        become no-ops), so a drained engine stays drained.
        """
        self._finished = True
        self.stop()
        final = self.snapshot()
        slo = self.watchdog.summary() if self.watchdog is not None else None
        return {
            "samples": len(self.timeline),
            "counters": {
                key: int(val) for key, val in sorted(self.counters.items())
            },
            "final": final,
            "slo": slo,
            "series": {
                name: {
                    "peak": self.sampler.peak(name),
                    "mean": round(self.sampler.mean(name), 3),
                }
                for name in sorted(self.sampler.series)
            },
        }
