"""Flight recorder: a bounded ring-buffer journal of structured events.

The recorder is the post-mortem counterpart of the tracer: where spans
measure *durations*, the flight recorder journals *discrete happenings* —
drive state transitions, PLC instructions on the control channel, cache
evictions, burn/fetch retries, fault injections — into a fixed-capacity
ring buffer (:class:`collections.deque` with ``maxlen``), so a long chaos
run keeps only the most recent window but a failed invariant can dump the
events leading up to the failure as JSONL.

Installation follows the ``NULL_TRACER`` / ``NULL_FAULTS`` discipline:
``engine.recorder`` defaults to :data:`repro.sim.engine.NULL_RECORDER`,
and instrumented sites call ``engine.recorder.record(...)`` which is a
no-op until a real :class:`FlightRecorder` is attached.  The recorder
never touches the clock, the RNG, or process scheduling, so attaching it
cannot perturb a deterministic run.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Optional

from repro.sim.engine import Engine

#: Default ring capacity: enough for the tail of a heavy chaos run while
#: keeping a dump readable.
DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """Bounded journal of ``{"t", "kind", ...fields}`` event dicts."""

    enabled = True

    def __init__(self, engine: Engine, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.engine = engine
        self.capacity = int(capacity)
        self._events: deque[dict] = deque(maxlen=self.capacity)
        #: total events ever recorded (including ones evicted by the ring)
        self.recorded = 0

    def install(self) -> "FlightRecorder":
        """Attach to the engine so instrumented sites journal here."""
        self.engine.recorder = self
        return self

    def record(self, kind: str, **fields) -> None:
        """Journal one event, stamped with the simulated clock."""
        self.recorded += 1
        event = {"t": round(self.engine.now, 6), "kind": kind}
        event.update(fields)
        self._events.append(event)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring (recorded minus retained)."""
        return self.recorded - len(self._events)

    def events(self, kind: Optional[str] = None) -> list[dict]:
        """Retained events in order; optionally filtered by ``kind``.

        ``kind`` matches exactly, or as a dotted prefix ("drive" matches
        "drive.transition" and "drive.retry").
        """
        if kind is None:
            return list(self._events)
        prefix = kind + "."
        return [
            event
            for event in self._events
            if event["kind"] == kind or event["kind"].startswith(prefix)
        ]

    def clear(self) -> None:
        self._events.clear()
        self.recorded = 0

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """All retained events as deterministic JSON Lines."""
        return "\n".join(
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            for event in self._events
        )

    def dump(self, path: str) -> int:
        """Write the journal to ``path`` as JSONL; returns event count."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            if text:
                handle.write(text + "\n")
        return len(self._events)

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder {len(self._events)}/{self.capacity} events"
            f" ({self.dropped} dropped)>"
        )
