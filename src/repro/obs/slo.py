"""SLO watchdog: audit every run against the paper's published envelopes.

Each :class:`SLO` is a declarative bound on one span name — a latency
ceiling (``max_seconds``), a throughput floor (``min_bytes_per_second``,
computed from the span's ``bytes`` tag), or both — annotated with the
paper table it came from.  :data:`PAPER_SLOS` encodes the envelopes of
*ROS: A Rack-based Optical Storage System* (EuroSys'17):

* **Table 1** — the cold-read budget: a read served from a disc on the
  roller completes in 70.553 s with free drives and 155.037 s when a
  loaded array must be unloaded first.  The ``op.read`` ceiling is the
  occupied worst case plus 10 % headroom.
* **Table 3** — mechanical phases: loading an array takes 68.7 s (top
  layer) to 73.2 s (bottom); unloading 81.7–86.5 s.  Ceilings are the
  bottom-layer numbers plus 5 % headroom.
* **§5.5** — a roller rotation takes under 2 s per slot step and the
  arm's vertical travel at most ~5 s.
* **§5.4 / Fig 8** — the 25 GB CAV burn ramps 4X→12X (average 8.2X,
  Table 2), so no healthy burn ever averages below 4X; the burn-speed
  floor also holds under the shared-HBA throttle, which only binds once
  per-drive speed exceeds ~7X.
* **§5.4** — spin-up from sleep is 2 s and the VFS mount 220 ms.

The :class:`SLOWatchdog` evaluates finished spans incrementally (a cursor
into ``tracer.spans``), so a :class:`~repro.obs.health.SystemMonitor` can
poll it live on every sampling tick without rescanning the whole stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro import units
from repro.sim.tracing import Span, Tracer


@dataclass(frozen=True)
class SLO:
    """A declarative service-level objective over one span name."""

    name: str
    span_name: str
    max_seconds: Optional[float] = None
    min_bytes_per_second: Optional[float] = None
    source: str = ""
    description: str = ""

    def check(self, span: Span) -> Optional[dict]:
        """Return a violation dict if ``span`` breaks this SLO, else None."""
        if span.name != self.span_name or not span.finished or span.instant:
            return None
        duration = span.duration
        if self.max_seconds is not None and duration > self.max_seconds:
            return self._violation(
                span,
                f"duration {duration:.3f}s > budget {self.max_seconds:.3f}s",
            )
        if self.min_bytes_per_second is not None:
            # Interrupted burns commit a partial track: the bytes tag holds
            # the *requested* size, so the rate is meaningless — skip them.
            if span.tags.get("interrupted"):
                return None
            nbytes = span.tags.get("bytes")
            if nbytes and duration > 0:
                rate = float(nbytes) / duration
                if rate < self.min_bytes_per_second:
                    return self._violation(
                        span,
                        f"rate {rate / units.MB:.2f} MB/s < floor "
                        f"{self.min_bytes_per_second / units.MB:.2f} MB/s",
                    )
        return None

    def _violation(self, span: Span, detail: str) -> dict:
        return {
            "slo": self.name,
            "span": span.name,
            "span_id": span.span_id,
            "t": round(span.start, 6),
            "duration": round(span.duration, 6),
            "detail": detail,
            "source": self.source,
        }


#: 10 % headroom on end-to-end latencies, 5 % on single mechanical phases.
_E2E_MARGIN = 1.10
_PHASE_MARGIN = 1.05

PAPER_SLOS: tuple[SLO, ...] = (
    SLO(
        name="read.cold_worst_case",
        span_name="op.read",
        max_seconds=155.037 * _E2E_MARGIN,
        source="Table 1",
        description=(
            "A read never exceeds the occupied-drives cold path "
            "(unload + load + mount + stream)"
        ),
    ),
    SLO(
        name="mech.load_array",
        span_name="mech.load_array",
        max_seconds=73.2 * _PHASE_MARGIN,
        source="Table 3",
        description="Array load within the bottom-layer budget",
    ),
    SLO(
        name="mech.unload_array",
        span_name="mech.unload_array",
        max_seconds=86.5 * _PHASE_MARGIN,
        source="Table 3",
        description="Array unload within the bottom-layer budget",
    ),
    SLO(
        name="roller.rotate_step",
        span_name="roller.rotate",
        max_seconds=2.0,
        source="§5.5",
        description="One roller rotation step takes under 2 s",
    ),
    SLO(
        name="arm.travel",
        span_name="arm.move",
        max_seconds=5.0,
        source="§5.5",
        description="Arm vertical travel at most ~5 s",
    ),
    SLO(
        name="drive.spin_up",
        span_name="drive.spin_up",
        max_seconds=2.0 * _PHASE_MARGIN,
        source="§5.4",
        description="Spin-up from sleep is 2 s",
    ),
    SLO(
        name="drive.mount",
        span_name="drive.mount",
        max_seconds=0.220 * _E2E_MARGIN,
        source="§5.4 / Table 1",
        description="VFS mount of a loaded disc is 220 ms",
    ),
    SLO(
        name="burn.speed_floor",
        span_name="drive.burn",
        min_bytes_per_second=4.0 * units.BLU_RAY_1X,
        source="Fig 8 / Table 2",
        description=(
            "A completed burn averages at least 4X (the CAV ramp's "
            "inner-radius speed)"
        ),
    ),
)


#: Preservation-campaign envelopes (repro.preserve).  Scrubbing one
#: array is bounded by load + per-disc mount/seek/read + unload plus
#: repair rewrites; an anti-entropy round may cold-read every audited
#: path from both replicas (Table 1 worst case per copy).
PRESERVE_SLOS: tuple[SLO, ...] = (
    SLO(
        name="preserve.scrub_array",
        span_name="preserve.scrub_array",
        max_seconds=900.0,
        source="§4.7 / Table 3",
        description=(
            "One patrol scrub (load, verify every disc, repair, unload) "
            "stays under 15 simulated minutes"
        ),
    ),
    SLO(
        name="preserve.audit_round",
        span_name="preserve.audit_round",
        max_seconds=3600.0,
        source="Table 1",
        description=(
            "One anti-entropy round over the archive completes within a "
            "simulated hour even when every read is cold"
        ),
    ),
)


def evaluate(
    slos: Iterable[SLO], spans: Iterable[Span]
) -> list[dict]:
    """One-shot evaluation of ``slos`` over ``spans`` (violations only)."""
    slos = list(slos)
    violations = []
    for span in spans:
        for slo in slos:
            violation = slo.check(span)
            if violation is not None:
                violations.append(violation)
    return violations


class SLOWatchdog:
    """Incremental SLO evaluation over a tracer's growing span stream."""

    def __init__(self, tracer: Tracer, slos: Iterable[SLO] = PAPER_SLOS):
        self.tracer = tracer
        self.slos = tuple(slos)
        self.violations: list[dict] = []
        self.spans_checked = 0
        #: spans before this index have been fully evaluated; spans still
        #: open at poll time are re-visited once they finish
        self._cursor = 0
        self._pending: list[Span] = []
        self._stream = tracer.spans

    def poll(self) -> list[dict]:
        """Evaluate spans finished since the last poll; returns new hits."""
        spans = self.tracer.spans
        if spans is not self._stream or self._cursor > len(spans):
            # ``Tracer.clear`` replaced the list under us (length alone
            # can't tell: the new stream may already be longer than the
            # old cursor); restart from the new stream.
            self._cursor = 0
            self._pending = []
            self._stream = spans
        fresh: list[Span] = []
        still_open: list[Span] = []
        for span in self._pending:
            (fresh if span.finished else still_open).append(span)
        while self._cursor < len(spans):
            span = spans[self._cursor]
            self._cursor += 1
            (fresh if span.finished else still_open).append(span)
        self._pending = still_open
        new = evaluate(self.slos, fresh)
        self.spans_checked += len(fresh)
        self.violations.extend(new)
        return new

    def summary(self) -> dict:
        """Deterministic per-SLO verdicts for run reports."""
        self.poll()
        by_slo = {slo.name: 0 for slo in self.slos}
        for violation in self.violations:
            by_slo[violation["slo"]] = by_slo.get(violation["slo"], 0) + 1
        return {
            "spans_checked": self.spans_checked,
            "violation_count": len(self.violations),
            "violations": list(self.violations),
            "verdicts": {
                slo.name: {
                    "ok": by_slo.get(slo.name, 0) == 0,
                    "violations": by_slo.get(slo.name, 0),
                    "source": slo.source,
                }
                for slo in self.slos
            },
        }
