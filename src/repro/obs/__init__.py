"""repro.obs — observability: health API, flight recorder, SLO watchdog.

Sits on top of the tracer/metrics/engine triad from :mod:`repro.sim`:

* :class:`SystemMonitor` samples every subsystem's ``health()`` snapshot
  on the simulated clock and keeps a bounded timeline.
* :class:`FlightRecorder` journals structured events (drive transitions,
  PLC instructions, cache evictions, retries, fault injections) into a
  ring buffer dumpable as JSONL — automatically on chaos-invariant
  failure.
* :class:`SLOWatchdog` audits the span stream live against the paper's
  envelopes (:data:`PAPER_SLOS`: Table 1, Table 3, §5.4/§5.5, Fig 8).
* :func:`to_prometheus` renders a ``MetricsRegistry`` in Prometheus text
  exposition format.

Everything defaults to *off*: ``engine.recorder`` is the no-op
:data:`~repro.sim.engine.NULL_RECORDER` until a recorder is installed,
and an un-monitored run is byte-identical to one before this module
existed.
"""

from repro.obs.health import SystemMonitor
from repro.obs.recorder import FlightRecorder
from repro.obs.report import build_report, render_report, report_json, top_spans
from repro.obs.slo import PAPER_SLOS, SLO, SLOWatchdog, evaluate
from repro.obs.prometheus import to_prometheus

__all__ = [
    "SystemMonitor",
    "FlightRecorder",
    "SLO",
    "SLOWatchdog",
    "PAPER_SLOS",
    "evaluate",
    "build_report",
    "render_report",
    "report_json",
    "top_spans",
    "to_prometheus",
]
