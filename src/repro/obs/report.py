"""Self-contained run reports: health + SLO verdicts + spans + metrics.

``build_report`` assembles everything the observability layer knows about
a finished run into one deterministic dict (health timeline from the
:class:`~repro.obs.health.SystemMonitor`, SLO verdicts from the watchdog,
a top-spans table aggregated from the tracer, the full metrics snapshot,
and flight-recorder statistics); ``render_report`` prints it for humans
and ``report_json`` serialises it canonically for artifacts and diffing.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.health import SystemMonitor
from repro.obs.recorder import FlightRecorder
from repro.sim.tracing import Tracer


def top_spans(tracer: Tracer, limit: int = 12) -> list[dict]:
    """Aggregate finished spans by name: count, total/max duration."""
    totals: dict[str, dict] = {}
    for span in tracer.spans:
        if not span.finished or span.instant:
            continue
        entry = totals.setdefault(
            span.name, {"name": span.name, "count": 0, "total_s": 0.0,
                        "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += span.duration
        entry["max_s"] = max(entry["max_s"], span.duration)
    rows = sorted(
        totals.values(), key=lambda row: (-row["total_s"], row["name"])
    )[:limit]
    for row in rows:
        row["total_s"] = round(row["total_s"], 6)
        row["max_s"] = round(row["max_s"], 6)
    return rows


def build_report(
    ros,
    monitor: Optional[SystemMonitor] = None,
    recorder: Optional[FlightRecorder] = None,
) -> dict:
    """One dict holding the run's complete observability picture."""
    report: dict = {"final_time": round(ros.engine.now, 6)}
    report["health"] = ros.health()
    if monitor is not None:
        report["monitor"] = monitor.finish()
        report["health_timeline"] = list(monitor.timeline)
    if ros.engine.trace.enabled:
        report["top_spans"] = top_spans(ros.engine.trace)
        report["span_count"] = len(ros.engine.trace.spans)
    report["metrics"] = ros.metrics.snapshot()
    if recorder is not None:
        report["flight_recorder"] = {
            "capacity": recorder.capacity,
            "recorded": recorder.recorded,
            "retained": len(recorder),
            "dropped": recorder.dropped,
        }
    return report


def report_json(report: dict) -> str:
    """Canonical JSON form (stable key order, compact separators)."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def _render_health(health: dict, indent: str = "  ") -> list[str]:
    lines = []
    for key in sorted(health):
        value = health[key]
        if isinstance(value, dict):
            lines.append(f"{indent}{key}:")
            lines.extend(_render_health(value, indent + "  "))
        elif isinstance(value, list):
            lines.append(f"{indent}{key}: {len(value)} item(s)")
        else:
            lines.append(f"{indent}{key}: {value}")
    return lines


def render_report(report: dict) -> str:
    """Human-readable multi-section report for the CLI."""
    lines = [f"run report @ t={report['final_time']:.3f}s", ""]
    monitor = report.get("monitor")
    if monitor is not None:
        slo = monitor.get("slo")
        lines.append(
            f"health timeline: {monitor['samples']} sample(s)"
        )
        for name, stats in monitor.get("series", {}).items():
            lines.append(
                f"  {name:<16s} peak={stats['peak']:g} mean={stats['mean']:g}"
            )
        lines.append("")
        if slo is not None:
            lines.append(
                f"SLO verdicts ({slo['spans_checked']} spans checked, "
                f"{slo['violation_count']} violation(s)):"
            )
            for name, verdict in sorted(slo["verdicts"].items()):
                status = "OK" if verdict["ok"] else (
                    f"VIOLATED x{verdict['violations']}"
                )
                lines.append(
                    f"  {name:<24s} {status:<14s} [{verdict['source']}]"
                )
            for violation in slo["violations"]:
                lines.append(
                    f"    t={violation['t']:.3f}s {violation['span']}: "
                    f"{violation['detail']}"
                )
            lines.append("")
    if "top_spans" in report:
        lines.append(f"top spans ({report['span_count']} total):")
        for row in report["top_spans"]:
            lines.append(
                f"  {row['name']:<28s} n={row['count']:<5d} "
                f"total={row['total_s']:>10.3f}s max={row['max_s']:>9.3f}s"
            )
        lines.append("")
    recorder = report.get("flight_recorder")
    if recorder is not None:
        lines.append(
            f"flight recorder: {recorder['retained']} event(s) retained "
            f"({recorder['recorded']} recorded, {recorder['dropped']} "
            f"dropped)"
        )
        lines.append("")
    metrics = report.get("metrics", {})
    lines.append(f"metrics: {len(metrics)} registered")
    lines.append("")
    lines.append("final health:")
    lines.extend(_render_health(report["health"]))
    return "\n".join(lines)
