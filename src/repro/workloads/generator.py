"""Archival workload generation: realistic file populations.

Generates the kinds of datasets the paper's introduction motivates —
scientific records, media assets, IoT telemetry — as reproducible streams
of (path, payload) pairs with log-normal size distributions (the standard
model for file-size populations) and a configurable directory fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro import units
from repro.sim.rng import DeterministicRNG


@dataclass(frozen=True)
class FileSpec:
    """One generated file: where it goes and what goes in it."""

    path: str
    size: int
    payload: bytes
    logical_size: Optional[int] = None

    @property
    def declared_size(self) -> int:
        return self.logical_size if self.logical_size is not None else self.size


#: Named size profiles: (log-normal mean of ln(bytes), sigma).
SIZE_PROFILES = {
    "scientific": (13.0, 1.5),  # ~0.4 MB median, heavy tail
    "media": (16.5, 1.0),  # ~15 MB median video/image masters
    "iot": (8.5, 0.8),  # ~5 KB telemetry records
    "mixed": (11.0, 2.0),
}


class ArchivalWorkloadGenerator:
    """Reproducible stream of archival files."""

    def __init__(
        self,
        profile: str = "mixed",
        seed: int = 42,
        root: str = "/archive",
        directories: int = 8,
        max_file_bytes: int = 64 * units.MB,
        payload_cap: int = 64 * 1024,
    ):
        if profile not in SIZE_PROFILES:
            raise ValueError(
                f"unknown profile {profile!r}; pick from {sorted(SIZE_PROFILES)}"
            )
        self.profile = profile
        self.root = root.rstrip("/")
        self.directories = directories
        self.max_file_bytes = max_file_bytes
        #: real payload bytes are capped; larger files carry declared sizes
        self.payload_cap = payload_cap
        self._seed = seed

    def files(self, count: int) -> Iterator[FileSpec]:
        """Yield ``count`` file specs — the same stream on every call."""
        rng = DeterministicRNG(self._seed).child(f"workload-{self.profile}")
        mean, sigma = SIZE_PROFILES[self.profile]
        for index in range(count):
            size = int(min(rng.lognormal(mean, sigma), self.max_file_bytes))
            size = max(size, 1)
            directory = rng.integers(0, self.directories)
            path = (
                f"{self.root}/{self.profile}/dir{directory:02d}/"
                f"file-{index:06d}.bin"
            )
            real = min(size, self.payload_cap)
            payload = rng.bytes(real)
            yield FileSpec(
                path=path,
                size=size,
                payload=payload,
                logical_size=size if size > real else None,
            )

    def total_bytes(self, count: int) -> int:
        """Declared bytes of a ``count``-file sample (re-generates)."""
        return sum(spec.declared_size for spec in self.files(count))
