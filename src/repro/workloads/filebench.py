"""Filebench-equivalent workloads (§5.2 uses filebench singlestream).

``SinglestreamWorkload`` reproduces filebench's ``singlestreamread`` /
``singlestreamwrite`` personalities: one thread streaming sequential I/O
at a fixed request size (1 MB by default) against one large file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro import units
from repro.frontend.stack import FilesystemStack
from repro.sim.engine import Engine


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    name: str
    total_bytes: float
    elapsed_seconds: float

    @property
    def throughput_mb_s(self) -> float:
        return self.total_bytes / self.elapsed_seconds / units.MB


class SinglestreamWorkload:
    """filebench singlestream(read|write), default 1 MB I/O size."""

    def __init__(
        self,
        direction: str = "read",
        total_bytes: float = 2 * units.GB,
        io_size: float = 1 * units.MB,
    ):
        if direction not in ("read", "write"):
            raise ValueError(f"direction must be read/write, not {direction!r}")
        self.direction = direction
        self.total_bytes = float(total_bytes)
        self.io_size = float(io_size)

    @property
    def name(self) -> str:
        return f"singlestream{self.direction}"

    def run_on_stack(
        self, engine: Engine, stack: FilesystemStack
    ) -> Generator:
        """Drive the stream through a frontend stack (timed); returns a
        :class:`WorkloadResult`."""
        start = engine.now
        yield from stack.singlestream(
            engine, self.total_bytes, self.io_size, self.direction
        )
        return WorkloadResult(
            self.name, self.total_bytes, engine.now - start
        )
