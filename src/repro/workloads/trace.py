"""Trace recording and replay.

Records every POSIX-level operation issued against a ROS instance as a
JSON-serializable event stream, and replays a recorded trace against
another instance — useful for A/B experiments (e.g. wait vs interrupt
policy on the same access pattern).
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class TraceEvent:
    """One recorded operation."""

    op: str  # write | read | stat | mkdir | readdir | unlink
    path: str
    at: float  # simulated time of issue
    size: int = 0
    payload: Optional[bytes] = None
    logical_size: Optional[int] = None

    def to_json(self) -> dict:
        record = {
            "op": self.op,
            "path": self.path,
            "at": self.at,
            "size": self.size,
        }
        if self.payload is not None:
            record["payload"] = base64.b64encode(self.payload).decode()
        if self.logical_size is not None:
            record["logical_size"] = self.logical_size
        return record

    @classmethod
    def from_json(cls, record: dict) -> "TraceEvent":
        payload = record.get("payload")
        return cls(
            op=record["op"],
            path=record["path"],
            at=record["at"],
            size=record.get("size", 0),
            payload=base64.b64decode(payload) if payload else None,
            logical_size=record.get("logical_size"),
        )


class TraceRecorder:
    """Wraps a ROS instance, recording every call it forwards."""

    def __init__(self, ros):
        self.ros = ros
        self.events: list[TraceEvent] = []

    def write(self, path: str, data: bytes, logical_size=None):
        self.events.append(
            TraceEvent(
                "write",
                path,
                self.ros.now,
                size=len(data),
                payload=data,
                logical_size=logical_size,
            )
        )
        return self.ros.write(path, data, logical_size)

    def read(self, path: str):
        self.events.append(TraceEvent("read", path, self.ros.now))
        return self.ros.read(path)

    def stat(self, path: str):
        self.events.append(TraceEvent("stat", path, self.ros.now))
        return self.ros.stat(path)

    def mkdir(self, path: str):
        self.events.append(TraceEvent("mkdir", path, self.ros.now))
        return self.ros.mkdir(path)

    def serialize(self) -> bytes:
        return json.dumps([e.to_json() for e in self.events]).encode()

    @staticmethod
    def deserialize(blob: bytes) -> list[TraceEvent]:
        return [TraceEvent.from_json(r) for r in json.loads(blob)]


def replay_trace(ros, events: list[TraceEvent]) -> dict:
    """Apply a trace to a ROS instance; returns summary statistics."""
    stats = {"ops": 0, "bytes_written": 0, "bytes_read": 0, "errors": 0}
    for event in events:
        stats["ops"] += 1
        try:
            if event.op == "write":
                ros.write(event.path, event.payload or b"", event.logical_size)
                stats["bytes_written"] += event.size
            elif event.op == "read":
                result = ros.read(event.path)
                stats["bytes_read"] += len(result.data)
            elif event.op == "stat":
                ros.stat(event.path)
            elif event.op == "mkdir":
                ros.mkdir(event.path)
        except Exception:  # noqa: BLE001 — replay is best-effort
            stats["errors"] += 1
    return stats
