"""Workload generation: filebench-style streams, size distributions, traces."""

from repro.workloads.filebench import SinglestreamWorkload
from repro.workloads.generator import ArchivalWorkloadGenerator, FileSpec
from repro.workloads.trace import TraceEvent, TraceRecorder, replay_trace

__all__ = [
    "ArchivalWorkloadGenerator",
    "FileSpec",
    "SinglestreamWorkload",
    "TraceEvent",
    "TraceRecorder",
    "replay_trace",
]
