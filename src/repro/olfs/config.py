"""OLFS configuration: redundancy schema, buckets, caching, calibration.

Two groups of knobs live here:

* **structural** — disc type, the 11+1/10+2 disc-array schema, bucket pool
  size, read-cache size, the busy-drive read policy, forepart settings;
* **calibration** — the fixed software-path costs the paper measures
  (Table 1 sub-millisecond components, Figure 7 per-op costs are composed
  from these plus the frontend stack).

Tests and benches scale ``bucket_capacity``/``disc_type`` down so the real
data path stays cheap while timing stays paper-accurate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.faults.policy import RetryPolicy
from repro.media.disc import BD25, DiscType


@dataclass
class OLFSConfig:
    """All OLFS tunables; defaults reproduce the paper's prototype."""

    # -- media / redundancy schema (§4.7) -------------------------------
    disc_type: DiscType = BD25
    #: data discs per array; 11 (+1 parity) = RAID-5 schema,
    #: 10 (+2) = RAID-6 schema
    data_discs_per_array: int = 11
    parity_discs_per_array: int = 1

    # -- buckets (§4.3) --------------------------------------------------
    #: capacity of each updatable bucket; equals the disc capacity so a
    #: filled bucket becomes exactly one disc image
    bucket_capacity: int = 0  # 0 -> disc_type.capacity
    #: open buckets kept ready ("a couple of updatable buckets")
    open_buckets: int = 2

    # -- read cache (§4.1) ------------------------------------------------
    #: disc images retained on the disk buffer by the LRU read cache
    read_cache_images: int = 4
    #: 'image' (paper default: whole disc images cache) or 'file'
    #: (§4.1 future work: keep only the requested files' bytes)
    cache_granularity: str = "image"
    #: byte budget of the file-grain cache (used when granularity='file')
    file_cache_bytes: int = 8 * 1024 * 1024
    #: §4.1 future work: prefetch this many same-directory successors of
    #: each mechanically fetched file while the disc is still mounted
    prefetch_siblings: int = 0

    # -- reads that miss everywhere (§4.8) --------------------------------
    #: 'wait' = queue behind the burn; 'interrupt' = appending-burn mode
    busy_drive_policy: str = "wait"
    #: spindle power policy: drives sleep after this many idle seconds
    #: (the §5.4 sleep state; next access pays the 2 s spin-up).
    #: None keeps loaded drives spinning.
    drive_idle_sleep_seconds: float | None = 300.0
    #: store the first N bytes of each file in its index file
    forepart_bytes: int = 256 * units.KB
    forepart_enabled: bool = True
    #: controlled trickle rate while the mechanical fetch proceeds
    forepart_trickle_rate: float = 128 * units.KB
    #: client-side read timeout (seconds; None = patient client).  §4.8:
    #: "the long mechanical delay might lead to read timeout" — without a
    #: forepart, a cold read that outlasts this deadline errors out while
    #: the fetch continues in the background (warming the cache)
    client_read_timeout: float | None = None

    # -- index files (§4.2, §4.6) -----------------------------------------
    #: version entries per index file before the ring wraps
    max_versions: int = 15
    #: §4.6: update a file in place when its current version still sits in
    #: an open bucket with room (no new version entry); False forces the
    #: regenerating-update path (every update -> new location + version)
    update_in_place: bool = True

    # -- burning (§4.7) ----------------------------------------------------
    #: start a burn as soon as a full array of data images is ready
    auto_burn: bool = True
    #: also burn a partial array when flush() is forced
    allow_partial_arrays: bool = True
    #: blank-tray allocation: 'sequential' (top-down fill), 'nearest'
    #: (minimize arm travel from its current layer), 'random'
    tray_allocation: str = "sequential"

    # -- fault tolerance (repro.faults) -----------------------------------
    #: backoff between burn-task retry rounds after a drive/media error
    burn_retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            attempts=4, base_delay=2.0, multiplier=2.0, max_delay=60.0
        )
    )
    #: retries for mechanical fetches (drive/PLC errors; media errors
    #: propagate so reads fall through to scrub + parity repair)
    fetch_retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            attempts=3, base_delay=1.0, multiplier=2.0, max_delay=30.0
        )
    )
    #: retries for recovery scans (MV rebuild reads burned discs)
    recovery_retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            attempts=3, base_delay=1.0, multiplier=2.0, max_delay=30.0
        )
    )

    # -- calibrated software-path costs (Table 1 decomposition) -----------
    #: MV index lookup / update on the SSD RAID-1 (ext4, direct I/O)
    mv_lookup_seconds: float = 0.0004
    mv_update_seconds: float = 0.0006
    #: locating + reading a file inside an open bucket on the disk buffer
    bucket_access_seconds: float = 0.0006
    #: extra cost of accessing a closed image on the disk buffer (loop
    #: device + UDF lookup; Table 1 row 'disc image' = 2 ms total)
    image_access_seconds: float = 0.0016
    #: POSIX-visible per-internal-op fixed cost through FUSE on ext4
    #: (Figure 7: ~2.5 ms average; per-op values in posix.py)
    internal_op_scale: float = 1.0

    # -- derived ----------------------------------------------------------
    def __post_init__(self):
        if self.bucket_capacity == 0:
            self.bucket_capacity = self.disc_type.capacity
        if self.busy_drive_policy not in ("wait", "interrupt"):
            raise ValueError(
                f"unknown busy_drive_policy {self.busy_drive_policy!r}"
            )
        if self.cache_granularity not in ("image", "file"):
            raise ValueError(
                f"unknown cache_granularity {self.cache_granularity!r}"
            )
        if self.tray_allocation not in ("sequential", "nearest", "random"):
            raise ValueError(
                f"unknown tray_allocation {self.tray_allocation!r}"
            )
        if self.data_discs_per_array < 1:
            raise ValueError("need at least one data disc per array")
        if self.parity_discs_per_array not in (0, 1, 2):
            raise ValueError("parity discs per array must be 0, 1 or 2")
        if self.data_discs_per_array + self.parity_discs_per_array > 12:
            raise ValueError("a disc array holds at most 12 discs")

    @property
    def discs_per_array(self) -> int:
        return self.data_discs_per_array + self.parity_discs_per_array

    @property
    def array_error_tolerance(self) -> int:
        return self.parity_discs_per_array

    def scaled_for_tests(self, bucket_capacity: int = 512 * units.KB) -> "OLFSConfig":
        """A copy with tiny buckets so the full data path runs in tests."""
        import dataclasses

        return dataclasses.replace(self, bucket_capacity=bucket_capacity)
