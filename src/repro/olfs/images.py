"""Disc Image Management (DIM): registry, locations, delayed parity (§4.7).

Tracks every disc image's life cycle::

    open bucket -> buffered (closed, on the disk buffer, unburned)
                -> burned   (on a disc; content may stay cached)

and maintains the DILindex — image ID to physical location (§4.1).  Parity
images are generated *delayed*: only once a full array of data images is
ready, by streaming all data images off the buffer and writing the parity
image back (the four-stream interference scenario of §4.7; reads/writes
are charged to the volumes the I/O scheduler assigns).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.errors import FilesystemError
from repro.olfs.config import OLFSConfig
from repro.sim.engine import AllOf, Engine, Spawn
from repro.storage.scheduler import IOStreamScheduler, StreamKind
from repro.udf.image import DiscImage

BUFFERED = "buffered"
BURNED = "burned"
IN_BUCKET = "in-bucket"


@dataclass
class ImageRecord:
    """DILindex entry: where an image is and what state it is in."""

    image_id: str
    kind: str
    state: str
    logical_size: int = 0
    #: in-memory content while buffered/cached; None once evicted
    image: Optional[DiscImage] = None
    #: disc holding the burned image, if any
    disc_id: Optional[str] = None
    #: tray position of that disc's array (roller index, layer, slot)
    array_address: Optional[tuple] = None
    #: sha256 of the serialized image as burned — the stored checksum the
    #: background scrubber verifies disc sectors against (§4.7)
    checksum: Optional[str] = None

    @property
    def on_buffer(self) -> bool:
        return self.image is not None


class DiscImageManager:
    """The DIM module plus the DILindex."""

    def __init__(
        self,
        engine: Engine,
        config: OLFSConfig,
        scheduler: IOStreamScheduler,
    ):
        self.engine = engine
        self.config = config
        self.scheduler = scheduler
        self.records: dict[str, ImageRecord] = {}
        self._parity_counter = itertools.count(1)
        self.parity_images_generated = 0

    # ------------------------------------------------------------------
    # Life-cycle transitions
    # ------------------------------------------------------------------
    def register_open_bucket(self, image_id: str) -> ImageRecord:
        record = ImageRecord(image_id, kind="data", state=IN_BUCKET)
        self.records[image_id] = record
        return record

    def bucket_closed(self, image: DiscImage) -> ImageRecord:
        """A bucket became an image: pin it on the buffer until burned."""
        record = self.records.get(image.image_id)
        if record is None:
            record = ImageRecord(image.image_id, kind=image.kind, state=BUFFERED)
            self.records[image.image_id] = record
        record.state = BUFFERED
        record.image = image
        record.logical_size = image.logical_size
        volume = self.scheduler.volume_for(StreamKind.USER_WRITE)
        volume.allocate(image.logical_size)
        return record

    def register_parity(self, image: DiscImage) -> ImageRecord:
        record = ImageRecord(
            image.image_id,
            kind="parity",
            state=BUFFERED,
            image=image,
            logical_size=image.logical_size,
        )
        self.records[image.image_id] = record
        # Buffer-space accounting is kept on the USER_WRITE volume for
        # every buffered image, wherever its stream was charged.
        volume = self.scheduler.volume_for(StreamKind.USER_WRITE)
        volume.allocate(image.logical_size)
        return record

    def mark_burned(
        self,
        image_id: str,
        disc_id: str,
        array_address: Optional[tuple] = None,
    ) -> None:
        record = self.records[image_id]
        record.state = BURNED
        record.disc_id = disc_id
        record.array_address = array_address
        # The burned bytes are the serialized image; fingerprint them so
        # scrubs can verify track payloads end-to-end (content integrity,
        # not just readable-sector bookkeeping).
        if record.checksum is None and record.image is not None:
            record.checksum = hashlib.sha256(
                record.image.serialize()
            ).hexdigest()

    def evict_content(self, image_id: str) -> None:
        """Drop a burned image's bytes from the disk buffer."""
        record = self.records[image_id]
        if record.state != BURNED:
            raise FilesystemError(
                f"cannot evict unburned image {image_id} ({record.state})"
            )
        if record.image is not None:
            volume = self.scheduler.volume_for(StreamKind.USER_WRITE)
            volume.release(record.logical_size)
            record.image = None

    def restore_content(self, image_id: str, image: DiscImage) -> None:
        """An image fetched back from disc re-enters the buffer (RC)."""
        record = self.records[image_id]
        if record.image is None:
            volume = self.scheduler.volume_for(StreamKind.USER_WRITE)
            volume.allocate(record.logical_size or image.logical_size)
        record.image = image
        if not record.logical_size:
            record.logical_size = image.logical_size

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def record(self, image_id: str) -> ImageRecord:
        if image_id not in self.records:
            raise FilesystemError(f"unknown image {image_id}")
        return self.records[image_id]

    def get_buffered(self, image_id: str) -> Optional[DiscImage]:
        record = self.records.get(image_id)
        return record.image if record else None

    def unburned_data_images(self) -> list[ImageRecord]:
        return [
            record
            for record in self.records.values()
            if record.kind == "data" and record.state == BUFFERED
        ]

    def burned_images(self) -> list[ImageRecord]:
        return [r for r in self.records.values() if r.state == BURNED]

    def location_of(self, image_id: str) -> str:
        """DILindex lookup: 'bucket', 'buffer', or the disc id."""
        record = self.record(image_id)
        if record.state == IN_BUCKET:
            return "bucket"
        if record.state == BUFFERED:
            return "buffer"
        return record.disc_id

    # ------------------------------------------------------------------
    # Delayed parity generation (§4.7)
    # ------------------------------------------------------------------
    def generate_parity(self, data_images: list[DiscImage]) -> Generator:
        """Create the parity image over a prepared array's data images.

        Streams every data image off the buffer (parity-read), XORs the
        serialized bytes, and writes the parity image back (parity-write);
        both streams are charged to the volumes the scheduler assigned, so
        this is exactly the interference workload §4.7 describes.
        Supports 1 parity (RAID-5 style XOR).  For the 10+2 RAID-6 schema
        a second, GF(256)-weighted parity is produced.
        """
        if not data_images:
            raise FilesystemError("parity over an empty image set")
        read_volume = self.scheduler.volume_for(StreamKind.PARITY_READ)
        write_volume = self.scheduler.volume_for(StreamKind.PARITY_WRITE)

        blobs = [image.serialize() for image in data_images]
        width = max(len(blob) for blob in blobs)
        logical = max(image.logical_size for image in data_images)

        def read_one(blob_size: float) -> Generator:
            yield from read_volume.read(blob_size)

        readers = []
        for image, blob in zip(data_images, blobs):
            readers.append(
                (
                    yield Spawn(
                        read_one(image.logical_size),
                        name=f"parity-read-{image.image_id}",
                    )
                )
            )
        yield AllOf(readers)

        parity = np.zeros(width, dtype=np.uint8)
        arrays = []
        for blob in blobs:
            padded = np.zeros(width, dtype=np.uint8)
            padded[: len(blob)] = np.frombuffer(blob, dtype=np.uint8)
            parity ^= padded
            arrays.append(padded)

        images_out = []
        parity_id = f"par-{next(self._parity_counter):08d}"
        yield from write_volume.write(logical)
        p_image = DiscImage(
            parity_id, kind="parity", raw=parity.tobytes(), logical_size=logical
        )
        self.register_parity(p_image)
        self.parity_images_generated += 1
        images_out.append(p_image)

        if self.config.parity_discs_per_array == 2:
            from repro.storage.gf256 import generator_coefficient, gf_mul_bytes

            q = np.zeros(width, dtype=np.uint8)
            for position, padded in enumerate(arrays):
                q ^= gf_mul_bytes(padded, generator_coefficient(position))
            q_id = f"par-{next(self._parity_counter):08d}"
            yield from write_volume.write(logical)
            q_image = DiscImage(
                q_id, kind="parity", raw=q.tobytes(), logical_size=logical
            )
            self.register_parity(q_image)
            self.parity_images_generated += 1
            images_out.append(q_image)
        return images_out

    @staticmethod
    def recover_data_blob(
        parity_raw: bytes, sibling_blobs: list[bytes], lost_length: int
    ) -> bytes:
        """Rebuild a lost data image's bytes from XOR parity + siblings."""
        width = len(parity_raw)
        result = np.frombuffer(parity_raw, dtype=np.uint8).copy()
        for blob in sibling_blobs:
            padded = np.zeros(width, dtype=np.uint8)
            padded[: len(blob)] = np.frombuffer(blob, dtype=np.uint8)
            result ^= padded
        return result.tobytes()[:lost_length]
