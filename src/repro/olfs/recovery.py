"""Recovery: MV checkpoints on disc and namespace reconstruction (§4.2, §4.4).

Two independent safety nets:

* **MV checkpoints** — the Metadata Volume is periodically serialized,
  chunked into ``metadata`` disc images and burned.  If MV fails, the
  latest snapshot is recovered by scanning the discs (the paper measured
  ~half an hour over 120 discs).
* **Full namespace reconstruction** — because every image carries its
  files' ancestor directories (unique file path, §4.4) and split files
  carry link files (§4.5), the entire global namespace can be rebuilt by
  scanning all survived data discs even with MV *and* every checkpoint
  lost.
"""

from __future__ import annotations

import itertools
import json
from typing import Generator, Optional

from repro.errors import DriveError, FilesystemError, MechanicsError
from repro.mechanics.geometry import TrayAddress
from repro.olfs.bucket import LINK_SUFFIX, WritingBucketManager
from repro.olfs.burning import BurnController, BurnTask
from repro.olfs.config import OLFSConfig
from repro.olfs.images import DiscImageManager
from repro.olfs.index import IndexFile, VersionEntry
from repro.olfs.mechanical import ArrayState, MechanicalController, PRIORITY_FETCH
from repro.olfs.metadata import MetadataVolume
from repro.sim.engine import Delay, Engine, Join
from repro.udf.entry import FileEntry
from repro.udf.filesystem import UDFFileSystem
from repro.udf.image import DiscImage

#: Reserve for the chunk file's UDF entries + manifest inside each image
#: (a handful of 2 KB blocks).
_CHUNK_OVERHEAD = 16 * 1024


class RecoveryManager:
    """MV checkpoint burning and disc-scan recovery."""

    def __init__(
        self,
        engine: Engine,
        config: OLFSConfig,
        mv: MetadataVolume,
        dim: DiscImageManager,
        mc: MechanicalController,
        btm: BurnController,
    ):
        self.engine = engine
        self.config = config
        self.mv = mv
        self.dim = dim
        self.mc = mc
        self.btm = btm
        self._snapshot_counter = itertools.count(1)
        self._metadata_counter = itertools.count(1)
        #: id of the last successfully burned checkpoint (delta base)
        self._last_checkpoint_id: Optional[int] = None

    # ------------------------------------------------------------------
    # Checkpoint burning
    # ------------------------------------------------------------------
    def burn_mv_snapshot(self, incremental: bool = False) -> Generator:
        """Serialize MV, chunk it into metadata images, burn the arrays.

        ``incremental=True`` burns only the entries changed since the last
        checkpoint (a *delta* chained to its base) — far fewer discs for a
        mostly-static namespace.  Returns the completed
        :class:`BurnTask` objects.
        """
        snapshot_id = next(self._snapshot_counter)
        if incremental:
            if self._last_checkpoint_id is None:
                raise FilesystemError(
                    "no base checkpoint: burn a full snapshot first"
                )
            blob = self.mv.collect_delta()
            kind, base = "delta", self._last_checkpoint_id
        else:
            blob = self.mv.serialize_snapshot()
            kind, base = "full", None
        chunk_size = self.config.bucket_capacity - _CHUNK_OVERHEAD
        if chunk_size <= 0:
            raise FilesystemError("bucket capacity too small for snapshots")
        chunks = [
            blob[offset : offset + chunk_size]
            for offset in range(0, len(blob), chunk_size)
        ] or [b""]
        records = []
        for seq, chunk in enumerate(chunks):
            image_id = f"mv-{next(self._metadata_counter):08d}"
            fs = UDFFileSystem(self.config.bucket_capacity, label=image_id)
            fs.write_file(
                "/mv/manifest.json",
                json.dumps(
                    {
                        "snapshot": snapshot_id,
                        "seq": seq,
                        "total": len(chunks),
                        "kind": kind,
                        "base": base,
                    }
                ).encode(),
                mtime=self.engine.now,
            )
            fs.write_file(f"/mv/chunk-{seq:06d}", chunk, mtime=self.engine.now)
            fs.close()
            image = DiscImage(image_id, kind="metadata", filesystem=fs)
            records.append(self.dim.bucket_closed(image))
        tasks: list[BurnTask] = []
        for start in range(0, len(records), self.config.data_discs_per_array):
            batch = records[start : start + self.config.data_discs_per_array]
            tasks.append(self.btm.schedule(batch))
        from repro.sim.engine import Wait

        for task in tasks:
            yield Wait(task.done_event)
        self._last_checkpoint_id = snapshot_id
        self.mv.clear_change_tracking()
        return tasks

    # ------------------------------------------------------------------
    # MV recovery from discs (the ~30-minute experiment)
    # ------------------------------------------------------------------
    def recover_mv_from_discs(self) -> Generator:
        """Scan used arrays for MV checkpoints and rebuild the newest view.

        Loads the newest *complete full* snapshot, then replays every
        complete delta chained after it in order.  Returns
        ``(last_applied_snapshot_id, discs_read)``.  Timed: every
        candidate array is mechanically loaded and its metadata chunks
        streamed off the discs.
        """
        chunks: dict[int, dict[int, bytes]] = {}
        meta: dict[int, dict] = {}
        discs_read = 0
        for (roller, address), state in sorted(self.mc.da_index.items()):
            if state is not ArrayState.USED:
                continue
            images = self.mc.array_images.get((roller, address), [])
            if not any(image_id.startswith("mv-") for image_id in images):
                continue
            discs_read += yield from self._with_retries(
                lambda: self._scan_array_for_chunks(
                    roller, address, chunks, meta
                ),
                "scan-array",
            )

        def complete(snapshot_id: int) -> bool:
            have = chunks.get(snapshot_id, {})
            return len(have) == meta[snapshot_id]["total"]

        def blob_of(snapshot_id: int) -> bytes:
            have = chunks[snapshot_id]
            return b"".join(have[seq] for seq in sorted(have))

        fulls = [
            snapshot_id
            for snapshot_id, info in meta.items()
            if info["kind"] == "full" and complete(snapshot_id)
        ]
        if not fulls:
            raise FilesystemError("no complete MV snapshot found on discs")
        base = max(fulls)
        self.mv.load_snapshot(blob_of(base))
        applied = base
        for snapshot_id in sorted(meta):
            if snapshot_id <= base:
                continue
            info = meta[snapshot_id]
            if (
                info["kind"] == "delta"
                and info.get("base") == applied
                and complete(snapshot_id)
            ):
                self.mv.apply_delta(blob_of(snapshot_id))
                applied = snapshot_id
        self.mv.clear_change_tracking()
        self._last_checkpoint_id = applied
        return applied, discs_read

    def _with_retries(self, factory, label: str) -> Generator:
        """Run ``factory()`` (a fresh generator per attempt) under the
        recovery retry policy, resetting the mechanics between attempts.
        Drive/mechanics faults are retried; media errors propagate."""
        last_error = None
        for attempt, backoff in self.config.recovery_retry.schedule():
            try:
                result = yield from factory()
                return result
            except (DriveError, MechanicsError) as error:
                last_error = error
                self.engine.trace.event(
                    "recovery.retry",
                    "recovery",
                    {"op": label, "attempt": attempt},
                )
                yield from self.mc.mech.reset_after_fault(PRIORITY_FETCH)
                if backoff is None:
                    raise
                yield Delay(backoff)
        raise last_error  # pragma: no cover — schedule() raises on last

    def _scan_array_for_chunks(
        self,
        roller: int,
        address: TrayAddress,
        chunks: dict,
        meta: dict,
    ) -> Generator:
        mech = self.mc.mech
        set_id = self.mc.pick_set_for_burn(roller)
        grant = yield from self.mc.acquire_set(set_id, PRIORITY_FETCH)
        try:
            drive_set = mech.drive_sets[set_id]
            if not drive_set.is_empty:
                yield from mech.unload_array(set_id, priority=PRIORITY_FETCH)
            yield from mech.load_array(set_id, address, priority=PRIORITY_FETCH)
            read = 0
            for drive in drive_set.drives:
                if drive.disc is None or not drive.disc.tracks:
                    continue
                track = drive.disc.tracks[0]
                header = DiscImage.peek_header(drive.disc.read_track(0))
                if header.get("kind") != "metadata":
                    continue
                yield from drive.mount()
                yield from drive.seek()
                yield from drive.read_bytes(track.logical_size)
                image = DiscImage.deserialize(drive.disc.read_track(0))
                fs = image.mount()
                manifest = json.loads(fs.read_file("/mv/manifest.json"))
                snapshot_id = manifest["snapshot"]
                meta[snapshot_id] = {
                    "total": manifest["total"],
                    "kind": manifest.get("kind", "full"),
                    "base": manifest.get("base"),
                }
                seq = manifest["seq"]
                chunks.setdefault(snapshot_id, {})[seq] = fs.read_file(
                    f"/mv/chunk-{seq:06d}"
                )
                read += 1
            yield from mech.unload_array(set_id, priority=PRIORITY_FETCH)
            return read
        finally:
            grant.release()

    # ------------------------------------------------------------------
    # Full namespace reconstruction from data images (§4.4)
    # ------------------------------------------------------------------
    def reconstruct_namespace(
        self, images: Optional[list[DiscImage]] = None
    ) -> Generator:
        """Rebuild the MV from data-image contents (a process).

        ``images`` defaults to every data image whose content is still on
        the buffer.  Returns the number of files restored.  Timed disc
        scanning is the caller's job (combine with
        :meth:`collect_images_from_discs` for the full disaster path).
        """
        if images is None:
            images = [
                record.image
                for record in self.dim.records.values()
                if record.kind == "data" and record.image is not None
            ]
        images = sorted(images, key=lambda image: image.image_id)
        # (path, image_id) -> (entry, link-info or None)
        sightings: dict[str, list[tuple[str, FileEntry, Optional[dict]]]] = {}
        links: dict[tuple[str, str], dict] = {}
        for image in images:
            fs = image.mount()
            for path in fs.file_paths():
                if LINK_SUFFIX in path:
                    link = json.loads(fs.read_file(path))
                    links[(link["path"], image.image_id)] = link
                    continue
                entry = fs.file_entry(path)
                sightings.setdefault(path, []).append(
                    (image.image_id, entry, None)
                )
        restored = 0
        for path, appearances in sightings.items():
            index = IndexFile(path, self.config.max_versions)
            # Chain split parts: an appearance with a link file continues
            # an earlier image; heads have no link.
            heads = []
            continuation: dict[str, str] = {}
            for image_id, entry, _ in appearances:
                link = links.get((path, image_id))
                if link is None:
                    heads.append((image_id, entry))
                else:
                    continuation[link["continues"]] = image_id
            by_image = {image_id: entry for image_id, entry, _ in appearances}
            for image_id, entry in sorted(heads):
                location_chain = [image_id]
                sizes = [entry.size]
                cursor = image_id
                while cursor in continuation:
                    cursor = continuation[cursor]
                    location_chain.append(cursor)
                    sizes.append(by_image[cursor].size)
                index.add_version(
                    VersionEntry(
                        version=index.next_version,
                        size=sum(sizes),
                        mtime=entry.mtime,
                        locations=location_chain,
                        subfile_sizes=sizes,
                    )
                )
            if index.entries:
                yield from self.mv.write_index(path, index, self.engine.now)
                restored += 1
        return restored

    def collect_images_from_discs(self) -> Generator:
        """Mechanically scan every used array and return all data images
        read off the discs (timed).  Feed the result to
        :meth:`reconstruct_namespace` for the full §4.4 disaster path.
        """
        collected: list[DiscImage] = []
        for (roller, address), state in sorted(self.mc.da_index.items()):
            if state is not ArrayState.USED:
                continue
            collected.extend(
                (
                    yield from self._with_retries(
                        lambda: self._collect_array(roller, address),
                        "collect-array",
                    )
                )
            )
        return collected

    def _collect_array(self, roller: int, address: TrayAddress) -> Generator:
        mech = self.mc.mech
        collected: list[DiscImage] = []
        set_id = self.mc.pick_set_for_burn(roller)
        grant = yield from self.mc.acquire_set(set_id, PRIORITY_FETCH)
        try:
            drive_set = mech.drive_sets[set_id]
            if not drive_set.is_empty:
                yield from mech.unload_array(
                    set_id, priority=PRIORITY_FETCH
                )
            yield from mech.load_array(
                set_id, address, priority=PRIORITY_FETCH
            )
            for drive in drive_set.drives:
                disc = drive.disc
                if disc is None or not disc.tracks:
                    continue
                header = DiscImage.peek_header(disc.read_track(0))
                if header.get("kind") != "data":
                    continue
                yield from drive.mount()
                yield from drive.seek()
                yield from drive.read_bytes(disc.tracks[0].logical_size)
                collected.append(DiscImage.deserialize(disc.read_track(0)))
            yield from mech.unload_array(set_id, priority=PRIORITY_FETCH)
            return collected
        finally:
            grant.release()
