"""The forepart-data-stored mechanism (§4.8).

For reads that miss both disks and drives, the mechanical delay (~70 s)
would blow client timeouts.  OLFS therefore stores the forepart (first
256 KB by default) of each file inside its index file in MV; a cold read
answers its first bytes within ~2 ms and trickles the forepart "at a slow
but controllable rate until the requested disc is fetched into drives".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.olfs.config import OLFSConfig

#: Fixed OLFS processing to serve the first word from the index file
#: ("the first word of the file can quickly respond within 2 ms", §4.8).
FOREPART_RESPONSE_SECONDS = 0.0012


@dataclass
class TrickleePlan:
    """Timeline of a forepart-bridged cold read."""

    first_byte_seconds: float
    forepart_bytes: int
    trickle_rate: float
    fetch_seconds: float

    @property
    def forepart_drained_at(self) -> float:
        """When the trickled forepart runs out, relative to the request."""
        return self.first_byte_seconds + self.forepart_bytes / self.trickle_rate

    @property
    def bridges_fetch(self) -> bool:
        """True when the trickle outlasts the mechanical fetch — the
        client never observes a stall."""
        return self.forepart_drained_at >= self.fetch_seconds


class ForepartManager:
    """Stores and serves file foreparts via the index files."""

    def __init__(self, config: OLFSConfig):
        self.config = config

    @property
    def enabled(self) -> bool:
        return self.config.forepart_enabled and self.config.forepart_bytes > 0

    def health(self) -> dict:
        """Cheap read-only snapshot for the system monitor."""
        return {
            "enabled": self.enabled,
            "forepart_bytes": self.config.forepart_bytes,
            "trickle_rate": self.config.forepart_trickle_rate,
        }

    def forepart_of(self, data: bytes) -> Optional[bytes]:
        """The prefix to embed in the index file at write time."""
        if not self.enabled:
            return None
        return data[: self.config.forepart_bytes]

    def plan(
        self,
        forepart: bytes,
        mv_lookup_seconds: float,
        fetch_seconds: float,
    ) -> TrickleePlan:
        """Timeline for serving a cold read bridged by the forepart."""
        return TrickleePlan(
            first_byte_seconds=mv_lookup_seconds + FOREPART_RESPONSE_SECONDS,
            forepart_bytes=len(forepart),
            trickle_rate=self.config.forepart_trickle_rate,
            fetch_seconds=fetch_seconds,
        )
