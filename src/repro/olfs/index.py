"""Index files: the global namespace's per-entry metadata records (§4.2).

Every file (and directory) in the global namespace has an index file of the
same path in the Metadata Volume.  Index files carry no file data — only
version entries locating the data by image ID (the unique-file-path design
of §4.4 means an image ID is enough: the file sits at the same path inside
that image's UDF tree).  They are serialized as JSON "for its ease of
processing and translation" and hold up to 15 version entries in a ring
(§4.6); the forepart-data-stored mechanism (§4.8) adds the file's first
bytes for instant cold-read response.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import FilesystemError

#: Paper figures for MV sizing (§4.2).
TYPICAL_INDEX_FILE_BYTES = 388
LOCATION_INFO_BYTES = 128
VERSION_ENTRY_BYTES = 40


@dataclass
class VersionEntry:
    """One version of a file: where its data lives.

    ``locations`` is a list of image IDs; normally one, two or more when
    the file straddled bucket boundaries (§4.5) — position ``i`` holds
    subfile ``i``.  ``subfile_sizes`` aligns with it.
    """

    version: int
    size: int
    mtime: float
    locations: list[str]
    subfile_sizes: list[int] = field(default_factory=list)

    def __post_init__(self):
        if not self.locations:
            raise FilesystemError("version entry needs at least one location")
        if not self.subfile_sizes:
            self.subfile_sizes = [self.size]
        if len(self.subfile_sizes) != len(self.locations):
            raise FilesystemError("subfile sizes misaligned with locations")

    def to_json(self) -> dict:
        return {
            "v": self.version,
            "size": self.size,
            "mtime": self.mtime,
            "loc": self.locations,
            "parts": self.subfile_sizes,
        }

    @classmethod
    def from_json(cls, record: dict) -> "VersionEntry":
        return cls(
            version=record["v"],
            size=record["size"],
            mtime=record["mtime"],
            locations=list(record["loc"]),
            subfile_sizes=list(record["parts"]),
        )


class IndexFile:
    """The MV record for one global-namespace file."""

    def __init__(self, path: str, max_versions: int = 15):
        self.path = path
        self.max_versions = max_versions
        self.entries: list[VersionEntry] = []
        self.forepart: Optional[bytes] = None

    # ------------------------------------------------------------------
    # Versions (§4.6: ring of up to 15 entries)
    # ------------------------------------------------------------------
    @property
    def current(self) -> VersionEntry:
        if not self.entries:
            raise FilesystemError(f"index {self.path!r} has no versions")
        return self.entries[-1]

    @property
    def next_version(self) -> int:
        return self.entries[-1].version + 1 if self.entries else 1

    def add_version(self, entry: VersionEntry) -> None:
        self.entries.append(entry)
        if len(self.entries) > self.max_versions:
            # Ring semantics: the oldest entry is overwritten (§4.6).
            self.entries.pop(0)

    def version(self, number: int) -> VersionEntry:
        for entry in self.entries:
            if entry.version == number:
                return entry
        raise FilesystemError(
            f"index {self.path!r}: version {number} not retained"
        )

    def versions(self) -> list[int]:
        return [entry.version for entry in self.entries]

    # ------------------------------------------------------------------
    # Serialization (JSON, §4.2)
    # ------------------------------------------------------------------
    def serialize(self) -> bytes:
        record = {
            "path": self.path,
            "max_versions": self.max_versions,
            "entries": [entry.to_json() for entry in self.entries],
        }
        if self.forepart is not None:
            record["forepart"] = base64.b64encode(self.forepart).decode()
        return json.dumps(record, sort_keys=True).encode()

    @classmethod
    def deserialize(cls, blob: bytes) -> "IndexFile":
        record = json.loads(blob)
        index = cls(record["path"], record.get("max_versions", 15))
        for entry in record["entries"]:
            index.entries.append(VersionEntry.from_json(entry))
        if "forepart" in record:
            index.forepart = base64.b64decode(record["forepart"])
        return index

    def __repr__(self) -> str:
        return (
            f"<IndexFile {self.path} versions={self.versions()}"
            f"{' +forepart' if self.forepart else ''}>"
        )
