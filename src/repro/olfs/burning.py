"""Burning Task Management (BTM) and Disc Burning (DB) — §4.1, §4.7, §4.8.

A burn task forms when a full array's worth of data images is ready (11 by
default), generates the parity image(s) *delayed* (§4.7), claims a drive
set and a blank tray, loads the blank discs, stages the image streams off
the disk buffer and burns all discs concurrently in write-all-once mode.

The §4.8 interrupt-burn policy is supported end to end: an urgent fetch can
stop a burning array between segments; the burned prefixes are committed as
POW tracks, the array is switched out, and once the interrupting read
finishes the task re-loads the same tray and appends the remainders.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

from repro.errors import MechanicsError, ROSError
from repro.mechanics.geometry import TrayAddress
from repro.olfs.config import OLFSConfig
from repro.olfs.images import DiscImageManager, ImageRecord
from repro.olfs.mechanical import (
    ArrayState,
    MechanicalController,
    PRIORITY_BURN,
)
from repro.sim.engine import Delay, Engine, Spawn, Wait
from repro.storage.scheduler import IOStreamScheduler, StreamKind
from repro.udf.image import DiscImage


class BurnTask:
    """One disc-array burn from parity generation to unload."""

    def __init__(
        self,
        controller: "BurnController",
        data_records: list[ImageRecord],
    ):
        # Task ids come from the controller so independent OLFS instances
        # number their burns identically (trace determinism).
        self.task_id = next(controller._task_ids)
        self.controller = controller
        self.engine = controller.engine
        self.data_records = data_records
        self.parity_images: list[DiscImage] = []
        self.done_event = self.engine.event(f"burn-{self.task_id}-done")
        self.interrupt_requested = False
        self.interruptions = 0
        self.tray: Optional[tuple[int, TrayAddress]] = None
        self.set_id: Optional[int] = None
        self.state = "pending"
        #: signalled by the fetch that interrupted us once it is done
        self._resume_event = None

    # ------------------------------------------------------------------
    def request_interrupt(self) -> None:
        """Ask the burning drives to stop at their next segment (§4.8)."""
        if self.state != "burning":
            return
        self.interrupt_requested = True
        self.interruptions += 1
        drive_set = self.controller.mc.mech.drive_sets[self.set_id]
        for drive in drive_set.drives:
            from repro.drives.drive import DriveState

            if drive.state is DriveState.BURNING:
                drive.request_interrupt()

    # ------------------------------------------------------------------
    def run(self) -> Generator:
        with self.engine.trace.span(
            "btm.burn_task",
            "btm",
            {"task_id": self.task_id, "images": len(self.data_records)},
        ) as span:
            yield from self._run()
            span.tag("state", self.state)

    def _run(self) -> Generator:
        mc = self.controller.mc
        dim = self.controller.dim
        config = self.controller.config
        try:
            self.state = "parity"
            data_images = [record.image for record in self.data_records]
            if config.parity_discs_per_array > 0:
                with self.engine.trace.span("btm.parity", "btm"):
                    self.parity_images = yield from dim.generate_parity(
                        data_images
                    )
            all_images = data_images + self.parity_images
            payloads = [
                (image.serialize(), image.logical_size, image.image_id)
                for image in all_images
            ]
            burned_prefix: dict[str, float] = {}
            real_prefix: dict[str, int] = {}
            attempts = 0
            tray_failures = 0
            retry_backoffs = list(config.burn_retry.delays())
            while True:
                attempts += 1
                if attempts > 16:
                    raise MechanicsError("burn task retried too many times")
                try:
                    finished = yield from self._burn_round(
                        all_images, payloads, burned_prefix, real_prefix
                    )
                except ROSError as round_error:
                    # The whole array is abandoned: mark its tray Failed
                    # in the DAindex and restart on fresh blank discs.
                    tray_failures += 1
                    if self.engine.recorder.enabled:
                        self.engine.recorder.record(
                            "btm.retry",
                            task_id=self.task_id,
                            attempt=attempts,
                            tray_failures=tray_failures,
                            error=str(round_error),
                        )
                    if self.tray is not None:
                        mc.set_state(
                            self.tray[0], self.tray[1], ArrayState.FAILED
                        )
                    self.tray = None
                    burned_prefix.clear()
                    real_prefix.clear()
                    if tray_failures >= 3:
                        raise
                    # Back off before retrying on a fresh tray: a drive
                    # hard-failure window should pass, not be hammered.
                    if retry_backoffs:
                        backoff = retry_backoffs[
                            min(tray_failures - 1, len(retry_backoffs) - 1)
                        ]
                        if backoff > 0:
                            yield Delay(backoff)
                    continue
                if finished:
                    break
                # Interrupted: wait for the urgent read to finish, then
                # resume appending-burn on the same tray.
                self._resume_event = self.engine.event(
                    f"burn-{self.task_id}-resume"
                )
                self.controller.notify_interrupted(self)
                yield Wait(self._resume_event)
            self.state = "done"
            self.controller.task_finished(self)
            self.done_event.succeed(self)
        except ROSError as error:
            self.state = "failed"
            if self.tray is not None:
                mc.set_state(self.tray[0], self.tray[1], ArrayState.FAILED)
            self.controller.task_failed(self, error)
            self.done_event.fail(error)

    def _burn_round(
        self,
        all_images: list[DiscImage],
        payloads: list[tuple[bytes, int, str]],
        burned_prefix: dict[str, float],
        real_prefix: dict[str, int],
    ) -> Generator:
        """Load the tray (blank on the first round), burn what remains of
        each image, unload.  Returns True when every image completed."""
        with self.engine.trace.span(
            "btm.burn_round", "btm", {"task_id": self.task_id}
        ):
            finished = yield from self._burn_round_inner(
                all_images, payloads, burned_prefix, real_prefix
            )
        return finished

    def _burn_round_inner(
        self,
        all_images: list[DiscImage],
        payloads: list[tuple[bytes, int, str]],
        burned_prefix: dict[str, float],
        real_prefix: dict[str, int],
    ) -> Generator:
        mc = self.controller.mc
        dim = self.controller.dim
        mech = mc.mech
        if self.tray is None:
            roller_index = 0
        else:
            roller_index = self.tray[0]
        if self.set_id is None:
            self.set_id = mc.pick_set_for_burn(roller_index)
        grant = yield from mc.acquire_set(self.set_id, PRIORITY_BURN)
        mc.burn_task_of_set[self.set_id] = self
        drive_set = mech.drive_sets[self.set_id]
        try:
            if not drive_set.is_empty:
                yield from mech.unload_array(
                    self.set_id, priority=PRIORITY_BURN
                )
            if self.tray is None:
                self.tray = mc.find_blank_tray(mc.mech.roller_of_set(self.set_id))
            roller_index, address = self.tray
            yield from mech.load_array(
                self.set_id, address, priority=PRIORITY_BURN
            )
            # Stage the image streams off the disk buffer concurrently
            # with the burn (the §4.7 burn-read stream).
            volume = self.controller.scheduler.volume_for(StreamKind.BURN_READ)

            def stage(nbytes: float) -> Generator:
                yield from volume.read(nbytes)

            for _, size, image_id in payloads:
                done = burned_prefix.get(image_id, 0.0)
                if size - done > 0:
                    yield Spawn(stage(size - done), name=f"stage-{image_id}")

            self.state = "burning"
            self.interrupt_requested = False
            jobs: list = []
            for (payload, size, image_id) in payloads:
                done = burned_prefix.get(image_id, 0.0)
                if done >= size:
                    jobs.append(None)  # that disc is already finished
                else:
                    body = payload[real_prefix.get(image_id, 0) :]
                    label = image_id if done == 0 else f"{image_id}.rest"
                    jobs.append((body, int(size - done), label))
            try:
                results = yield from drive_set.burn_array(
                    jobs,
                    close=True,
                    stagger_seconds=None,
                    abort_check=lambda: self.interrupt_requested,
                )
            except ROSError:
                # A drive/disc failed mid-burn.  Wait for the surviving
                # drives to finish, clear the (now junk) array out of the
                # drives, and let run() retry on a fresh tray.
                from repro.sim.engine import Delay

                while drive_set.is_busy:
                    yield Delay(5.0)
                yield from mech.unload_array(
                    self.set_id, priority=PRIORITY_BURN
                )
                raise
            self.state = "placing"
            all_done = True
            for result, job, (payload, size, image_id), image in zip(
                results, jobs, payloads, all_images
            ):
                if job is None:
                    continue  # disc already finished in an earlier round
                if result is None:
                    all_done = False  # aborted before this burn started
                    continue
                if result.completed:
                    burned_prefix[image_id] = size
                else:
                    burned_prefix[image_id] = (
                        burned_prefix.get(image_id, 0.0) + result.burned_bytes
                    )
                    if result.track is not None:
                        real_prefix[image_id] = real_prefix.get(
                            image_id, 0
                        ) + len(result.track.payload)
                    all_done = False
            if all_done:
                roller_index, address = self.tray
                disc_ids = []
                for drive, image in zip(drive_set.drives, all_images):
                    if drive.disc is not None:
                        disc_ids.append(drive.disc.disc_id)
                        dim.mark_burned(
                            image.image_id,
                            drive.disc.disc_id,
                            (roller_index, address),
                        )
                mc.set_state(roller_index, address, ArrayState.USED)
                mc.array_images[(roller_index, address)] = [
                    image.image_id for image in all_images
                ]
                # Burned content demotes from pinned buffer space to the
                # read cache (data) or is dropped outright (parity).
                for image in all_images:
                    record = dim.records[image.image_id]
                    if record.kind == "data" and self.controller.cache is not None:
                        self.controller.cache.put(image.image_id, image)
                    elif record.kind != "data":
                        dim.evict_content(image.image_id)
            # Return the discs to their tray either way: on interrupt the
            # array must leave the drives for the urgent read (§4.8).
            try:
                yield from mech.unload_array(
                    self.set_id, priority=PRIORITY_BURN
                )
            except ROSError:
                if not all_done:
                    raise
                # The array is already committed (records burned, DAindex
                # Used) — a fault while putting it away must not condemn
                # the tray and re-burn valid discs.  Leave the discs where
                # the fault stranded them; the next unload or a mechanical
                # reset returns them home.
                self.engine.trace.event(
                    "btm.unload_fault_after_commit",
                    "btm",
                    {"task_id": self.task_id},
                )
            return all_done
        finally:
            if mc.burn_task_of_set.get(self.set_id) is self:
                del mc.burn_task_of_set[self.set_id]
            grant.release()

    def resume(self) -> None:
        """Called once the interrupting read has finished (§4.8)."""
        if self._resume_event is not None and not self._resume_event.fired:
            self._resume_event.succeed()


class BurnController:
    """BTM: forms burn tasks and tracks their completion."""

    def __init__(
        self,
        engine: Engine,
        config: OLFSConfig,
        dim: DiscImageManager,
        mc: MechanicalController,
        scheduler: IOStreamScheduler,
    ):
        self.engine = engine
        self.config = config
        self.dim = dim
        self.mc = mc
        self.scheduler = scheduler
        #: wired by OLFS after construction: burned data images migrate
        #: from pinned buffer space into the LRU read cache
        self.cache = None
        self._task_ids = itertools.count(1)
        self.active_tasks: list[BurnTask] = []
        self.completed_tasks: list[BurnTask] = []
        self.failed_tasks: list[tuple[BurnTask, Exception]] = []
        self.interrupted_tasks: list[BurnTask] = []
        #: images already claimed by a scheduled task
        self._claimed: set[str] = set()

    # ------------------------------------------------------------------
    def maybe_schedule(self) -> Optional[BurnTask]:
        """Start a burn when a full array of data images is ready (§4.7)."""
        if not self.config.auto_burn:
            return None
        ready = [
            record
            for record in self.dim.unburned_data_images()
            if record.image_id not in self._claimed
        ]
        if len(ready) < self.config.data_discs_per_array:
            return None
        batch = ready[: self.config.data_discs_per_array]
        return self.schedule(batch)

    def schedule(self, records: list[ImageRecord]) -> BurnTask:
        if not records:
            raise ROSError("cannot schedule an empty burn")
        task = BurnTask(self, records)
        for record in records:
            self._claimed.add(record.image_id)
        self.active_tasks.append(task)
        self.engine.spawn(task.run(), name=f"burn-task-{task.task_id}")
        return task

    def flush_pending(self) -> list[BurnTask]:
        """Burn whatever unburned images exist, even a partial array."""
        ready = [
            record
            for record in self.dim.unburned_data_images()
            if record.image_id not in self._claimed
        ]
        tasks = []
        while len(ready) >= self.config.data_discs_per_array:
            tasks.append(self.schedule(ready[: self.config.data_discs_per_array]))
            ready = ready[self.config.data_discs_per_array :]
        if ready and self.config.allow_partial_arrays:
            tasks.append(self.schedule(ready))
        return tasks

    # ------------------------------------------------------------------
    # Task callbacks
    # ------------------------------------------------------------------
    def task_finished(self, task: BurnTask) -> None:
        self.active_tasks.remove(task)
        self.completed_tasks.append(task)

    def task_failed(self, task: BurnTask, error: Exception) -> None:
        if task in self.active_tasks:
            self.active_tasks.remove(task)
        self.failed_tasks.append((task, error))

    def notify_interrupted(self, task: BurnTask) -> None:
        self.interrupted_tasks.append(task)

    def resume_interrupted(self) -> None:
        """Resume every burn parked by an interrupting read."""
        tasks, self.interrupted_tasks = self.interrupted_tasks, []
        for task in tasks:
            task.resume()

    @property
    def is_burning(self) -> bool:
        return any(task.state == "burning" for task in self.active_tasks)

    def health(self) -> dict:
        """Cheap read-only snapshot for the system monitor."""
        return {
            "active": [
                {
                    "task_id": task.task_id,
                    "state": task.state,
                    "set_id": task.set_id,
                    "interruptions": task.interruptions,
                }
                for task in self.active_tasks
            ],
            "completed": len(self.completed_tasks),
            "failed": len(self.failed_tasks),
            "interrupted_parked": len(self.interrupted_tasks),
            "claimed_images": len(self._claimed),
        }
