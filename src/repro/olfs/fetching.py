"""Fetching Task Management (FTM): resolving reads to data, anywhere (§4.1).

``fetch_file`` serves a read given the image ID and unique file path from
the index file.  The resolution ladder mirrors Table 1:

1. open bucket on the disk buffer                  (~1 ms)
2. closed image on the disk buffer / read cache    (~2 ms)
3. disc already in a drive                         (~0.2 s)
4. disc array in the roller, free drives           (~70 s)
5. disc array in the roller, occupied drives       (~155 s)
6. all drives burning                              (minutes, or the
   interrupt-burn policy)

After a mechanical fetch the whole disc image is copied back to the disk
buffer in the background (the read cache admits it), so re-reads hit case 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, TYPE_CHECKING

from repro.errors import (
    DriveError,
    FileNotFoundOLFSError,
    FilesystemError,
    MechanicsError,
)
from repro.olfs.bucket import WritingBucketManager
from repro.olfs.cache import ReadCache
from repro.olfs.config import OLFSConfig
from repro.olfs.images import BURNED, BUFFERED, IN_BUCKET, DiscImageManager
from repro.olfs.mechanical import MechanicalController, PRIORITY_FETCH
from repro.sim.engine import Delay, Engine, Spawn
from repro.storage.scheduler import IOStreamScheduler, StreamKind
from repro.udf.image import DiscImage

if TYPE_CHECKING:  # pragma: no cover
    from repro.olfs.burning import BurnController


@dataclass
class FetchResult:
    """Where a read was served from and the data itself."""

    data: bytes
    source: str  # bucket | buffer | drive | roller
    mechanical: bool


class FetchController:
    """The FTM module."""

    def __init__(
        self,
        engine: Engine,
        config: OLFSConfig,
        dim: DiscImageManager,
        wbm: WritingBucketManager,
        cache: ReadCache,
        mc: MechanicalController,
        scheduler: IOStreamScheduler,
        burn_controller: Optional["BurnController"] = None,
    ):
        self.engine = engine
        self.config = config
        self.dim = dim
        self.wbm = wbm
        self.cache = cache
        self.mc = mc
        self.scheduler = scheduler
        self.burn_controller = burn_controller
        self.fetch_tasks = 0
        self.fetch_retries = 0
        from repro.olfs.prefetch import FileGrainCache, SequentialPrefetcher

        #: §4.1 future-work knobs (config-gated)
        self.file_cache = (
            FileGrainCache(config.file_cache_bytes)
            if config.cache_granularity == "file"
            else None
        )
        self.prefetcher = (
            SequentialPrefetcher(config.prefetch_siblings)
            if config.prefetch_siblings > 0
            else None
        )

    # ------------------------------------------------------------------
    def fetch_file(
        self,
        image_id: str,
        path: str,
        priority: int = PRIORITY_FETCH,
    ) -> Generator:
        """Read ``path`` out of ``image_id`` wherever it lives.

        Returns a :class:`FetchResult`.
        """
        with self.engine.trace.span(
            "ftm.fetch", "ftm", {"image_id": image_id, "path": path}
        ) as span:
            result = yield from self._fetch_file(image_id, path, priority)
            span.tag("source", result.source)
        return result

    def _fetch_file(
        self, image_id: str, path: str, priority: int
    ) -> Generator:
        trace = self.engine.trace
        record = self.dim.record(image_id)
        if record.state == IN_BUCKET:
            with trace.span("ftm.read_bucket", "ftm"):
                data = yield from self.wbm.read_file(image_id, path)
            return FetchResult(data, "bucket", mechanical=False)
        if self.file_cache is not None and record.state == BURNED:
            cached_file = self.file_cache.get(image_id, path)
            if cached_file is not None:
                with trace.span("ftm.read_file_cache", "ftm"):
                    volume = self.scheduler.volume_for(StreamKind.USER_READ)
                    yield Delay(self.config.bucket_access_seconds)
                    yield from volume.read(len(cached_file))
                return FetchResult(cached_file, "file-cache", mechanical=False)
        image = None
        if record.state == BURNED:
            # Burned content lives under the read cache's LRU policy.
            image = self.cache.get(image_id)
            trace.event(
                "cache.hit" if image is not None else "cache.miss",
                "cache",
                {"image_id": image_id},
            )
        if image is None:
            image = self.dim.get_buffered(image_id)
        if image is not None:
            with trace.span("ftm.read_buffer", "ftm"):
                result = yield from self._read_from_buffer(image, path)
            return result
        if record.state != BURNED:
            raise FilesystemError(
                f"image {image_id} unreadable in state {record.state}"
            )
        with trace.span(
            "ftm.read_disc", "ftm", {"disc_id": record.disc_id}
        ):
            result = yield from self._read_from_disc(record, path, priority)
        return result

    def _read_from_buffer(self, image: DiscImage, path: str) -> Generator:
        """Case 2: closed image on the disk buffer (~2 ms for small files)."""
        volume = self.scheduler.volume_for(StreamKind.USER_READ)
        entry = image.mount().file_entry(path)
        yield Delay(self.config.image_access_seconds)
        yield from volume.read(entry.size)
        return FetchResult(entry.data, "buffer", mechanical=False)

    def _read_from_disc(self, record, path: str, priority: int) -> Generator:
        """Cases 3-6, under the fetch retry policy.

        Drive and mechanics errors (including injected PLC faults) are
        retried with backoff after a mechanical reset; media errors
        (:class:`~repro.errors.SectorError`) propagate immediately so the
        caller can fall through to the scrub + parity-repair path.
        """
        last_error = None
        for attempt, backoff in self.config.fetch_retry.schedule():
            try:
                result = yield from self._read_from_disc_once(
                    record, path, priority
                )
                return result
            except (DriveError, MechanicsError) as error:
                last_error = error
                self.fetch_retries += 1
                self.engine.trace.event(
                    "ftm.fetch_retry",
                    "ftm",
                    {"image_id": record.image_id, "attempt": attempt},
                )
                if self.engine.recorder.enabled:
                    self.engine.recorder.record(
                        "ftm.retry",
                        image_id=record.image_id,
                        attempt=attempt,
                        error=str(error),
                    )
                yield from self.mc.mech.reset_after_fault(priority)
                if backoff is None:
                    raise
                yield Delay(backoff)
        raise last_error  # pragma: no cover — schedule() always raises first

    def _read_from_disc_once(
        self, record, path: str, priority: int
    ) -> Generator:
        """Cases 3-6: the disc itself, maybe via mechanical operations."""
        self.fetch_tasks += 1
        was_in_drive = any(
            drive_set.find_disc(record.disc_id) is not None
            for drive_set in self.mc.mech.drive_sets
        )
        drive, set_id, grant = yield from self.mc.ensure_disc_in_drive(
            record.disc_id, priority
        )
        try:
            yield from drive.mount()
            yield from drive.seek()
            image = self._load_image_from_disc(drive.disc, record.image_id)
            entry = image.mount().file_entry(path)
            # Stream the file's bytes off the disc.
            yield from drive.read_bytes(entry.size)
        except BaseException:
            grant.release()
            raise
        # Background: populate the configured cache tier; the set lock is
        # released once the background copy finishes.
        if self.file_cache is not None:
            self.engine.spawn(
                self._file_cache_fill(drive, grant, record, image, path, entry),
                name=f"file-cache-fill-{record.image_id}",
            )
        else:
            # Image-grain (paper default): copy the whole image back to
            # the disk buffer and admit it to the read cache.
            self.engine.spawn(
                self._cache_fill(drive, grant, record, image),
                name=f"cache-fill-{record.image_id}",
            )
        # The §4.8 interrupt policy: the read is served, resume burns.
        if self.burn_controller is not None:
            self.burn_controller.resume_interrupted()
        source = "drive" if was_in_drive else "roller"
        return FetchResult(entry.data, source, mechanical=not was_in_drive)

    @staticmethod
    def _load_image_from_disc(disc, image_id: str) -> DiscImage:
        """Deserialize an image off a disc (untimed content work; the
        timed part is the byte streaming the caller charges).

        Interrupted-then-resumed burns leave the image split across POW
        tracks (``<id>.partial`` + ``<id>.rest``); those are reassembled
        in track order.
        """
        exact = disc.find_track(image_id)
        if exact is not None:
            index = disc.tracks.index(exact)
            return DiscImage.deserialize(disc.read_track(index))
        pieces = [
            disc.read_track(index)
            for index, track in enumerate(disc.tracks)
            if track.label.startswith(image_id + ".")
        ]
        if not pieces:
            raise FileNotFoundOLFSError(
                f"image {image_id} not on disc {disc.disc_id}"
            )
        return DiscImage.deserialize(b"".join(pieces))

    def _file_cache_fill(
        self, drive, grant, record, image, path, entry
    ) -> Generator:
        """File-grain admission (§4.1 future work): keep only the
        requested bytes (plus any sequential-prefetch siblings) on the
        buffer, not the whole image."""
        try:
            volume = self.scheduler.volume_for(StreamKind.USER_WRITE)
            yield from volume.write(entry.size)
            self.file_cache.put(record.image_id, path, entry.data)
            if self.prefetcher is not None:
                fs = image.mount()
                for sibling in self.prefetcher.candidates(image, path):
                    sibling_entry = fs.file_entry(sibling)
                    yield from drive.read_bytes(sibling_entry.size)
                    yield from volume.write(sibling_entry.size)
                    self.file_cache.put(
                        record.image_id, sibling, sibling_entry.data
                    )
                    self.prefetcher.prefetched += 1
        finally:
            grant.release()

    def _cache_fill(self, drive, grant, record, image) -> Generator:
        """Copy the fetched image to the disk buffer, then free the set."""
        try:
            with self.engine.trace.span(
                "ftm.cache_fill", "ftm", {"image_id": record.image_id}
            ):
                yield from drive.read_bytes(record.logical_size)
                volume = self.scheduler.volume_for(StreamKind.USER_WRITE)
                yield from volume.write(record.logical_size)
                self.cache.put(record.image_id, image)
        finally:
            grant.release()

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Cheap read-only snapshot for the system monitor."""
        return {
            "fetch_tasks": self.fetch_tasks,
            "fetch_retries": self.fetch_retries,
            "file_cache": (
                {"entries": len(self.file_cache)}
                if self.file_cache is not None
                else None
            ),
            "prefetched": (
                self.prefetcher.prefetched
                if self.prefetcher is not None
                else 0
            ),
        }

    # ------------------------------------------------------------------
    def reassemble_split_image(self, disc) -> Optional[DiscImage]:
        """Rebuild an image whose burn was interrupted: concatenate the
        ``<id>.partial``/``<id>.rest`` tracks in order."""
        if not disc.tracks:
            return None
        base_label = disc.tracks[0].label
        image_id = base_label.split(".partial")[0].split(".rest")[0]
        blob = b"".join(
            disc.read_track(index) for index in range(len(disc.tracks))
        )
        try:
            return DiscImage.deserialize(blob)
        except Exception:  # noqa: BLE001 — corrupt/partial burn
            return None
