"""The Read Cache (RC): LRU over whole disc images (§4.1).

"The current design of OLFS only considers a disc image as a cache unit,
sufficiently exploiting spatial locality."  Recently fetched (or freshly
burned) images stay on the disk buffer; beyond capacity the least recently
used image's content is evicted (its bytes remain safe on disc).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.olfs.images import DiscImageManager
from repro.udf.image import DiscImage


class ReadCache:
    """LRU cache of burned disc images kept on the disk buffer."""

    def __init__(self, dim: DiscImageManager, capacity_images: int):
        if capacity_images < 1:
            raise ValueError("read cache needs capacity for >= 1 image")
        self.dim = dim
        self.capacity_images = capacity_images
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: optional MetricsRegistry; OLFS wires its own in
        self.metrics = None
        #: optional Engine, wired by OLFS so evictions reach the
        #: flight recorder; None keeps the cache engine-agnostic
        self.engine = None

    def __len__(self) -> int:
        return len(self._lru)

    def _record_eviction(self, image_id: str, cause: str) -> None:
        self.evictions += 1
        if self.metrics is not None:
            self.metrics.counter("cache.evictions").inc()
        if self.engine is not None and self.engine.recorder.enabled:
            self.engine.recorder.record(
                "cache.eviction", image_id=image_id, cause=cause
            )

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._lru

    def get(self, image_id: str) -> Optional[DiscImage]:
        """Cache lookup; refreshes recency on hit."""
        if image_id in self._lru:
            self._lru.move_to_end(image_id)
            image = self.dim.get_buffered(image_id)
            if image is not None:
                self.hits += 1
                if self.metrics is not None:
                    self.metrics.counter("cache.hits").inc()
                return image
            # Content vanished (e.g. manual evict); treat as miss.
            del self._lru[image_id]
        self.misses += 1
        if self.metrics is not None:
            self.metrics.counter("cache.misses").inc()
        return None

    def put(self, image_id: str, image: DiscImage) -> None:
        """Admit a burned image's content, evicting LRU beyond capacity."""
        self.dim.restore_content(image_id, image)
        self._lru[image_id] = None
        self._lru.move_to_end(image_id)
        while len(self._lru) > self.capacity_images:
            victim, _ = self._lru.popitem(last=False)
            self.dim.evict_content(victim)
            self._record_eviction(victim, "lru")
        if self.metrics is not None:
            self.metrics.gauge("cache.cached_images").set(len(self._lru))

    def evict(self, image_id: str) -> None:
        if image_id in self._lru:
            del self._lru[image_id]
            self.dim.evict_content(image_id)
            self._record_eviction(image_id, "manual")

    def reclaim(self, bytes_needed: int) -> int:
        """Evict LRU images until ``bytes_needed`` are freed (or the
        cache is empty).  Returns the bytes released — the buffer-pressure
        valve the bucket manager pulls before refusing a write."""
        from repro.olfs.images import BURNED

        freed = 0
        while freed < bytes_needed and self._lru:
            victim, _ = self._lru.popitem(last=False)
            record = self.dim.records.get(victim)
            if record is None or record.state != BURNED:
                continue  # lost/migrated entries simply leave the LRU
            if record.image is not None:
                freed += record.logical_size
            self.dim.evict_content(victim)
            self._record_eviction(victim, "reclaim")
        return freed

    @property
    def cached_ids(self) -> list[str]:
        return list(self._lru)

    def health(self) -> dict:
        """Cheap read-only snapshot for the system monitor."""
        snapshot = self.stats()
        snapshot["evictions"] = self.evictions
        snapshot["hit_rate"] = round(snapshot["hit_rate"], 6)
        return snapshot

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "cached": len(self._lru),
            "capacity": self.capacity_images,
        }
