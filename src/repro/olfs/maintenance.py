"""The Maintenance Interface (MI): administration, scrubbing, repair (§4.1).

"Disc sector-error checking can be scheduled at idle times and can
periodically scan all the burned disc arrays to check sector errors.  When
sector errors occur, data on the failed sectors can be recovered from their
parity discs and the corresponding data discs in the same disc array...
The recovered data can be written to new buckets and finally burned into
free disc arrays." (§4.7)
"""

from __future__ import annotations

import hashlib
import json
from typing import Generator, Optional

from repro.errors import SectorError
from repro.media.errors_model import SectorErrorModel
from repro.mechanics.geometry import TrayAddress
from repro.olfs.bucket import WritingBucketManager
from repro.olfs.cache import ReadCache
from repro.olfs.config import OLFSConfig
from repro.olfs.images import DiscImageManager
from repro.olfs.mechanical import ArrayState, MechanicalController, PRIORITY_FETCH
from repro.olfs.metadata import MetadataVolume
from repro.sim.engine import Engine
from repro.udf.image import DiscImage


class MaintenanceInterface:
    """Administrator operations: status, scrub, repair."""

    def __init__(
        self,
        engine: Engine,
        config: OLFSConfig,
        mv: MetadataVolume,
        dim: DiscImageManager,
        mc: MechanicalController,
        wbm: WritingBucketManager,
        cache: ReadCache,
    ):
        self.engine = engine
        self.config = config
        self.mv = mv
        self.dim = dim
        self.mc = mc
        self.wbm = wbm
        self.cache = cache
        self.scrubs = 0
        self.sector_errors_found = 0
        self.images_repaired = 0

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """System-wide status summary for the administrator console."""
        mech = self.mc.mech
        discs_total = sum(r.geometry.disc_capacity for r in mech.rollers)
        states = {"buffered": 0, "burned": 0, "in-bucket": 0}
        for record in self.dim.records.values():
            states[record.state] = states.get(record.state, 0) + 1
        return {
            "sim_time": self.engine.now,
            "arrays": self.mc.counts(),
            "discs_total": discs_total,
            "images": states,
            "open_buckets": len(self.wbm.open_buckets()),
            "buckets_closed": self.wbm.buckets_closed,
            "cache": self.cache.stats(),
            "mv_bytes": self.mv.used_bytes(),
            "mv_index_files": len(self.mv.all_index_paths()),
            "plc_instructions": mech.plc.instructions_executed,
            "scrubs": self.scrubs,
            "sector_errors_found": self.sector_errors_found,
            "images_repaired": self.images_repaired,
        }

    # ------------------------------------------------------------------
    def scrub_array(
        self,
        roller: int,
        address: TrayAddress,
        error_model: Optional[SectorErrorModel] = None,
        migrate: bool = False,
    ) -> Generator:
        """Check one burned array's sectors; repair damaged images.

        Loads the array, optionally ages the discs through the error
        model, reads every track (timed), verifies each payload against
        the checksum stored at burn time, and for any disc with
        unreadable or mismatching payload sectors reconstructs the lost
        image from the XOR parity disc plus the sibling data discs, then
        rewrites the recovered files into fresh buckets and repoints the
        MV index entries (§4.7).  With ``migrate=True`` every readable
        data image is additionally rewritten onto fresh media and the
        tray retired — the media-refresh path of a preservation
        campaign.  Returns a report dict.
        """
        mech = self.mc.mech
        self.scrubs += 1
        if self.mc.state_of(roller, address) is not ArrayState.USED:
            raise SectorError("-", -1)  # not a burned array
        set_id = self.mc.pick_set_for_burn(roller)
        grant = yield from self.mc.acquire_set(set_id, PRIORITY_FETCH)
        report = {
            "checked": 0,
            "errors": 0,
            "checksum_mismatches": 0,
            "repaired": [],
            "migrated": [],
            "lost": [],
        }
        try:
            drive_set = mech.drive_sets[set_id]
            if not drive_set.is_empty:
                yield from mech.unload_array(set_id, priority=PRIORITY_FETCH)
            yield from mech.load_array(set_id, address, priority=PRIORITY_FETCH)
            blobs: dict[str, bytes] = {}
            failed: dict[str, int] = {}  # image_id -> lost blob length
            parity_raw: Optional[bytes] = None
            parity_failed = False
            parity_labels: list[str] = []
            for drive in drive_set.drives:
                disc = drive.disc
                if disc is None or not disc.tracks:
                    continue
                if error_model is not None:
                    self.sector_errors_found += error_model.age_disc(disc)
                report["checked"] += 1
                label = disc.tracks[0].label
                if label.startswith("par-"):
                    parity_labels.append(label)
                yield from drive.mount()
                yield from drive.seek()
                yield from drive.read_bytes(disc.tracks[0].logical_size)
                try:
                    blob = disc.read_track(0)
                except SectorError:
                    report["errors"] += 1
                    if label.startswith("par-"):
                        parity_failed = True
                    else:
                        failed[label] = len(disc.tracks[0].payload)
                    continue
                record = self.dim.records.get(label)
                if (
                    record is not None
                    and record.checksum is not None
                    and hashlib.sha256(blob).hexdigest() != record.checksum
                ):
                    # Sectors read back, but the bytes differ from the
                    # fingerprint stored at burn time: silent corruption.
                    # Treat exactly like an unreadable image (§4.7).
                    report["errors"] += 1
                    report["checksum_mismatches"] += 1
                    self.sector_errors_found += 1
                    if label.startswith("par-"):
                        parity_failed = True
                    else:
                        failed[label] = len(disc.tracks[0].payload)
                    continue
                if label.startswith("par-"):
                    parity_raw = DiscImage.deserialize(blob).raw
                else:
                    blobs[label] = blob
            failed_data = {
                image_id: length
                for image_id, length in failed.items()
                if not image_id.split(".")[0].startswith("par-")
            }
            if len(failed_data) == 1 and parity_raw is not None:
                # Single data loss + healthy parity: XOR reconstruction.
                image_id, lost_length = next(iter(failed_data.items()))
                recovered_blob = self.dim.recover_data_blob(
                    parity_raw, list(blobs.values()), lost_length
                )
                restored = DiscImage.deserialize(recovered_blob)
                yield from self._rewrite_image(image_id, restored)
                report["repaired"].append(image_id)
                self.images_repaired += 1
            elif len(failed_data) > 1 or (failed_data and parity_raw is None):
                # Beyond this array's redundancy: salvage the survivors,
                # record the casualties.
                report["lost"].extend(sorted(failed_data))
                for image_id in failed_data:
                    record = self.dim.records.get(image_id)
                    if record is not None:
                        record.state = "lost"
                        record.image = None
                for image_id, blob in blobs.items():
                    restored = DiscImage.deserialize(blob)
                    yield from self._rewrite_image(image_id, restored)
                    report["migrated"].append(image_id)
                self._retire_array(roller, address, parity_labels)
            if parity_failed and not failed_data:
                # Degraded redundancy: the data is intact but unprotected.
                # Proactively migrate every data image to fresh buckets so
                # the next burn re-establishes full parity, and retire the
                # old tray.
                for image_id, blob in blobs.items():
                    restored = DiscImage.deserialize(blob)
                    yield from self._rewrite_image(image_id, restored)
                    report["migrated"].append(image_id)
                self._retire_array(roller, address, parity_labels)
            if migrate and self.mc.state_of(roller, address) is ArrayState.USED:
                # Media refresh: rewrite every surviving data image into
                # fresh buckets and retire the aging tray, so the next
                # burn lands the data on young media (§4.7 applied
                # proactively by a migration campaign).
                for image_id in sorted(blobs):
                    restored = DiscImage.deserialize(blobs[image_id])
                    yield from self._rewrite_image(image_id, restored)
                    report["migrated"].append(image_id)
                self._retire_array(roller, address, parity_labels)
            yield from mech.unload_array(set_id, priority=PRIORITY_FETCH)
            return report
        finally:
            grant.release()

    def _retire_array(self, roller: int, address: TrayAddress,
                      parity_labels: list[str]) -> None:
        """Mark an array FAILED and supersede its parity records.

        Data records are marked lost by :meth:`_rewrite_image` as they
        are rewritten; the parity images burned on the retired tray are
        superseded too (the replacement array will get fresh parity), so
        the DIM never claims a burned image on a FAILED array.
        """
        self.mc.set_state(roller, address, ArrayState.FAILED)
        for label in parity_labels:
            record = self.dim.records.get(label.split(".")[0])
            if record is not None:
                record.state = "lost"
                record.image = None

    def migrate_array(
        self,
        roller: int,
        address: TrayAddress,
        error_model: Optional[SectorErrorModel] = None,
    ) -> Generator:
        """Refresh one aging array onto new media.

        A scrub pass with mandatory migration: damaged images are
        repaired through parity first, then every data image is
        rewritten into fresh buckets and the old tray is retired.
        """
        report = yield from self.scrub_array(
            roller, address, error_model=error_model, migrate=True
        )
        return report

    def _rewrite_image(
        self, lost_image_id: str, restored: DiscImage
    ) -> Generator:
        """Write a recovered image's files into fresh buckets and repoint
        every MV index entry that referenced the lost image."""
        fs = restored.mount()
        new_locations: dict[str, tuple[list[str], list[int]]] = {}
        for path in fs.file_paths():
            from repro.olfs.bucket import LINK_SUFFIX

            if LINK_SUFFIX in path:
                continue
            entry = fs.file_entry(path)
            image_ids, sizes = yield from self.wbm.write_file(
                path,
                entry.data,
                logical_size=entry.logical_size,
                mtime=self.engine.now,
            )
            new_locations[path] = (image_ids, sizes)
        # Repoint MV entries that referenced the lost image; for split
        # files only the lost subfile's slot is spliced out.
        for path in self.mv.all_index_paths():
            index = self.mv.peek_index(path)
            changed = False
            for version in index.entries:
                if lost_image_id not in version.locations:
                    continue
                if path not in new_locations:
                    continue
                ids, sizes = new_locations[path]
                slot = version.locations.index(lost_image_id)
                version.locations = (
                    version.locations[:slot]
                    + ids
                    + version.locations[slot + 1 :]
                )
                version.subfile_sizes = (
                    version.subfile_sizes[:slot]
                    + sizes
                    + version.subfile_sizes[slot + 1 :]
                )
                changed = True
            if changed:
                yield from self.mv.write_index(path, index, self.engine.now)
        # The lost image is superseded: its data lives on in the new
        # buckets (which will burn to a fresh array); mark it dead.
        record = self.dim.records.get(lost_image_id)
        if record is not None:
            record.state = "lost"
            record.image = None

    # ------------------------------------------------------------------
    def wear_report(self) -> dict:
        """Mechanical duty counters for maintenance forecasting.

        Robotics are the shortest-lived components of a 50-year system
        (§2.3: "hardware, software and mechanical components are not
        likely to have the same lifetime as discs"); tracking cycles
        tells the operator when to service arms and motors.
        """
        mech = self.mc.mech
        return {
            "roller_rotations": sum(
                roller.rotation_count for roller in mech.rollers
            ),
            "roller_rotation_seconds": sum(
                roller.rotation_seconds for roller in mech.rollers
            ),
            "arm_moves": sum(arm.moves for arm in mech.arms),
            "arm_travel_seconds": sum(
                arm.travel_seconds for arm in mech.arms
            ),
            "drive_busy_seconds": sum(
                drive.busy_seconds
                for drive_set in mech.drive_sets
                for drive in drive_set.drives
            ),
            "plc_instructions": mech.plc.instructions_executed,
            "plc_faults": mech.plc.faults,
        }

    def export_daindex(self) -> str:
        """DAindex as JSON for the admin console."""
        rows = [
            {
                "roller": roller,
                "layer": address.layer,
                "slot": address.slot,
                "state": state.value,
                "images": self.mc.array_images.get((roller, address), []),
            }
            for (roller, address), state in sorted(self.mc.da_index.items())
            if state is not ArrayState.EMPTY
        ]
        return json.dumps(rows, indent=2)
