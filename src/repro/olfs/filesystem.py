"""OLFS assembled: volumes, mechanics and the nine modules, plus a
synchronous facade.

``OLFS`` builds the whole rack (Figure 1): the SSD metadata volume, the
HDD buffer volumes with the §4.7 stream scheduler, the mechanical
subsystem, and every OLFS module, then exposes blocking convenience
methods (``write``/``read``/``stat``/...) that advance the simulated clock.
Background activity — parity generation, burning, cache fills — continues
across calls on the same clock.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro import units
from repro.mechanics.geometry import RollerGeometry, DEFAULT_GEOMETRY
from repro.mechanics.library import MechanicalSubsystem
from repro.olfs.bucket import WritingBucketManager
from repro.olfs.burning import BurnController
from repro.olfs.cache import ReadCache
from repro.olfs.config import OLFSConfig
from repro.olfs.fetching import FetchController
from repro.olfs.forepart import ForepartManager
from repro.olfs.images import DiscImageManager
from repro.olfs.maintenance import MaintenanceInterface
from repro.olfs.mechanical import MechanicalController
from repro.olfs.metadata import MetadataVolume
from repro.olfs.posix import OpTrace, POSIXInterface, ReadResult
from repro.olfs.recovery import RecoveryManager
from repro.sim.engine import Delay, Engine, Wait
from repro.sim.tracing import MetricsRegistry, Tracer
from repro.storage.scheduler import IOStreamScheduler
from repro.storage.volume import Volume

#: The prototype's measured RAID-5 buffer volume rates (§5.3).
BUFFER_READ_RATE = 1.2 * units.GB
BUFFER_WRITE_RATE = 1.0 * units.GB
BUFFER_ACCESS_LATENCY = 0.0004

#: SSD RAID-1 metadata volume (two 240 GB SSDs, §5.1).
MV_READ_RATE = 900 * units.MB
MV_WRITE_RATE = 450 * units.MB
MV_ACCESS_LATENCY = 0.0001


class OLFS:
    """The Optical Library File System, fully assembled."""

    def __init__(
        self,
        config: Optional[OLFSConfig] = None,
        engine: Optional[Engine] = None,
        roller_count: int = 2,
        drive_sets_per_roller: int = 1,
        buffer_volume_count: int = 2,
        buffer_volume_capacity: int = 24 * units.TB,
        io_policy: str = "partitioned",
        geometry: RollerGeometry = DEFAULT_GEOMETRY,
        parallel_scheduling: bool = False,
        tracing: bool = False,
        trace_seed: int = 0x7ACE,
        fault_plan=None,
        fault_seed: int = 0xFA17,
        monitoring: bool = False,
        monitor_period: float = 5.0,
    ):
        self.engine = engine or Engine()
        self.config = config or OLFSConfig()

        # -- observability -------------------------------------------------
        # Metrics are always on (cheap counters); span tracing is opt-in
        # and installs on the shared engine, so components created below
        # pick it up through ``engine.trace``.
        self.metrics = MetricsRegistry()
        self.tracer: Optional[Tracer] = None
        if tracing:
            self.tracer = Tracer(self.engine, seed=trace_seed)
            self.engine.trace = self.tracer

        # -- storage tier -------------------------------------------------
        self.mv_volume = Volume(
            self.engine,
            "mv-ssd-raid1",
            read_throughput=MV_READ_RATE,
            write_throughput=MV_WRITE_RATE,
            capacity=240 * units.GB,
            access_latency=MV_ACCESS_LATENCY,
        )
        self.buffer_volumes = [
            Volume(
                self.engine,
                f"buffer-raid5-{index}",
                read_throughput=BUFFER_READ_RATE,
                write_throughput=BUFFER_WRITE_RATE,
                capacity=buffer_volume_capacity,
                access_latency=BUFFER_ACCESS_LATENCY,
            )
            for index in range(buffer_volume_count)
        ]
        self.scheduler = IOStreamScheduler(self.buffer_volumes, policy=io_policy)
        self.scheduler.metrics = self.metrics

        # -- mechanics ------------------------------------------------------
        self.mech = MechanicalSubsystem(
            self.engine,
            roller_count=roller_count,
            drive_sets_per_roller=drive_sets_per_roller,
            geometry=geometry,
            disc_type=self.config.disc_type,
            parallel_scheduling=parallel_scheduling,
        )
        for drive_set in self.mech.drive_sets:
            for drive in drive_set.drives:
                drive.idle_sleep_seconds = (
                    self.config.drive_idle_sleep_seconds
                )

        # -- OLFS modules ----------------------------------------------------
        self.mv = MetadataVolume(
            self.engine,
            self.mv_volume,
            lookup_seconds=self.config.mv_lookup_seconds,
            update_seconds=self.config.mv_update_seconds,
        )
        self.dim = DiscImageManager(self.engine, self.config, self.scheduler)
        self.mc = MechanicalController(self.engine, self.mech, self.config)
        self.btm = BurnController(
            self.engine, self.config, self.dim, self.mc, self.scheduler
        )

        def bucket_closed(image):
            self.dim.bucket_closed(image)
            self.btm.maybe_schedule()

        from repro.storage.scheduler import StreamKind

        self.wbm = WritingBucketManager(
            self.engine,
            self.config,
            self.scheduler.volume_for(StreamKind.USER_WRITE),
            on_bucket_closed=bucket_closed,
            on_bucket_created=lambda image_id: self.dim.register_open_bucket(
                image_id
            ),
        )
        # The initial buckets were created before the callback could run.
        for bucket in self.wbm.open_buckets():
            if bucket.image_id not in self.dim.records:
                self.dim.register_open_bucket(bucket.image_id)

        self.cache = ReadCache(self.dim, self.config.read_cache_images)
        self.cache.metrics = self.metrics
        self.cache.engine = self.engine
        self.btm.cache = self.cache
        # Buffer-pressure valve: allocations on the buffer volumes may
        # evict burned cached images instead of failing.
        for buffer_volume in self.buffer_volumes:
            buffer_volume.reclaimer = self.cache.reclaim
        self.ftm = FetchController(
            self.engine,
            self.config,
            self.dim,
            self.wbm,
            self.cache,
            self.mc,
            self.scheduler,
            burn_controller=self.btm,
        )
        self.foreparts = ForepartManager(self.config)
        self.pi = POSIXInterface(
            self.engine,
            self.config,
            self.mv,
            self.wbm,
            self.ftm,
            self.foreparts,
        )
        self.pi.metrics = self.metrics
        self.recovery = RecoveryManager(
            self.engine, self.config, self.mv, self.dim, self.mc, self.btm
        )
        self.mi = MaintenanceInterface(
            self.engine,
            self.config,
            self.mv,
            self.dim,
            self.mc,
            self.wbm,
            self.cache,
        )

        # -- fault injection (repro.faults) --------------------------------
        # A plan (even an empty one, for imperative injection) installs a
        # seeded injector as ``engine.faults``; instrumented sites in the
        # drives and the PLC channel consult it.
        self.fault_injector = None
        if fault_plan is not None:
            from repro.faults.injector import FaultInjector

            self.fault_injector = (
                FaultInjector(self.engine, fault_plan, seed=fault_seed)
                .bind(self)
                .install()
            )
            self.fault_injector.start()

        # -- run monitoring (repro.obs) ------------------------------------
        # Opt-in like tracing: the default leaves ``engine.recorder`` as
        # the null object and starts no sampler process, so unmonitored
        # runs stay byte-identical to pre-observability builds.
        self.recorder = None
        self.monitor = None
        if monitoring:
            from repro.obs.health import SystemMonitor
            from repro.obs.recorder import FlightRecorder

            self.recorder = FlightRecorder(self.engine).install()
            self.monitor = SystemMonitor(
                self, period=monitor_period, recorder=self.recorder
            ).start()

    # ------------------------------------------------------------------
    # Health API (the system monitor's aggregation point)
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Aggregated read-only health snapshot of every subsystem."""
        health = {
            "mech": self.mech.health(),
            "mc": self.mc.health(),
            "scheduler": self.scheduler.health(),
            "cache": self.cache.health(),
            "btm": self.btm.health(),
            "ftm": self.ftm.health(),
            "wbm": self.wbm.health(),
            "foreparts": self.foreparts.health(),
        }
        if self.fault_injector is not None:
            health["faults"] = self.fault_injector.health()
        return health

    # ------------------------------------------------------------------
    # Synchronous facade (advances the simulated clock)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.engine.now

    def run(self, generator: Generator, name: str = ""):
        """Run any OLFS process to completion on the shared clock."""
        return self.engine.run_process(generator, name)

    def write(self, path: str, data: bytes, logical_size: Optional[int] = None) -> OpTrace:
        """Write a file through the POSIX interface (§4.3 write path)."""
        return self.run(self.pi.write_file(path, data, logical_size), "write")

    def read(self, path: str, version: Optional[int] = None) -> ReadResult:
        """Read a file; may trigger disc fetches (§4.1 read path)."""
        return self.run(self.pi.read_file(path, version), "read")

    def stat(self, path: str) -> dict:
        return self.run(self.pi.stat(path), "stat")

    def mkdir(self, path: str) -> None:
        self.run(self.pi.mkdir(path), "mkdir")

    def readdir(self, path: str) -> list[str]:
        return self.run(self.pi.readdir(path), "readdir")

    def unlink(self, path: str) -> None:
        self.run(self.pi.unlink(path), "unlink")

    def versions(self, path: str) -> list[int]:
        return self.run(self.pi.versions(path), "versions")

    # ------------------------------------------------------------------
    # Burning / background control
    # ------------------------------------------------------------------
    def flush(self, wait: bool = True) -> int:
        """Seal open buckets and burn everything pending (§4.7).

        Returns the number of burn tasks started.  With ``wait`` the call
        blocks (in simulated time) until all burns complete.
        """
        self.wbm.close_nonempty_buckets()
        tasks = self.btm.flush_pending()
        started = len(tasks)
        # Also wait for burns that auto-scheduled before this flush.
        tasks = list(self.btm.active_tasks) + [
            task for task in tasks if task not in self.btm.active_tasks
        ]
        if wait and tasks:

            def waiter() -> Generator:
                for task in tasks:
                    if not task.done_event.fired:
                        yield Wait(task.done_event)

            self.run(waiter(), "flush-wait")
        return started

    def drain_background(self) -> None:
        """Run the engine until every background process settles."""
        if self.monitor is not None:
            # The monitor's sampler re-arms forever; a no-horizon drain
            # would chase its ticks and never return.
            with self.monitor.paused():
                self.engine.run()
            return
        self.engine.run()

    def settle(self, max_rounds: int = 50) -> None:
        """Drain background work, resuming any parked burns, until idle.

        A burn parked by the §4.8 interrupt policy waits for an explicit
        resume; a bare ``drain_background`` would leave it (and the
        engine) suspended forever.  Campaigns call this instead.
        """
        if self.monitor is not None:
            with self.monitor.paused():
                self._settle(max_rounds)
            return
        self._settle(max_rounds)

    def _settle(self, max_rounds: int) -> None:
        for _ in range(max_rounds):
            self.engine.run()
            if self.btm.interrupted_tasks:
                self.btm.resume_interrupted()
                continue
            break

    def crash_restart(self, downtime: float = 30.0) -> Generator:
        """Crash OLFS mid-burn; restart after ``downtime`` seconds (§4.2).

        Burning arrays stop at their next segment boundary — the burned
        prefixes survive as POW tracks — then the rack sits dark for the
        downtime.  On restart the MV state is reloaded from its serialized
        form (it lives on the SSD RAID-1, so nothing is lost) and parked
        burns resume in appending mode.
        """
        for task in list(self.btm.active_tasks):
            if task.state == "burning":
                task.request_interrupt()
        yield Delay(downtime)
        self.mv.load_snapshot(self.mv.serialize_snapshot())
        # Restart: keep nudging parked burns until none are waiting.
        for _ in range(100):
            if self.btm.interrupted_tasks:
                self.btm.resume_interrupted()
            pending = self.btm.interrupted_tasks or any(
                task.interrupt_requested for task in self.btm.active_tasks
            )
            if not pending:
                return
            yield Delay(5.0)

    # ------------------------------------------------------------------
    # Recovery / maintenance passthroughs
    # ------------------------------------------------------------------
    def checkpoint_mv(self):
        """Burn an MV snapshot to discs (§4.2)."""
        return self.run(self.recovery.burn_mv_snapshot(), "mv-checkpoint")

    def recover_mv(self):
        """Rebuild MV from the newest on-disc snapshot (§4.2)."""
        return self.run(self.recovery.recover_mv_from_discs(), "mv-recover")

    def status(self) -> dict:
        return self.mi.status()
