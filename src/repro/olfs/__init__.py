"""OLFS: the Optical Library File System (the paper's core contribution).

Nine cooperating modules (§4.1, Figure 3):

========================  =====================================================
Paper module              Implementation
========================  =====================================================
POSIX Interface (PI)      :mod:`repro.olfs.posix`
Writing Bucket Mgmt (WBM) :mod:`repro.olfs.bucket`
Disc Image Mgmt (DIM)     :mod:`repro.olfs.images`
Burning Task Mgmt (BTM)   :mod:`repro.olfs.burning`
Disc Burning (DB)         :mod:`repro.olfs.burning` (`BurnTask`)
Fetching Task Mgmt (FTM)  :mod:`repro.olfs.fetching`
Read Cache (RC)           :mod:`repro.olfs.cache`
Mechanical Controller(MC) :mod:`repro.olfs.mechanical`
Maintenance Intf (MI)     :mod:`repro.olfs.maintenance`
========================  =====================================================

plus the Metadata Volume (:mod:`repro.olfs.metadata`), the global-namespace
index files (:mod:`repro.olfs.index`), the forepart-data-stored mechanism
(:mod:`repro.olfs.forepart`) and recovery (:mod:`repro.olfs.recovery`).

:class:`repro.olfs.filesystem.OLFS` wires everything together and is the
main entry point; most users reach it through :class:`repro.ROS`.
"""

from repro.olfs.config import OLFSConfig
from repro.olfs.filesystem import OLFS

__all__ = ["OLFS", "OLFSConfig"]
