"""Preliminary Bucket Writing: the WBM module (§4.3, §4.5).

Incoming file data lands in *buckets* — updatable UDF volumes (Linux loop
devices in the prototype) on the disk write buffer.  A filled bucket closes
and becomes a disc image with the same image ID.  The manager implements
the §4.5 partitioning policy:

* first-come-first-served into the currently open, not-full bucket;
* the unique-file-path rule — a file's ancestor directory chain is created
  inside the bucket (§4.4);
* files that outgrow the open bucket split into subfiles across
  consecutive images, with a link file on each later image pointing back
  to the previous subfile (§4.5).

Every write charges the buffer volume assigned to the USER_WRITE stream.
"""

from __future__ import annotations

import json
from typing import Callable, Generator, Optional

from repro.errors import NoSpaceOLFSError, ReadOnlyOLFSError
from repro.olfs.config import OLFSConfig
from repro.sim.engine import Delay, Engine
from repro.storage.volume import Volume
from repro.udf.constants import BLOCK_SIZE
from repro.udf.entry import blocks_for_data
from repro.udf.filesystem import UDFFileSystem
from repro.udf.image import DiscImage

#: Suffix of the §4.5 link files written next to continued subfiles.
LINK_SUFFIX = ".roslink"


def link_path(path: str, part: int) -> str:
    return f"{path}{LINK_SUFFIX}{part}"


class Bucket:
    """One open, updatable UDF volume accumulating incoming files."""

    def __init__(self, engine: Engine, image_id: str, capacity: int):
        self.engine = engine
        self.image_id = image_id
        self.filesystem = UDFFileSystem(capacity, label=image_id)
        self.closed = False

    @property
    def is_empty(self) -> bool:
        return self.filesystem.used_blocks <= 1

    @property
    def free_bytes(self) -> int:
        return self.filesystem.free_bytes

    def fits(self, path: str, nbytes: int) -> bool:
        return self.filesystem.fits(path, nbytes)

    def max_data_bytes_for(self, path: str, extra_entries: int = 0) -> int:
        """Largest file payload at ``path`` this bucket can still take."""
        overhead = self.filesystem.blocks_needed_for(path, 0)
        overhead += extra_entries
        free = self.filesystem.free_blocks - overhead
        return max(0, free * BLOCK_SIZE)

    def to_image(self) -> DiscImage:
        """Close the bucket into an immutable disc image (§4.3)."""
        self.filesystem.close()
        self.closed = True
        return DiscImage(self.image_id, kind="data", filesystem=self.filesystem)


class WritingBucketManager:
    """Creates, fills, closes and recycles buckets (the WBM module)."""

    def __init__(
        self,
        engine: Engine,
        config: OLFSConfig,
        volume: Volume,
        on_bucket_closed: Optional[Callable[[DiscImage], None]] = None,
        on_bucket_created: Optional[Callable[[str], None]] = None,
    ):
        self.engine = engine
        self.config = config
        self.volume = volume
        #: called with the new DiscImage whenever a bucket fills and closes
        self.on_bucket_closed = on_bucket_closed
        #: called with the image ID whenever a fresh bucket opens
        self.on_bucket_created = on_bucket_created
        self._buckets: list[Bucket] = []
        self._image_counter = 0
        self.buckets_created = 0
        self.buckets_closed = 0
        #: writes restarted because a concurrent writer filled or sealed
        #: the chosen bucket while this write's transfer was in flight
        self.write_races = 0
        for _ in range(config.open_buckets):
            self._new_bucket()

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def _new_bucket(self) -> Bucket:
        self._image_counter += 1
        image_id = f"img-{self._image_counter:08d}"
        bucket = Bucket(self.engine, image_id, self.config.bucket_capacity)
        # Under buffer pressure the volume's reclaimer (the read cache)
        # evicts burned images before this allocation can fail (§5.3:
        # the buffer is a cache, not a hard capacity limit).
        self.volume.allocate(self.config.bucket_capacity)
        self._buckets.append(bucket)
        self.buckets_created += 1
        if self.on_bucket_created is not None:
            self.on_bucket_created(image_id)
        return bucket

    def open_buckets(self) -> list[Bucket]:
        return [bucket for bucket in self._buckets if not bucket.closed]

    def health(self) -> dict:
        """Cheap read-only snapshot for the system monitor."""
        open_buckets = self.open_buckets()
        return {
            "open": len(open_buckets),
            "created": self.buckets_created,
            "closed": self.buckets_closed,
            "open_fill_bytes": sum(
                bucket.filesystem.used_bytes for bucket in open_buckets
            ),
        }

    def find_bucket(self, image_id: str) -> Optional[Bucket]:
        for bucket in self._buckets:
            if bucket.image_id == image_id and not bucket.closed:
                return bucket
        return None

    def _close(self, bucket: Bucket) -> DiscImage:
        image = bucket.to_image()
        self._buckets.remove(bucket)
        self.buckets_closed += 1
        # The closed image keeps occupying buffer space until the image
        # manager takes ownership; transfer the reservation to it *before*
        # recycling.  The hand-off releases a full bucket's reservation
        # and re-allocates at most that much (the image's logical size),
        # so it can never fail — whereas recycling first could eat the
        # freed space and leave the sealed image orphaned in the manager
        # (readable by nobody: not an open bucket, never buffered).
        self.volume.release(self.config.bucket_capacity)
        if self.on_bucket_closed is not None:
            self.on_bucket_closed(image)
        # Recycle: keep the configured number of open buckets ready.
        # Under genuine buffer pressure this may raise ENOSPC at the
        # writer that triggered the close — clean backpressure, with the
        # closed image already safely handed off.
        while len(self.open_buckets()) < self.config.open_buckets:
            self._new_bucket()
        return image

    def close_nonempty_buckets(self) -> list[DiscImage]:
        """Force-close every bucket holding data (flush, §4.7)."""
        images = []
        for bucket in list(self.open_buckets()):
            if not bucket.is_empty:
                images.append(self._close(bucket))
        return images

    # ------------------------------------------------------------------
    # Writing (the §4.5 partitioning policy)
    # ------------------------------------------------------------------
    def write_file(
        self,
        path: str,
        data: bytes,
        logical_size: Optional[int] = None,
        mtime: float = 0.0,
        prefer_bucket: Optional[str] = None,
        avoid_buckets: Optional[set] = None,
    ) -> Generator:
        """Write a file into buckets; returns ``(image_ids, sizes)``.

        ``prefer_bucket`` implements §4.6 update-in-place; ``avoid_buckets``
        implements the regenerating update — open buckets holding any live
        version of this path must not be overwritten, so the new copy
        lands elsewhere.

        Normally one bucket takes the whole file.  When the open bucket
        cannot hold it, the file splits: the first subfile fills the
        current bucket (which closes), later subfiles continue in fresh
        buckets carrying link files pointing at the previous part (§4.5).

        Bucket choice happens before the timed transfer, so a concurrent
        writer can fill or seal the chosen bucket while this write's data
        is still in flight.  Such a raced write restarts against another
        bucket (the transfer time already spent stands, as it would for a
        real rewrite); only the bucket-filesystem write is transactional.
        """
        size = len(data) if logical_size is None else int(logical_size)
        remaining_data = data
        remaining_size = size
        image_ids: list[str] = []
        sizes: list[int] = []
        part = 0
        races = 0
        while True:
            bucket = None
            if prefer_bucket is not None:
                # §4.6 update-in-place: reuse the version's open bucket
                # when it still has room.
                candidate = self.find_bucket(prefer_bucket)
                if candidate is not None and candidate.fits(
                    path, remaining_size
                ):
                    bucket = candidate
                else:
                    # In-place impossible: fall back to a regenerating
                    # update, which must not clobber the old version.
                    avoid_buckets = set(avoid_buckets or ()) | {prefer_bucket}
                prefer_bucket = None
            if bucket is None:
                bucket = self._pick_bucket(
                    path, remaining_size, avoid_buckets
                )
            extra_entries = 2 if part > 0 else 0  # link file entry + data block
            room = bucket.max_data_bytes_for(path, extra_entries)
            if room >= remaining_size:
                try:
                    yield from self._timed_write(
                        bucket, path, remaining_data, remaining_size, mtime
                    )
                except (NoSpaceOLFSError, ReadOnlyOLFSError):
                    avoid_buckets = self._raced(bucket, races, avoid_buckets)
                    races += 1
                    continue
                if part > 0:
                    self._write_link(bucket, path, part, image_ids[-1], mtime)
                image_ids.append(bucket.image_id)
                sizes.append(remaining_size)
                if bucket.free_bytes < 2 * BLOCK_SIZE:
                    self._close(bucket)
                return image_ids, sizes
            if room < BLOCK_SIZE:
                if bucket.is_empty:
                    # Even a fresh bucket cannot hold this path's ancestor
                    # chain plus one data block: the path is too deep for
                    # the configured bucket capacity.
                    raise NoSpaceOLFSError(
                        f"path {path!r} does not fit an empty bucket of "
                        f"{self.config.bucket_capacity} bytes"
                    )
                # Bucket too full even for one data block: close, retry.
                self._close(bucket)
                continue
            # Split: write what fits, close the bucket, continue.
            take = room
            real_take = min(take, len(remaining_data))
            chunk = remaining_data[:real_take]
            try:
                yield from self._timed_write(bucket, path, chunk, take, mtime)
            except (NoSpaceOLFSError, ReadOnlyOLFSError):
                avoid_buckets = self._raced(bucket, races, avoid_buckets)
                races += 1
                continue
            if part > 0:
                self._write_link(bucket, path, part, image_ids[-1], mtime)
            image_ids.append(bucket.image_id)
            sizes.append(take)
            remaining_data = remaining_data[real_take:]
            remaining_size -= take
            part += 1
            self._close(bucket)

    #: restart bound for raced writes.  Every restart re-pays the bucket
    #: access latency and the buffer-volume transfer, so a livelock would
    #: need another writer to fill a fresh bucket during every retry —
    #: the cap only turns a pathological storm into a clean ENOSPC.
    MAX_WRITE_RACES = 16

    def _raced(
        self, bucket: Bucket, races: int, avoid_buckets: Optional[set]
    ) -> set:
        """Account a mid-transfer bucket race; returns the new avoid set."""
        self.write_races += 1
        if races + 1 >= self.MAX_WRITE_RACES:
            raise NoSpaceOLFSError(
                f"write restarted {races + 1} times: every chosen bucket "
                "was filled or sealed by concurrent writers mid-transfer"
            )
        return set(avoid_buckets or ()) | {bucket.image_id}

    def _pick_bucket(
        self, path: str, nbytes: int, avoid_buckets: Optional[set] = None
    ) -> Bucket:
        """First-come-first-served: the first open bucket that fits, else
        the emptiest open bucket (which the caller may split into)."""
        avoid = avoid_buckets or set()
        open_buckets = [
            bucket
            for bucket in self.open_buckets()
            if bucket.image_id not in avoid
        ]
        if not open_buckets:
            open_buckets = [self._new_bucket()]
        for bucket in open_buckets:
            if bucket.fits(path, nbytes):
                return bucket
        return max(open_buckets, key=lambda b: b.free_bytes)

    def _timed_write(
        self,
        bucket: Bucket,
        path: str,
        data: bytes,
        logical_size: int,
        mtime: float,
    ) -> Generator:
        yield Delay(self.config.bucket_access_seconds)
        yield from self.volume.write(logical_size)
        bucket.filesystem.write_file(
            path, data, logical_size=logical_size, mtime=mtime, overwrite=True
        )

    def _write_link(
        self,
        bucket: Bucket,
        path: str,
        part: int,
        previous_image_id: str,
        mtime: float,
    ) -> None:
        """§4.5: a link file on the continuation image points to the
        previous subfile so the namespace reconstructs without MV."""
        payload = json.dumps(
            {"continues": previous_image_id, "part": part, "path": path}
        ).encode()
        bucket.filesystem.write_file(
            link_path(path, part), payload, mtime=mtime, overwrite=True
        )

    # ------------------------------------------------------------------
    # Reads that hit an open bucket
    # ------------------------------------------------------------------
    def read_file(self, image_id: str, path: str) -> Generator:
        """Read file content from a still-open bucket (timed)."""
        bucket = self.find_bucket(image_id)
        if bucket is None:
            raise NoSpaceOLFSError(f"bucket {image_id} is not open")
        entry = bucket.filesystem.file_entry(path)
        yield Delay(self.config.bucket_access_seconds)
        yield from self.volume.read(entry.size)
        return entry.data
