"""The Metadata Volume (MV): the global namespace's fast, small home (§4.2).

MV is an ext4 file system on a RAID-1 SSD pair holding, for every entry of
the global namespace, an index file at the same path.  Data and metadata
storage are physically decoupled: MV answers every namespace operation at
SSD latency while file bytes live in buckets/images/discs.

The implementation keeps a real directory tree of serialized
:class:`~repro.olfs.index.IndexFile` blobs, charges every operation against
the MV volume's bandwidth/latency (plus the calibrated ext4 direct-I/O
constant), tracks 1 KB-block/128 B-inode usage for the §4.2 sizing claim,
and serializes to a snapshot for the periodic burn-to-disc checkpoints.
"""

from __future__ import annotations

import json
from typing import Generator, Optional

from repro.errors import (
    FileExistsOLFSError,
    FileNotFoundOLFSError,
    InvalidPathError,
    NotADirectoryOLFSError,
)
from repro.olfs.index import IndexFile
from repro.sim.engine import Delay, Engine
from repro.storage.volume import Volume
from repro.udf.filesystem import split_path

#: MV formatting choices (§4.2): 1 KB blocks, 128 B inodes.
MV_BLOCK_SIZE = 1024
MV_INODE_SIZE = 128


class _Dir:
    __slots__ = ("children", "mtime")

    def __init__(self, mtime: float = 0.0):
        self.children: dict[str, object] = {}
        self.mtime = mtime


class _IndexBlob:
    __slots__ = ("blob", "mtime")

    def __init__(self, blob: bytes, mtime: float = 0.0):
        self.blob = blob
        self.mtime = mtime


class MetadataVolume:
    """The MV: timed index-file store plus system-state checkpoints."""

    def __init__(
        self,
        engine: Engine,
        volume: Volume,
        lookup_seconds: float = 0.0004,
        update_seconds: float = 0.0006,
    ):
        self.engine = engine
        self.volume = volume
        self.lookup_seconds = lookup_seconds
        self.update_seconds = update_seconds
        self._root = _Dir()
        self._state: dict[str, dict] = {}
        self.lookups = 0
        self.updates = 0
        # Change tracking for incremental checkpoints (§4.2 extension):
        # paths touched / removed since the last checkpoint cleared them.
        self._dirty: set[str] = set()
        self._deleted: set[str] = set()

    # ------------------------------------------------------------------
    # Tree plumbing (untimed)
    # ------------------------------------------------------------------
    def _walk_to(self, parts: list[str], create_dirs: bool = False) -> _Dir:
        node = self._root
        for part in parts:
            child = node.children.get(part)
            if child is None:
                if not create_dirs:
                    raise FileNotFoundOLFSError(f"missing directory {part!r}")
                child = _Dir()
                node.children[part] = child
            if not isinstance(child, _Dir):
                raise NotADirectoryOLFSError(f"{part!r} is an index file")
            node = child
        return node

    def _find(self, path: str):
        parts = split_path(path)
        if not parts:
            return self._root
        parent = self._walk_to(parts[:-1])
        if parts[-1] not in parent.children:
            raise FileNotFoundOLFSError(f"{path!r}: not in MV")
        return parent.children[parts[-1]]

    # ------------------------------------------------------------------
    # Timed namespace operations
    # ------------------------------------------------------------------
    def exists(self, path: str) -> Generator:
        yield from self._charge_lookup(0)
        try:
            self._find(path)
            return True
        except (FileNotFoundOLFSError, NotADirectoryOLFSError):
            return False

    def is_dir(self, path: str) -> Generator:
        yield from self._charge_lookup(0)
        try:
            return isinstance(self._find(path), _Dir)
        except (FileNotFoundOLFSError, NotADirectoryOLFSError):
            return False

    def lookup_index(self, path: str) -> Generator:
        """Read and parse an index file (timed); raises if absent."""
        node = self._find(path)  # untimed check first: miss costs too
        if isinstance(node, _Dir):
            raise FileNotFoundOLFSError(f"{path!r} is a directory in MV")
        yield from self._charge_lookup(len(node.blob))
        return IndexFile.deserialize(node.blob)

    def write_index(
        self, path: str, index: IndexFile, mtime: float = 0.0
    ) -> Generator:
        """Create or update an index file, creating ancestor directories."""
        parts = split_path(path)
        if not parts:
            raise InvalidPathError("cannot index the root")
        blob = index.serialize()
        parent = self._walk_to(parts[:-1], create_dirs=True)
        existing = parent.children.get(parts[-1])
        if isinstance(existing, _Dir):
            raise FileExistsOLFSError(f"{path!r} is a directory in MV")
        parent.children[parts[-1]] = _IndexBlob(blob, mtime)
        self._dirty.add(path)
        self._deleted.discard(path)
        yield from self._charge_update(len(blob))

    def make_dir(self, path: str, mtime: float = 0.0) -> Generator:
        parts = split_path(path)
        self._walk_to(parts, create_dirs=True).mtime = mtime
        self._dirty.add(path)
        self._deleted.discard(path)
        yield from self._charge_update(0)

    def remove_index(self, path: str) -> Generator:
        parts = split_path(path)
        parent = self._walk_to(parts[:-1])
        if parts[-1] not in parent.children:
            raise FileNotFoundOLFSError(f"{path!r}: not in MV")
        del parent.children[parts[-1]]
        self._dirty.discard(path)
        self._deleted.add(path)
        yield from self._charge_update(0)

    def listdir(self, path: str) -> Generator:
        node = self._root if path == "/" else self._find(path)
        if not isinstance(node, _Dir):
            raise NotADirectoryOLFSError(f"{path!r} is an index file")
        yield from self._charge_lookup(0)
        return sorted(node.children)

    def entry_kind(self, path: str) -> Generator:
        """'dir', 'file', or None — one lookup charge."""
        yield from self._charge_lookup(0)
        try:
            node = self._find(path)
        except (FileNotFoundOLFSError, NotADirectoryOLFSError):
            return None
        return "dir" if isinstance(node, _Dir) else "file"

    # ------------------------------------------------------------------
    # System state (§4.2: running state + checkpoints live in MV)
    # ------------------------------------------------------------------
    def save_state(self, key: str, state: dict) -> Generator:
        blob = json.dumps(state, sort_keys=True).encode()
        self._state[key] = state
        yield from self._charge_update(len(blob))

    def load_state(self, key: str) -> Generator:
        yield from self._charge_lookup(256)
        return self._state.get(key)

    # ------------------------------------------------------------------
    # Untimed iteration / accounting
    # ------------------------------------------------------------------
    def all_index_paths(self) -> list[str]:
        paths: list[str] = []

        def recurse(prefix: str, directory: _Dir):
            for name in sorted(directory.children):
                child = directory.children[name]
                path = f"{prefix}/{name}"
                if isinstance(child, _Dir):
                    recurse(path, child)
                else:
                    paths.append(path)

        recurse("", self._root)
        return paths

    def peek_index(self, path: str) -> IndexFile:
        """Untimed index read (recovery verification, tests)."""
        node = self._find(path)
        if isinstance(node, _Dir):
            raise FileNotFoundOLFSError(f"{path!r} is a directory in MV")
        return IndexFile.deserialize(node.blob)

    def used_bytes(self) -> int:
        """MV footprint with 1 KB blocks + 128 B inodes (§4.2 sizing)."""
        total = 0

        def recurse(directory: _Dir):
            nonlocal total
            total += MV_INODE_SIZE + MV_BLOCK_SIZE  # dir inode + block
            for child in directory.children.values():
                if isinstance(child, _Dir):
                    recurse(child)
                else:
                    blocks = -(-len(child.blob) // MV_BLOCK_SIZE)
                    total += MV_INODE_SIZE + blocks * MV_BLOCK_SIZE

        recurse(self._root)
        return total

    # ------------------------------------------------------------------
    # Snapshots (burned to discs periodically, §4.2)
    # ------------------------------------------------------------------
    def serialize_snapshot(self) -> bytes:
        entries = []

        def recurse(prefix: str, directory: _Dir):
            for name in sorted(directory.children):
                child = directory.children[name]
                path = f"{prefix}/{name}"
                if isinstance(child, _Dir):
                    entries.append({"path": path, "type": "dir"})
                    recurse(path, child)
                else:
                    entries.append(
                        {
                            "path": path,
                            "type": "index",
                            "blob": child.blob.decode(),
                        }
                    )

        recurse("", self._root)
        return json.dumps(
            {"state": self._state, "entries": entries}, sort_keys=True
        ).encode()

    def load_snapshot(self, blob: bytes) -> None:
        snapshot = json.loads(blob)
        self._root = _Dir()
        self._state = snapshot["state"]
        for entry in snapshot["entries"]:
            parts = split_path(entry["path"])
            parent = self._walk_to(parts[:-1], create_dirs=True)
            if entry["type"] == "dir":
                if parts[-1] not in parent.children:
                    parent.children[parts[-1]] = _Dir()
            else:
                parent.children[parts[-1]] = _IndexBlob(
                    entry["blob"].encode()
                )

    # ------------------------------------------------------------------
    # Incremental checkpoints (§4.2 extension)
    # ------------------------------------------------------------------
    def collect_delta(self) -> bytes:
        """Serialize only the entries changed since the last checkpoint."""
        entries = []
        for path in sorted(self._dirty):
            try:
                node = self._find(path)
            except Exception:  # noqa: BLE001 — vanished since dirtied
                continue
            if isinstance(node, _Dir):
                entries.append({"path": path, "type": "dir"})
            else:
                entries.append(
                    {"path": path, "type": "index", "blob": node.blob.decode()}
                )
        return json.dumps(
            {
                "state": self._state,
                "entries": entries,
                "deleted": sorted(self._deleted),
            },
            sort_keys=True,
        ).encode()

    def apply_delta(self, blob: bytes) -> None:
        """Replay a delta over the current tree (after the base load)."""
        delta = json.loads(blob)
        self._state = delta.get("state", self._state)
        for path in delta.get("deleted", []):
            parts = split_path(path)
            try:
                parent = self._walk_to(parts[:-1])
            except Exception:  # noqa: BLE001
                continue
            parent.children.pop(parts[-1], None)
        for entry in delta["entries"]:
            parts = split_path(entry["path"])
            parent = self._walk_to(parts[:-1], create_dirs=True)
            if entry["type"] == "dir":
                if parts[-1] not in parent.children:
                    parent.children[parts[-1]] = _Dir()
            else:
                parent.children[parts[-1]] = _IndexBlob(entry["blob"].encode())

    def clear_change_tracking(self) -> None:
        """Called after a checkpoint burns successfully."""
        self._dirty.clear()
        self._deleted.clear()

    @property
    def pending_changes(self) -> int:
        return len(self._dirty) + len(self._deleted)

    # ------------------------------------------------------------------
    def _charge_lookup(self, nbytes: int) -> Generator:
        with self.engine.trace.span("mv.lookup", "mv"):
            self.lookups += 1
            yield Delay(self.lookup_seconds)
            yield from self.volume.read(max(nbytes, 256))

    def _charge_update(self, nbytes: int) -> Generator:
        with self.engine.trace.span("mv.update", "mv"):
            self.updates += 1
            yield Delay(self.update_seconds)
            yield from self.volume.write(max(nbytes, 256))
