"""File-grain caching and prefetching (§4.1's future-work knobs).

"Certainly, the read cache also can use in finer grain as files or
prefetch some files according to specific access patterns."  Two opt-in
mechanisms implement that sentence:

* :class:`FileGrainCache` — instead of admitting a whole fetched disc
  image to the buffer (the default, image-grain), keep only the requested
  file's bytes under a byte-budget LRU.  Wins when access is random
  across many images and buffer space is tight; loses the spatial
  locality the image-grain cache gets for free.
* :class:`SequentialPrefetcher` — while a fetched disc is still mounted,
  pull the next few sibling files (same directory, name order) into the
  file cache, anticipating sequential scans.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.udf.image import DiscImage


class FileGrainCache:
    """Byte-budget LRU of individual file payloads."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 1:
            raise ValueError("file cache needs a positive byte budget")
        self.capacity_bytes = int(capacity_bytes)
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(image_id: str, path: str) -> str:
        return f"{image_id}:{path}"

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, image_id: str, path: str) -> Optional[bytes]:
        key = self.key(image_id, path)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, image_id: str, path: str, data: bytes) -> None:
        if len(data) > self.capacity_bytes:
            return  # larger than the whole budget: not cacheable
        key = self.key(image_id, path)
        if key in self._entries:
            self._used -= len(self._entries.pop(key))
        self._entries[key] = data
        self._used += len(data)
        while self._used > self.capacity_bytes:
            _, victim = self._entries.popitem(last=False)
            self._used -= len(victim)

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "files": len(self._entries),
            "used_bytes": self._used,
            "capacity_bytes": self.capacity_bytes,
        }


class SequentialPrefetcher:
    """Pick the sibling files to pull alongside a fetched file."""

    def __init__(self, depth: int):
        self.depth = int(depth)
        self.prefetched = 0

    def candidates(self, image: DiscImage, path: str) -> list[str]:
        """Up to ``depth`` same-directory successors of ``path`` in the
        image, name order — the sequential-scan pattern."""
        if self.depth <= 0:
            return []
        fs = image.mount()
        directory = path.rsplit("/", 1)[0] or "/"
        try:
            names = fs.listdir(directory)
        except Exception:  # noqa: BLE001 — directory vanished/odd image
            return []
        base = path.rsplit("/", 1)[1]
        files = [
            name
            for name in names
            if fs.is_file(f"{directory}/{name}".replace("//", "/"))
        ]
        if base not in files:
            return []
        index = files.index(base)
        chosen = files[index + 1 : index + 1 + self.depth]
        prefix = directory if directory != "/" else ""
        return [f"{prefix}/{name}" for name in chosen]
