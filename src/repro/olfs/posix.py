"""The POSIX Interface (PI): OLFS's externally visible file operations.

Every client-visible call decomposes into the internal operations the
paper traces in Figure 7::

    write  = stat (miss) ; mknod ; stat ; write ; close      (~16 ms)
    read   = stat ; read ; close                              (~9 ms)

Each internal op pays a calibrated fixed cost (FUSE kernel-user switch +
OLFS user-space processing) *plus* its real I/O (MV index traffic, bucket
writes, image reads, mechanical fetches), so Figure 7's per-op averages of
~2.5 ms and Table 1's location-dependent latencies both emerge from the
same machinery.  A frontend stack (samba) may add per-op overhead and the
seven extra ``stat`` calls the paper observed on the SMB write path.

The interface records an :class:`OpTrace` per call for the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.errors import (
    FileExistsOLFSError,
    FileNotFoundOLFSError,
    IsADirectoryOLFSError,
)
from repro.olfs.bucket import WritingBucketManager
from repro.olfs.config import OLFSConfig
from repro.olfs.fetching import FetchController
from repro.olfs.forepart import ForepartManager
from repro.olfs.index import IndexFile, VersionEntry
from repro.olfs.metadata import MetadataVolume
from repro.sim.engine import Delay, Engine

#: Fixed processing cost per internal op (seconds): FUSE switch + OLFS
#: user-space work, excluding the op's real I/O.  Calibrated so the
#: composed averages land on Figure 7 (stat ~2.5 ms, mknod ~6 ms total
#: with their MV/bucket traffic included).
OP_PROCESS_SECONDS = {
    "stat": 0.0019,
    "mknod": 0.0042,
    "write": 0.0016,
    "read": 0.0026,
    "close": 0.0018,
    "mkdir": 0.0019,
    "readdir": 0.0019,
    "unlink": 0.0019,
}

#: Histogram bucket bounds (seconds) for per-op latency: sub-ms cached ops
#: through multi-minute mechanical fetches (Table 1's full range).
OP_LATENCY_BOUNDS = (0.001, 0.002, 0.005, 0.01, 0.05, 0.5, 5.0, 60.0, 300.0)


@dataclass
class OpRecord:
    name: str
    seconds: float


@dataclass
class OpTrace:
    """Internal-op breakdown of one client-visible call (Figure 7)."""

    call: str
    ops: list[OpRecord] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(op.seconds for op in self.ops)

    def op_names(self) -> list[str]:
        return [op.name for op in self.ops]


@dataclass
class ReadResult:
    """A completed read: content plus its latency decomposition."""

    data: bytes
    source: str
    first_byte_seconds: float
    total_seconds: float
    used_forepart: bool = False


class POSIXInterface:
    """The PI module; all methods are simulation processes."""

    def __init__(
        self,
        engine: Engine,
        config: OLFSConfig,
        mv: MetadataVolume,
        wbm: WritingBucketManager,
        fetcher: FetchController,
        foreparts: Optional[ForepartManager] = None,
    ):
        self.engine = engine
        self.config = config
        self.mv = mv
        self.wbm = wbm
        self.fetcher = fetcher
        self.foreparts = foreparts or ForepartManager(config)
        #: per-op overhead added by the frontend (seconds); samba sets >0
        self.frontend_per_op_seconds = 0.0
        #: extra stat calls the frontend issues on the write path (§5.3)
        self.frontend_extra_write_stats = 0
        self.last_trace: Optional[OpTrace] = None
        #: optional MetricsRegistry; OLFS wires its own in
        self.metrics = None

    # ------------------------------------------------------------------
    # Internal-op plumbing
    # ------------------------------------------------------------------
    def _op(self, trace: OpTrace, name: str, work=None) -> Generator:
        """Run one internal op: fixed processing + optional timed work."""
        with self.engine.trace.span(f"op.{name}", "posix"):
            start = self.engine.now
            fixed = OP_PROCESS_SECONDS[name] * self.config.internal_op_scale
            fixed += self.frontend_per_op_seconds
            yield Delay(fixed)
            result = None
            if work is not None:
                result = yield from work
            elapsed = self.engine.now - start
            trace.ops.append(OpRecord(name, elapsed))
            if self.metrics is not None:
                self.metrics.counter(f"posix.ops.{name}").inc()
                self.metrics.histogram(
                    "posix.op_seconds", OP_LATENCY_BOUNDS
                ).observe(elapsed)
        return result

    def _stat_work(self, path: str) -> Generator:
        """MV lookup for a stat; returns the IndexFile or None."""
        try:
            index = yield from self.mv.lookup_index(path)
            return index
        except FileNotFoundOLFSError:
            return None

    # ------------------------------------------------------------------
    # Client-visible calls
    # ------------------------------------------------------------------
    def write_file(
        self,
        path: str,
        data: bytes,
        logical_size: Optional[int] = None,
    ) -> Generator:
        """Create or update a file (the Figure 7 write sequence).

        Returns the :class:`OpTrace`.
        """
        with self.engine.trace.span(
            "posix.write", "posix", {"path": path, "bytes": len(data)}
        ):
            trace = yield from self._write_file(path, data, logical_size)
        return trace

    def _write_file(
        self,
        path: str,
        data: bytes,
        logical_size: Optional[int] = None,
    ) -> Generator:
        trace = OpTrace("write")
        now = self.engine.now
        index = yield from self._op(trace, "stat", self._stat_work(path))
        kind = yield from self.mv.entry_kind(path)
        if kind == "dir":
            raise IsADirectoryOLFSError(f"{path!r} is a directory")
        creating = index is None
        if creating:
            # The frontend (samba) re-stats around creation (§5.3).
            for _ in range(self.frontend_extra_write_stats):
                yield from self._op(trace, "stat", self._stat_work(path))
            index = IndexFile(path, self.config.max_versions)
            yield from self._op(
                trace, "mknod", self.mv.write_index(path, index, now)
            )
            yield from self._op(trace, "stat", self._stat_work(path))

        # §4.6: update in place when the current version sits in an open
        # bucket with room (no new version entry — the old bytes are
        # overwritten); otherwise the regenerating update writes the new
        # copy elsewhere and bumps the version.
        prefer = None
        avoid: set = set()
        if not creating:
            old_locations = index.current.locations
            # Every live version sitting in a still-open bucket must not
            # be overwritten by the regenerating update.
            for entry in index.entries:
                for image_id in entry.locations:
                    if self.wbm.find_bucket(image_id) is not None:
                        avoid.add(image_id)
            in_place_ok = (
                self.config.update_in_place
                and len(old_locations) == 1
                and self.wbm.find_bucket(old_locations[0]) is not None
            )
            if in_place_ok:
                prefer = old_locations[0]
                avoid.discard(prefer)

        def do_write() -> Generator:
            image_ids, sizes = yield from self.wbm.write_file(
                path,
                data,
                logical_size,
                mtime=self.engine.now,
                prefer_bucket=prefer,
                avoid_buckets=avoid or None,
            )
            return image_ids, sizes

        image_ids, sizes = yield from self._op(trace, "write", do_write())
        size = len(data) if logical_size is None else int(logical_size)
        in_place = (
            not creating
            and prefer is not None
            and image_ids == [prefer]
        )
        entry = VersionEntry(
            version=index.current.version if in_place else index.next_version,
            size=size,
            mtime=self.engine.now,
            locations=image_ids,
            subfile_sizes=sizes,
        )
        if in_place:
            index.entries[-1] = entry
        else:
            index.add_version(entry)
        index.forepart = self.foreparts.forepart_of(data)

        yield from self._op(
            trace, "close", self.mv.write_index(path, index, self.engine.now)
        )
        self.last_trace = trace
        return trace

    def read_file(
        self, path: str, version: Optional[int] = None
    ) -> Generator:
        """Read a file (the Figure 7 read sequence): stat; read; close.

        Returns a :class:`ReadResult`; multi-part files are reassembled
        across their subfile images (§4.5).
        """
        with self.engine.trace.span(
            "posix.read", "posix", {"path": path}
        ) as span:
            result = yield from self._read_file(path, version)
            span.tag("source", result.source)
        return result

    def _read_file(
        self, path: str, version: Optional[int] = None
    ) -> Generator:
        trace = OpTrace("read")
        start = self.engine.now
        index = yield from self._op(trace, "stat", self._stat_work(path))
        if index is None:
            self.last_trace = trace
            raise FileNotFoundOLFSError(f"{path!r}: no such file")
        entry = index.current if version is None else index.version(version)
        first_byte = None
        used_forepart = False
        if (
            index.forepart
            and version is None
            and self._needs_mechanical_fetch(entry)
        ):
            # §4.8: answer the first bytes from the index file right away.
            used_forepart = True
            from repro.olfs.forepart import FOREPART_RESPONSE_SECONDS

            first_byte = (
                self.engine.now - start
            ) + FOREPART_RESPONSE_SECONDS

        def do_read() -> Generator:
            parts = []
            for image_id in entry.locations:
                result = yield from self.fetcher.fetch_file(image_id, path)
                parts.append(result)
            return parts

        timeout = self.config.client_read_timeout
        if timeout is not None and not used_forepart:
            # §4.8: an impatient client gives up if the fetch outlasts its
            # deadline; the fetch keeps running in the background (and
            # warms the cache), but this call errors out.
            from repro.errors import TimeoutOLFSError
            from repro.sim.engine import FirstOf, Spawn

            def deadline() -> Generator:
                yield Delay(timeout)
                return None

            def race() -> Generator:
                fetch_process = yield Spawn(do_read(), name="client-fetch")
                timer_process = yield Spawn(deadline(), name="client-timer")
                index, value = yield FirstOf([fetch_process, timer_process])
                if index == 1:
                    raise TimeoutOLFSError(
                        f"read of {path!r} exceeded the client's "
                        f"{timeout:.0f} s deadline"
                    )
                return value

            try:
                parts = yield from self._op(trace, "read", race())
            except TimeoutOLFSError:
                self.last_trace = trace
                raise
        else:
            parts = yield from self._op(trace, "read", do_read())
        if first_byte is None:
            first_byte = self.engine.now - start
        yield from self._op(trace, "close", self._noop())
        self.last_trace = trace
        data = b"".join(part.data for part in parts)
        return ReadResult(
            data=data,
            source=parts[-1].source if parts else "none",
            first_byte_seconds=first_byte,
            total_seconds=self.engine.now - start,
            used_forepart=used_forepart,
        )

    def _needs_mechanical_fetch(self, entry: VersionEntry) -> bool:
        from repro.olfs.images import BURNED

        for image_id in entry.locations:
            record = self.fetcher.dim.records.get(image_id)
            if record is None:
                continue
            if record.state == BURNED and record.image is None:
                if record.image_id not in self.fetcher.cache:
                    in_drive = any(
                        ds.find_disc(record.disc_id) is not None
                        for ds in self.fetcher.mc.mech.drive_sets
                    )
                    if not in_drive:
                        return True
        return False

    def _noop(self) -> Generator:
        yield Delay(0.0)

    def stat(self, path: str) -> Generator:
        """getattr: size/mtime/versions from the index file."""
        with self.engine.trace.span("posix.stat", "posix", {"path": path}):
            result = yield from self._stat(path)
        return result

    def _stat(self, path: str) -> Generator:
        trace = OpTrace("stat")
        index = yield from self._op(trace, "stat", self._stat_work(path))
        self.last_trace = trace
        if index is None:
            kind = yield from self.mv.entry_kind(path)
            if kind == "dir":
                return {"type": "dir"}
            raise FileNotFoundOLFSError(f"{path!r}: no such entry")
        entry = index.current
        return {
            "type": "file",
            "size": entry.size,
            "mtime": entry.mtime,
            "version": entry.version,
            "versions": index.versions(),
            "locations": list(entry.locations),
        }

    def mkdir(self, path: str) -> Generator:
        with self.engine.trace.span("posix.mkdir", "posix", {"path": path}):
            trace = OpTrace("mkdir")
            kind = yield from self.mv.entry_kind(path)
            if kind is not None:
                raise FileExistsOLFSError(f"{path!r} exists")
            yield from self._op(
                trace, "mkdir", self.mv.make_dir(path, self.engine.now)
            )
            self.last_trace = trace

    def readdir(self, path: str) -> Generator:
        with self.engine.trace.span("posix.readdir", "posix", {"path": path}):
            trace = OpTrace("readdir")
            names = yield from self._op(
                trace, "readdir", self.mv.listdir(path)
            )
            self.last_trace = trace
        return names

    def unlink(self, path: str) -> Generator:
        """Remove from the global namespace.  Data already burned stays on
        its discs (WORM); OLFS remains a traceable file system (§4.6)."""
        with self.engine.trace.span("posix.unlink", "posix", {"path": path}):
            trace = OpTrace("unlink")
            yield from self._op(trace, "unlink", self.mv.remove_index(path))
            self.last_trace = trace

    def versions(self, path: str) -> Generator:
        index = yield from self.mv.lookup_index(path)
        return index.versions()
