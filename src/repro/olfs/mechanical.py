"""The Mechanical Controller (MC): drive-set arbitration and the DAindex.

"MC not only communicates with PLC, but also schedules disc burning and
fetching tasks to optimize the usage of mechanical resources" (§4.1).

Responsibilities here:

* **DAindex** (§4.1) — every tray/disc-array is Empty, Used or Failed;
* **drive-set locks** — one burn or fetch owns a set at a time; urgent
  fetches (priority 0) queue ahead of background burns (priority 10);
* **the busy-drive read policy** (§4.8) — when every drive set is burning,
  either wait for the burn or interrupt it (appending-burn mode);
* the mapping from burned image IDs to tray addresses so fetches know
  which array to load.
"""

from __future__ import annotations

import enum
from typing import Generator, Optional, TYPE_CHECKING

from repro.drives.drive import OpticalDrive
from repro.drives.drive_set import DriveSet
from repro.errors import MechanicsError
from repro.mechanics.geometry import TrayAddress
from repro.mechanics.library import MechanicalSubsystem
from repro.olfs.config import OLFSConfig
from repro.sim.engine import Acquire, Engine
from repro.sim.resources import Grant, Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.olfs.burning import BurnTask

#: Queue priorities on drive-set locks.
PRIORITY_FETCH = 0
PRIORITY_BURN = 10


class ArrayState(enum.Enum):
    EMPTY = "Empty"
    USED = "Used"
    FAILED = "Failed"


class MechanicalController:
    """Owns drive-set access and the disc-array bookkeeping."""

    def __init__(
        self,
        engine: Engine,
        mech: MechanicalSubsystem,
        config: OLFSConfig,
    ):
        self.engine = engine
        self.mech = mech
        self.config = config
        self.da_index: dict[tuple[int, TrayAddress], ArrayState] = {}
        #: tray -> image ids burned there (in drive order)
        self.array_images: dict[tuple[int, TrayAddress], list[str]] = {}
        self._locks: dict[int, Resource] = {
            drive_set.set_id: Resource(
                engine, 1, name=f"drive-set-{drive_set.set_id}"
            )
            for drive_set in mech.drive_sets
        }
        #: burn task currently holding each set (for the interrupt policy)
        self.burn_task_of_set: dict[int, "BurnTask"] = {}
        self._blank_cursor: dict[int, int] = {
            roller.roller_id: 0 for roller in mech.rollers
        }
        from repro.sim.rng import DeterministicRNG

        self._rng = DeterministicRNG(0xA11C).child("tray-allocation")
        for roller in mech.rollers:
            for address in mech.geometry.addresses():
                self.da_index[(roller.roller_id, address)] = ArrayState.EMPTY

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Cheap read-only snapshot for the system monitor."""
        return {
            "da_index": self.counts(),
            "set_locks": [
                {
                    "set_id": set_id,
                    "available": lock.available,
                    "queue_length": lock.queue_length,
                    "burning_task": (
                        self.burn_task_of_set[set_id].task_id
                        if set_id in self.burn_task_of_set
                        else None
                    ),
                }
                for set_id, lock in sorted(self._locks.items())
            ],
            "arrays_mapped": len(self.array_images),
        }

    # ------------------------------------------------------------------
    # DAindex
    # ------------------------------------------------------------------
    def state_of(self, roller: int, address: TrayAddress) -> ArrayState:
        return self.da_index[(roller, address)]

    def set_state(
        self, roller: int, address: TrayAddress, state: ArrayState
    ) -> None:
        self.da_index[(roller, address)] = state

    def counts(self) -> dict[str, int]:
        summary = {state.value: 0 for state in ArrayState}
        for state in self.da_index.values():
            summary[state.value] += 1
        return summary

    def find_blank_tray(
        self, roller_index: Optional[int] = None
    ) -> tuple[int, TrayAddress]:
        """Next Empty tray full of blank discs.

        The allocation policy (``config.tray_allocation``) decides which
        blank tray: ``sequential`` fills top-down (fast while the top
        layers last), ``nearest`` minimizes arm travel from its current
        layer, ``random`` spreads wear uniformly.
        """
        rollers = (
            [self.mech.rollers[roller_index]]
            if roller_index is not None
            else self.mech.rollers
        )
        policy = self.config.tray_allocation
        for roller in rollers:
            blanks = self._blank_trays_of(roller)
            if not blanks:
                continue
            if policy == "nearest":
                arm_layer = self.mech.arms[roller.roller_id].layer
                blanks.sort(
                    key=lambda address: (
                        abs(address.layer - arm_layer),
                        address.layer,
                        address.slot,
                    )
                )
                return roller.roller_id, blanks[0]
            if policy == "random":
                choice = self._rng.choice(blanks)
                return roller.roller_id, choice
            # sequential: resume from the cursor.
            addresses = list(self.mech.geometry.addresses())
            start = self._blank_cursor[roller.roller_id]
            blank_set = set(blanks)
            for offset in range(len(addresses)):
                address = addresses[(start + offset) % len(addresses)]
                if address in blank_set:
                    self._blank_cursor[roller.roller_id] = (
                        start + offset
                    ) % len(addresses)
                    return roller.roller_id, address
        raise MechanicsError("no blank disc arrays left")

    def _blank_trays_of(self, roller) -> list[TrayAddress]:
        blanks = []
        for address in self.mech.geometry.addresses():
            if self.da_index[(roller.roller_id, address)] is not ArrayState.EMPTY:
                continue
            tray = roller.tray_at(address)
            if tray.checked_out or not tray.is_full:
                continue
            if all(disc.is_blank for disc in tray.discs()):
                blanks.append(address)
        return blanks

    def locate_image_array(
        self, image_id: str
    ) -> Optional[tuple[int, TrayAddress]]:
        for key, images in self.array_images.items():
            if image_id in images:
                return key
        return None

    # ------------------------------------------------------------------
    # Drive-set locks
    # ------------------------------------------------------------------
    def lock_of(self, set_id: int) -> Resource:
        return self._locks[set_id]

    def acquire_set(self, set_id: int, priority: int) -> Generator:
        with self.engine.trace.span(
            "mc.acquire_set", "mc", {"set_id": set_id, "priority": priority}
        ):
            grant = yield Acquire(self._locks[set_id], priority)
        return grant

    def pick_set_for_burn(self, roller_index: int) -> int:
        """Preferred set for a background burn: empty and unlocked first,
        then unlocked, then least-contended."""
        candidates = self.mech.sets_of_roller(roller_index)
        for drive_set in candidates:
            lock = self._locks[drive_set.set_id]
            if drive_set.is_empty and lock.available and not lock.queue_length:
                return drive_set.set_id
        for drive_set in candidates:
            lock = self._locks[drive_set.set_id]
            if lock.available and not lock.queue_length:
                return drive_set.set_id
        return min(
            candidates, key=lambda s: self._locks[s.set_id].queue_length
        ).set_id

    # ------------------------------------------------------------------
    # Fetch path (§4.8 read policies)
    # ------------------------------------------------------------------
    def ensure_disc_in_drive(
        self, disc_id: str, priority: int = PRIORITY_FETCH
    ) -> Generator:
        """Make ``disc_id`` readable in some drive; returns
        ``(drive, set_id, grant)`` with the set lock held by the caller."""
        with self.engine.trace.span(
            "mc.ensure_disc_in_drive", "mc", {"disc_id": disc_id}
        ) as span:
            result = yield from self._ensure_disc_in_drive(
                disc_id, priority, span
            )
        return result

    def _ensure_disc_in_drive(
        self, disc_id: str, priority: int, span
    ) -> Generator:
        # Already sitting in a drive set?
        for drive_set in self.mech.drive_sets:
            if drive_set.find_disc(disc_id) is not None:
                grant = yield from self.acquire_set(drive_set.set_id, priority)
                drive = drive_set.find_disc(disc_id)
                if drive is not None:
                    span.tag("already_in_drive", True)
                    return drive, drive_set.set_id, grant
                grant.release()  # moved away while we queued; fall through
                break
        located = self.mech.locate_disc(disc_id)
        if located is None:
            raise MechanicsError(f"disc {disc_id} is nowhere in the library")
        roller_index, address = located
        set_id = self._choose_fetch_set(roller_index)
        span.tag("set_id", set_id)
        grant = yield from self.acquire_set(set_id, priority)
        try:
            drive_set = self.mech.drive_sets[set_id]
            # The disc may have arrived while we waited.
            drive = drive_set.find_disc(disc_id)
            if drive is not None:
                return drive, set_id, grant
            if not drive_set.is_empty:
                yield from self.mech.unload_array(set_id, priority=priority)
            yield from self.mech.load_array(set_id, address, priority=priority)
            drive = drive_set.find_disc(disc_id)
            if drive is None:
                raise MechanicsError(
                    f"disc {disc_id} missing after loading tray {address}"
                )
            return drive, set_id, grant
        except BaseException:
            grant.release()
            raise

    def _choose_fetch_set(self, roller_index: int) -> int:
        """Pick the drive set a fetch should use, honouring the §4.8
        busy-drive policy."""
        candidates = self.mech.sets_of_roller(roller_index)
        # 1. A free (unlocked) empty set.
        for drive_set in candidates:
            lock = self._locks[drive_set.set_id]
            if drive_set.is_empty and lock.available and not lock.queue_length:
                return drive_set.set_id
        # 2. A free set with idle discs (costs an unload first).
        for drive_set in candidates:
            lock = self._locks[drive_set.set_id]
            if lock.available and not lock.queue_length:
                return drive_set.set_id
        # 3. Every set is busy.  Interrupt policy: stop one burn now.
        if self.config.busy_drive_policy == "interrupt":
            for drive_set in candidates:
                task = self.burn_task_of_set.get(drive_set.set_id)
                if task is not None and task.state == "burning":
                    task.request_interrupt()
                    return drive_set.set_id
        # Wait policy (or nothing interruptible): queue on the set with
        # the shortest line; priority puts fetches ahead of new burns.
        return min(
            candidates, key=lambda s: self._locks[s.set_id].queue_length
        ).set_id
