"""Client sessions: one protocol connection issuing ops through the link.

A :class:`ClientSession` models one SMB/NFS/REST connection (Figure 5):
each operation crosses the :class:`~repro.serve.network.NetworkLink`,
queues at the :class:`~repro.serve.tenancy.AdmissionController`, executes
against a backend (a single :class:`~repro.olfs.filesystem.OLFS` rack or
a :class:`~repro.cluster.RackCluster` with failover), and returns over
the link.  The client-perceived latency — queueing included — lands in a
per-tenant histogram that the serve report turns into p50/p95/p99.

Sessions poll ``engine.faults`` at the ``client.session`` site before
each op, so an armed ``client.disconnect`` one-shot turns the next op
into :class:`~repro.errors.SessionDisconnectedError` and marks the
session dead (its fleet loop stops issuing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import (
    AdmissionTimeoutError,
    LinkDownError,
    ROSError,
    SessionDisconnectedError,
)
from repro.serve.network import NetworkLink
from repro.serve.tenancy import AdmissionController
from repro.sim.tracing import MetricsRegistry

#: site key sessions poll on ``engine.faults``
SITE_CLIENT_SESSION = "client.session"

#: wire size of a request/response that carries no payload (headers)
HEADER_BYTES = 256.0

#: latency histogram bounds (seconds) for the percentile report
LATENCY_BOUNDS = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
)

#: terminal statuses an operation can end in
STATUSES = (
    "ok", "rejected", "timeout", "failed", "disconnected", "link_down",
)


@dataclass(frozen=True)
class ServeOp:
    """One client-visible operation and its wire footprint.

    ``nbytes`` is the *declared* (logical) payload size — what crosses
    the network and what admission charges — independent of the capped
    in-simulation payload bytes.
    """

    kind: str  # "write" | "read" | "stat"
    path: str
    nbytes: float
    data: bytes = b""
    logical_size: Optional[int] = None

    def __post_init__(self):
        if self.kind not in ("write", "read", "stat"):
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


@dataclass
class OpOutcome:
    """How one operation ended, as the client saw it."""

    op: str
    path: str
    tenant: str
    session: str
    status: str
    latency_s: float
    nbytes: float


class OLFSBackend:
    """Execute ops against one rack's POSIX interface."""

    def __init__(self, ros):
        self.ros = ros

    def execute(self, op: ServeOp) -> Generator:
        if op.kind == "write":
            yield from self.ros.pi.write_file(
                op.path, op.data, op.logical_size
            )
        elif op.kind == "read":
            yield from self.ros.pi.read_file(op.path)
        else:
            yield from self.ros.pi.stat(op.path)


class ClusterBackend:
    """Execute ops against a RackCluster with read failover."""

    def __init__(self, cluster):
        self.cluster = cluster

    def execute(self, op: ServeOp) -> Generator:
        if op.kind == "write":
            yield from self.cluster.write_process(
                op.path, op.data, op.logical_size
            )
        elif op.kind == "read":
            yield from self.cluster.read_process(op.path)
        else:
            yield from self.cluster.stat_process(op.path)


class ClientSession:
    """One client connection belonging to one tenant."""

    def __init__(
        self,
        engine,
        session_id: str,
        tenant: str,
        link: NetworkLink,
        admission: AdmissionController,
        backend,
        metrics: MetricsRegistry,
        sticky_disconnect: bool = True,
    ):
        self.engine = engine
        self.session_id = session_id
        self.tenant = tenant
        self.link = link
        self.admission = admission
        self.backend = backend
        self.metrics = metrics
        self.disconnected = False
        #: a pooled session aggregates many virtual clients: a
        #: ``client.disconnect`` then drops ONE virtual client (recorded
        #: and raised per op) instead of killing the whole pool.
        self.sticky_disconnect = sticky_disconnect
        self.outcomes: dict[str, int] = {status: 0 for status in STATUSES}
        # Per-op metric instruments, resolved once: _finish used to pay
        # an f-string plus a registry get-or-create per operation, which
        # is real money at pooled-fleet op rates (registry entries are
        # shared per tenant, so pre-creating them changes no output).
        self._status_counters = {
            status: metrics.counter(f"serve.ops.{tenant}.{status}")
            for status in STATUSES
        }
        self._latency = metrics.histogram(
            f"serve.latency_s.{tenant}", LATENCY_BOUNDS
        )
        self._bytes = metrics.counter(f"serve.bytes.{tenant}")

    # ------------------------------------------------------------------
    def perform(self, op: ServeOp) -> Generator:
        """Issue one operation end to end; returns an :class:`OpOutcome`.

        Never raises for QoS outcomes (rejection, timeout, link flap,
        backend error) — those come back as the outcome's ``status``.
        :class:`SessionDisconnectedError` *is* raised, after recording
        the outcome, so fleet loops stop the session.
        """
        start = self.engine.now
        with self.engine.trace.span(
            "serve.op", "serve",
            {"tenant": self.tenant, "op": op.kind, "path": op.path},
        ):
            if self.disconnected or self.engine.faults.check(
                SITE_CLIENT_SESSION, self.session_id
            ):
                if self.sticky_disconnect:
                    self.disconnected = True
                self._finish(op, "disconnected", start)
                raise SessionDisconnectedError(
                    f"session {self.session_id} dropped"
                )
            request_bytes = op.nbytes if op.kind == "write" else HEADER_BYTES
            response_bytes = op.nbytes if op.kind == "read" else HEADER_BYTES
            admission_bytes = (
                op.nbytes if op.kind in ("write", "read") else HEADER_BYTES
            )
            try:
                yield from self.link.request(request_bytes)
            except LinkDownError:
                return self._finish(op, "link_down", start)
            try:
                grant = yield from self.admission.admit(
                    self.tenant, admission_bytes
                )
            except AdmissionTimeoutError:
                return self._finish(op, "timeout", start)
            except ROSError:
                return self._finish(op, "rejected", start)
            try:
                yield from self.backend.execute(op)
            except ROSError:
                return self._finish(op, "failed", start)
            finally:
                grant.release()
            try:
                yield from self.link.respond(response_bytes)
            except LinkDownError:
                return self._finish(op, "link_down", start)
            return self._finish(op, "ok", start)

    # ------------------------------------------------------------------
    def _finish(self, op: ServeOp, status: str, start: float) -> OpOutcome:
        elapsed = self.engine.now - start
        self.outcomes[status] += 1
        self._status_counters[status].inc()
        if status == "ok":
            self._latency.observe(elapsed)
            self._bytes.inc(op.nbytes)
        return OpOutcome(
            op=op.kind,
            path=op.path,
            tenant=self.tenant,
            session=self.session_id,
            status=status,
            latency_s=elapsed,
            nbytes=op.nbytes,
        )
