"""XL serving campaign: many racks on the sharded event loop.

``run_serve_xl(seed, ...)`` scales the serving story past what one
engine heap comfortably holds: a row of :class:`~repro.fleet.rack.
ShardRack` racks, each with its own client population, driven at 10-100x
the request volume of ``repro serve`` on a
:class:`~repro.sim.shard.ShardedEngine`.  Each rack is one *group* —
its rack, its vectorized load driver, its outage process and its
:class:`~repro.sim.tracing.MetricsRegistry` all live on that group's
engine and share mutable state with nothing else.  Cross-rack reads and
writes (an object *homes* on the rack that rendezvous-ranks first for
its path — :func:`~repro.fleet.store.home_rack`) travel as
:meth:`~repro.sim.shard.ShardedEngine.call` round trips, paying the
``lookahead`` WAN floor each way.

Determinism contract: the report is a pure function of the arguments
and is byte-identical **for every shard count** — groups are the unit
of isolation, so co-locating them on one shard (``shards=1``) or
spreading them over four changes wall-clock only.  The chaos-replay
acceptance gate byte-compares exactly this.

Per-group registries, not one shared one: histogram totals are float
sums and float addition is order-sensitive, so groups must not
interleave writes into shared instruments.  Each group owns a registry
and the report merges them in fixed group order.

Load is vectorized end to end: arrival gaps, op-mix rolls, locality
rolls and catalog picks are batch-drawn per epoch from dedicated child
streams (the same scalar↔batch stream equivalence the serve-layer
:class:`~repro.serve.loadgen.ClientPool` leans on), so a campaign of
tens of thousands of arrivals pays O(epochs) of RNG dispatch.
"""

from __future__ import annotations

import json
from typing import Generator

from repro import units
from repro.errors import ROSError
from repro.fleet.rack import ShardRack
from repro.fleet.store import home_rack, shard_layout
from repro.serve.session import LATENCY_BOUNDS
from repro.sim.engine import Delay, Spawn
from repro.sim.rng import DeterministicRNG
from repro.sim.shard import ShardedEngine
from repro.sim.tracing import MetricsRegistry

#: minimum cross-rack delivery latency — the WAN RTT floor and the
#: sharded engine's lookahead window
LOOKAHEAD_S = 0.02

#: in-simulation shard payload (wire sizes are the logical truth)
PAYLOAD = b"\xA5" * 4096

#: vectorized draw batch per load driver
EPOCH = 1024


class _RackNode:
    """Everything one group owns: rack, metrics, per-status counters."""

    def __init__(self, sharded: ShardedEngine, group: str):
        self.group = group
        self.engine = sharded.engine_for(group)
        self.rack = ShardRack(
            self.engine, group, site=group,
            lane_bytes_s=400 * units.MB,
        )
        self.metrics = MetricsRegistry()
        self.ok = self.metrics.counter(f"xl.ops.{group}.ok")
        self.failed = self.metrics.counter(f"xl.ops.{group}.failed")
        self.remote = self.metrics.counter(f"xl.ops.{group}.remote")
        self.latency = self.metrics.histogram(
            f"xl.latency_s.{group}", LATENCY_BOUNDS
        )
        self.bytes = self.metrics.counter(f"xl.bytes.{group}")
        self.outage = False


def run_serve_xl(
    seed: int = 42,
    racks: int = 8,
    shards: int = 1,
    duration_s: float = 100.0,
    arrival_rate: float = 40.0,
    objects_per_rack: int = 64,
    write_fraction: float = 0.2,
    locality: float = 0.85,
    fault_rate: float = 0.25,
    lookahead_s: float = LOOKAHEAD_S,
) -> dict:
    """One XL serving campaign; returns the deterministic report dict.

    ``arrival_rate`` is per rack (ops/s), so the default scenario offers
    ``racks * arrival_rate * duration_s = 32,000`` ops — roughly 13x the
    ``repro serve`` scenario's volume.  ``shards`` picks the event-loop
    layout and **must not** change the report (pinned by tests and the
    chaos-replay gate); ``locality`` is the probability a client touches
    an object homed on its own rack rather than a uniformly random one.
    """
    groups = [f"rack{i:02d}" for i in range(int(racks))]
    sharded = ShardedEngine(groups, shards=shards, lookahead=lookahead_s)
    layout = shard_layout(groups, shards)
    nodes = {group: _RackNode(sharded, group) for group in groups}
    root = DeterministicRNG(seed).child("serve-xl")

    # -- catalog: every object homes on its rendezvous-rank-1 rack -----
    size_rng = root.child("catalog")
    catalog: list[tuple[str, str, float]] = []  # (path, home, wire)
    local_paths: dict[str, list[tuple[str, str, float]]] = {
        group: [] for group in groups
    }
    for index in range(int(racks) * int(objects_per_rack)):
        path = f"xl/obj-{index:05d}"
        home = home_rack(path, groups)
        wire = min(64 * units.MB, size_rng.lognormal(14.0, 1.2))
        entry = (path, home, wire)
        catalog.append(entry)
        local_paths[home].append(entry)
        nodes[home].rack.preload(path, 0, PAYLOAD, wire)

    # -- one seeded outage window per unlucky rack ---------------------
    fault_rng = root.child("faults")
    outages: dict[str, tuple[float, float]] = {}
    for group in groups:
        roll = fault_rng.uniform()
        start = fault_rng.uniform(0.3, 0.6) * duration_s
        width = fault_rng.uniform(0.05, 0.15) * duration_s
        if roll < fault_rate:
            outages[group] = (start, width)
            nodes[group].outage = True

    def outage_proc(node: _RackNode, start: float, width: float) -> Generator:
        yield Delay(start)
        node.rack.fail()
        yield Delay(width)
        node.rack.restore()

    # -- one vectorized load driver per rack ---------------------------
    def one_op(
        node: _RackNode, path: str, home: str, wire: float, write: bool
    ) -> Generator:
        engine = node.engine
        start = engine.now
        remote = home != node.group
        try:
            if remote:
                node.remote.inc()
                target = nodes[home].rack
                if write:
                    yield from sharded.call(
                        node.group, home,
                        lambda: target.store(path, 0, PAYLOAD, wire),
                    )
                else:
                    yield from sharded.call(
                        node.group, home,
                        lambda: target.fetch(path, 0),
                    )
            elif write:
                yield from node.rack.store(path, 0, PAYLOAD, wire)
            else:
                yield from node.rack.fetch(path, 0)
        except ROSError:
            node.failed.inc()
        else:
            node.ok.inc()
            node.latency.observe(engine.now - start)
            node.bytes.inc(wire)

    def driver(node: _RackNode) -> Generator:
        engine = node.engine
        mean_gap = 1.0 / arrival_rate
        gap_rng = root.child(f"gaps-{node.group}")
        roll_rng = root.child(f"rolls-{node.group}")
        loc_rng = root.child(f"locality-{node.group}")
        pick_rng = root.child(f"picks-{node.group}")
        mine = local_paths[node.group]
        count = 0
        done = False
        while not done:
            gaps = gap_rng.exponential_array(mean_gap, EPOCH)
            rolls = roll_rng.uniform_array(EPOCH)
            locs = loc_rng.uniform_array(EPOCH)
            picks = pick_rng.uniform_array(EPOCH)
            for index in range(EPOCH):
                gap = float(gaps[index])
                if engine.now + gap >= duration_s:
                    done = True
                    break
                yield Delay(gap)
                pool = mine if (mine and float(locs[index]) < locality) \
                    else catalog
                path, home, wire = pool[int(float(picks[index]) * len(pool))]
                write = float(rolls[index]) < write_fraction
                count += 1
                yield Spawn(
                    one_op(node, path, home, wire, write),
                    f"xl-op-{node.group}-{count}",
                )

    for group in groups:
        sharded.spawn(group, driver(nodes[group]), name=f"xl-load-{group}")
        if group in outages:
            start, width = outages[group]
            sharded.spawn(
                group, outage_proc(nodes[group], start, width),
                name=f"xl-fault-{group}",
            )
    sharded.run()

    # -- merge per-group registries in fixed group order ---------------
    rack_entries = {}
    for group in groups:
        node = nodes[group]
        ok = int(node.ok.value)
        failed = int(node.failed.value)
        histogram = node.latency
        rack_entries[group] = {
            "ops": ok + failed,
            "ok": ok,
            "failed": failed,
            "remote": int(node.remote.value),
            "ok_bytes": round(node.bytes.value, 3),
            "p50_s": round(histogram.quantile(0.50), 6),
            "p95_s": round(histogram.quantile(0.95), 6),
            "p99_s": round(histogram.quantile(0.99), 6),
            "objects": len(local_paths[group]),
            "outage": node.outage,
            "rack": node.rack.health(),
        }
    report = {
        "seed": seed,
        "racks": rack_entries,
        "totals": {
            "ops": sum(e["ops"] for e in rack_entries.values()),
            "ok": sum(e["ok"] for e in rack_entries.values()),
            "failed": sum(e["failed"] for e in rack_entries.values()),
            "remote": sum(e["remote"] for e in rack_entries.values()),
            "ok_bytes": round(
                sum(e["ok_bytes"] for e in rack_entries.values()), 3
            ),
        },
        "duration_s": round(duration_s, 6),
        "final_time": round(sharded.now, 9),
        "lookahead_s": lookahead_s,
        "objects": len(catalog),
        # layout-invariant: every seq draw is action-driven, and actions
        # are identical for any group->shard pinning
        "events_issued": sharded.events_issued,
    }
    # NOT in the report: the shard count.  The whole point is that the
    # report bytes do not depend on it.
    assert layout == {
        g: sharded.shard_of(g) for g in groups
    }, "routing table disagrees with engine pinning"
    return report


def report_to_json(report: dict) -> str:
    """Canonical byte form — what shard-layout comparisons compare."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))
