"""The rack's serving NIC: a shared full-duplex 10GbE link.

§3.3 sizes the rack frontend to "provide more than 1 GB/s external
throughput"; Figure 5 puts every client protocol (SMB / NFS / REST) on one
10GbE port.  :class:`NetworkLink` models that port as two
:class:`~repro.sim.bandwidth.SharedBandwidth` lanes (ingress and egress —
full duplex means the directions do not contend with each other) at the
raw NIC rate, and folds the Figure-6 protocol-stack costs on top:

* the stack's fixed per-op overhead (SMB negotiation + FUSE switch,
  :meth:`~repro.frontend.stack.FilesystemStack.per_op_seconds`) is paid
  once per request;
* the *surplus* per-byte cost of the stack over the raw wire — the gap
  between the NIC's byte time and the stack's sustained byte time — is
  paid serially after each transfer, so a single stream tops out at the
  Figure-6 sustained rate while the wire itself saturates only under
  concurrency.

Sessions add their configured round-trip latency (half on each
direction).  The link consults ``engine.faults`` at the ``net.link`` site
on every crossing, so an armed ``net.link_flap`` window turns transfers
into :class:`~repro.errors.LinkDownError` until it closes.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import LinkDownError
from repro.frontend.layers import NETWORK_10GBE
from repro.frontend.stack import make_stack
from repro.sim.bandwidth import SharedBandwidth
from repro.sim.engine import Delay, Engine

#: site key the link polls on ``engine.faults``
SITE_NET_LINK = "net.link"

#: default client round-trip time (datacenter-local: ~200 microseconds)
DEFAULT_RTT_SECONDS = 200e-6


class NetworkLink:
    """One 10GbE full-duplex serving link shared by every session."""

    def __init__(
        self,
        engine: Engine,
        capacity: float = NETWORK_10GBE.write_rate_cap,
        stack_name: str = "samba+OLFS",
        rtt_seconds: float = DEFAULT_RTT_SECONDS,
    ):
        if capacity <= 0:
            raise ValueError("link capacity must be positive")
        if rtt_seconds < 0:
            raise ValueError("rtt must be non-negative")
        self.engine = engine
        self.capacity = float(capacity)
        self.rtt_seconds = float(rtt_seconds)
        self.stack = make_stack(stack_name)
        self.ingress = SharedBandwidth(engine, capacity, name="10gbe-in")
        self.egress = SharedBandwidth(engine, capacity, name="10gbe-out")
        wire_spb = 1.0 / self.capacity
        #: per-byte stack surplus over the raw wire, write path (ingress)
        self.write_extra_spb = max(
            0.0, 1.0 / self.stack.write_throughput() - wire_spb
        )
        #: per-byte stack surplus over the raw wire, read path (egress)
        self.read_extra_spb = max(
            0.0, self.stack.read_seconds_per_byte() - wire_spb
        )
        #: fixed SMB/FUSE metadata cost per client-visible op
        self.per_op_seconds = self.stack.per_op_seconds()
        self.requests = 0
        self.responses = 0
        self.drops = 0

    # ------------------------------------------------------------------
    def _check(self) -> None:
        spec = self.engine.faults.check(SITE_NET_LINK)
        if spec is not None:
            self.drops += 1
            raise LinkDownError(
                f"10GbE link down at t={self.engine.now:.3f}"
            )

    def request(self, nbytes: float, weight: float = 1.0) -> Generator:
        """Client -> rack crossing: half RTT, per-op cost, ingress bytes."""
        self._check()
        self.requests += 1
        yield Delay(self.rtt_seconds / 2 + self.per_op_seconds)
        yield from self.ingress.transfer(max(1.0, float(nbytes)), weight)
        if nbytes > 0 and self.write_extra_spb:
            yield Delay(self.write_extra_spb * nbytes)

    def respond(self, nbytes: float, weight: float = 1.0) -> Generator:
        """Rack -> client crossing: egress bytes, then the last half RTT."""
        self._check()
        self.responses += 1
        yield from self.egress.transfer(max(1.0, float(nbytes)), weight)
        if nbytes > 0 and self.read_extra_spb:
            yield Delay(self.read_extra_spb * nbytes)
        yield Delay(self.rtt_seconds / 2)

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Read-only snapshot (no settlement side effects)."""
        return {
            "capacity_bps": self.capacity,
            "bytes_in": self.ingress.bytes_moved,
            "bytes_out": self.egress.bytes_moved,
            "flows_in": self.ingress.active_flows,
            "flows_out": self.egress.active_flows,
            "requests": self.requests,
            "responses": self.responses,
            "drops": self.drops,
        }
