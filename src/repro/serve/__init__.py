"""Multi-tenant serving subsystem (§2.3, §4.2, Figure 5).

The paper's rack exports Samba/NFS/REST over a 10GbE NIC; this package
models what happens when *many* concurrent clients share that NIC and the
rack's drive pool:

* :mod:`repro.serve.network` — a full-duplex 10GbE link built on
  :class:`~repro.sim.bandwidth.SharedBandwidth`, with per-session RTT and
  the Figure-6 SMB/FUSE per-op and per-byte overheads folded in;
* :mod:`repro.serve.tenancy` — tenants with token-bucket rate limits and
  a bounded admission queue with deadline-aware start-time-fair dequeue;
* :mod:`repro.serve.session` — client sessions issuing POSIX ops through
  the link into an :class:`~repro.olfs.filesystem.OLFS` rack or a
  :class:`~repro.cluster.RackCluster`;
* :mod:`repro.serve.loadgen` / :mod:`repro.serve.report` — open-loop and
  closed-loop client fleets plus per-tenant throughput / p50-p95-p99
  latency reports (``python -m repro serve``).

Everything is seed-deterministic: the same seed produces byte-identical
reports, and the serving layer draws no randomness unless enabled.
"""

from repro.serve.loadgen import FleetSpec, default_fleets, run_serve
from repro.serve.xl import run_serve_xl
from repro.serve.network import NetworkLink
from repro.serve.report import render_text, report_to_json
from repro.serve.session import ClientSession, ClusterBackend, OLFSBackend, ServeOp
from repro.serve.tenancy import AdmissionController, TenantSpec, TokenBucket

__all__ = [
    "AdmissionController",
    "ClientSession",
    "ClusterBackend",
    "FleetSpec",
    "NetworkLink",
    "OLFSBackend",
    "ServeOp",
    "TenantSpec",
    "TokenBucket",
    "default_fleets",
    "render_text",
    "report_to_json",
    "run_serve",
    "run_serve_xl",
]
