"""Client fleets: open- and closed-loop load against a serving rack.

``run_serve(seed, ...)`` is the whole experiment in one call: build a
scaled-for-tests rack (or a two-rack replicated cluster), pre-populate
it from :class:`~repro.workloads.generator.ArchivalWorkloadGenerator`
streams, attach the 10GbE link and the admission controller, run every
fleet's clients to the horizon, and reduce the outcome into the
deterministic report of :mod:`repro.serve.report`.

Two fleet modes (the TALICS³/LOCKSS load-model split):

* **closed-loop** — each client issues, waits for completion, thinks an
  exponential think time, repeats; concurrency is bounded by the client
  count (how interactive users behave);
* **open-loop** — arrivals are a seeded Poisson process that does *not*
  wait for completions, so offered load keeps arriving while the rack
  is slow — the regime where admission control earns its keep.

Open-loop fleets run as **arrival pools** (:class:`ClientPool`), not one
engine process per client:

* ``sessions`` pooling keeps per-virtual-client RNG streams and
  sessions but merges their next-arrival times in one heap — stream-
  exact with the historical one-process-per-client path (same draws at
  the same simulated times, so the same report), at O(1) processes per
  fleet instead of O(clients);
* ``aggregate`` pooling exploits Poisson superposition — the merge of
  ``N`` independent Poisson streams of rate ``λ/N`` is one Poisson
  stream of rate ``λ`` — to drive a whole fleet from one RNG stream and
  one pooled session with per-pool histograms.  That is what makes
  10⁵–10⁶-client fleet campaigns (:mod:`repro.fleet.campaign`) cost
  O(arrivals), not O(clients).

Everything derives from one seed; ``run_serve`` is a pure function of
its arguments and its report is byte-reproducible.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from typing import Generator, Optional

from repro import units
from repro.errors import ROSError, SessionDisconnectedError
from repro.faults.plan import FaultPlan
from repro.serve.network import NetworkLink
from repro.serve.report import build_report
from repro.serve.session import (
    ClientSession,
    ClusterBackend,
    OLFSBackend,
    ServeOp,
)
from repro.serve.tenancy import AdmissionController, TenantSpec
from repro.sim.engine import AllOf, Delay, Spawn
from repro.sim.rng import DeterministicRNG
from repro.sim.tracing import MetricsRegistry
from repro.workloads.generator import (
    SIZE_PROFILES,
    ArchivalWorkloadGenerator,
)

#: in-simulation payload cap (matches the workload generator's default)
PAYLOAD_CAP = 64 * 1024

#: ``pooling="auto"`` switches to one aggregate stream above this size
AGGREGATE_POOL_THRESHOLD = 64


def _scalar_loadgen() -> bool:
    """True when ``REPRO_SCALAR_LOADGEN=1`` forces the scalar reference path.

    The vectorized aggregate pool batch-draws its arrival gaps and op-mix
    rolls; because batch and sequential draws read the *same* numpy
    stream, the scalar path consumes identical values and produces a
    byte-identical report — this hatch exists so the equivalence stays
    independently checkable (and bisectable) forever.
    """
    return os.environ.get("REPRO_SCALAR_LOADGEN", "") not in ("", "0")


@dataclass(frozen=True)
class FleetSpec:
    """One tenant's client fleet and its traffic shape."""

    tenant: TenantSpec
    clients: int = 2
    #: "closed" (think-time loop) or "open" (Poisson arrivals)
    mode: str = "closed"
    #: closed-loop mean think time between ops (seconds)
    think_s: float = 0.5
    #: open-loop arrival rate for the whole fleet (ops/second)
    arrival_rate: float = 2.0
    #: fraction of ops that are reads (small extra slice become stats)
    read_fraction: float = 0.7
    #: size profile for writes (see workloads.generator.SIZE_PROFILES)
    profile: str = "mixed"
    max_file_bytes: int = 8 * units.MB
    #: open-loop arrival pooling: "auto" picks "sessions" (stream-exact
    #: per-client draws, heap-merged) for small fleets and "aggregate"
    #: (one superposed Poisson stream, one pooled session) above
    #: :data:`AGGREGATE_POOL_THRESHOLD` clients; "legacy" forces the
    #: historical one-process-per-client path (the equivalence oracle)
    pooling: str = "auto"

    def __post_init__(self):
        if self.mode not in ("closed", "open"):
            raise ValueError(f"unknown fleet mode {self.mode!r}")
        if self.clients < 1:
            raise ValueError("fleet needs at least one client")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.profile not in SIZE_PROFILES:
            raise ValueError(f"unknown profile {self.profile!r}")
        if self.pooling not in ("auto", "sessions", "aggregate", "legacy"):
            raise ValueError(f"unknown pooling {self.pooling!r}")

    def resolved_pooling(self) -> str:
        if self.pooling == "auto":
            return (
                "aggregate"
                if self.clients > AGGREGATE_POOL_THRESHOLD
                else "sessions"
            )
        return self.pooling


def default_fleets() -> list[FleetSpec]:
    """The 3-tenant QoS demo.

    ``bulk`` is unthrottled and write-heavy — it will saturate the link
    and the drive pool.  ``gold`` is rate-limited, deadline-bounded and
    heavily weighted, with an explicit p99 SLO the report checks.
    ``scavenger`` is an open-loop trickle with a tiny queue, the first
    tenant to see backpressure.
    """
    return [
        FleetSpec(
            tenant=TenantSpec("bulk", weight=1.0, max_queue=64),
            clients=3,
            mode="closed",
            think_s=0.02,
            read_fraction=0.3,
            profile="media",
            max_file_bytes=2 * units.MB,
        ),
        FleetSpec(
            tenant=TenantSpec(
                "gold",
                rate_ops=50.0,
                rate_bytes=32 * units.MB,
                weight=4.0,
                deadline_s=5.0,
                slo_p99_s=2.0,
            ),
            clients=2,
            mode="closed",
            think_s=0.1,
            read_fraction=0.8,
            profile="iot",
            max_file_bytes=256 * 1024,
        ),
        FleetSpec(
            tenant=TenantSpec(
                "scavenger",
                rate_ops=10.0,
                rate_bytes=4 * units.MB,
                burst_ops=4.0,
                weight=0.5,
                max_queue=8,
                deadline_s=2.0,
            ),
            clients=1,
            mode="open",
            arrival_rate=6.0,
            read_fraction=0.5,
            profile="iot",
            max_file_bytes=128 * 1024,
        ),
    ]


def _build_config():
    from repro import OLFSConfig

    # Unlike the chaos rig (64 KB buckets, tiny files), the serve rig
    # keeps the scaled-for-tests default bucket so multi-megabyte
    # masters don't shred into thousands of burn images per file.
    return OLFSConfig(
        data_discs_per_array=3,
        parity_discs_per_array=1,
        open_buckets=2,
        read_cache_images=2,
    ).scaled_for_tests()


def _next_op(
    fleet: FleetSpec,
    rng: DeterministicRNG,
    catalog: list[tuple[str, int]],
    session_id: str,
    counter: list[int],
) -> ServeOp:
    return _op_from_roll(
        fleet, rng.uniform(), rng, catalog, session_id, counter
    )


def _op_from_roll(
    fleet: FleetSpec,
    roll: float,
    rng: DeterministicRNG,
    catalog: list[tuple[str, int]],
    session_id: str,
    counter: list[int],
) -> ServeOp:
    """Materialize one op given a pre-drawn kind roll.

    The roll decides read/stat/write; per-op details (catalog index,
    write size, payload) still come from ``rng``.  Splitting the roll out
    lets the vectorized pool batch-draw rolls from a dedicated sub-stream
    while detail draws stay scalar — without desynchronizing the streams
    between the batch and scalar paths.
    """
    if catalog and roll < fleet.read_fraction:
        path, declared = catalog[rng.integers(0, len(catalog))]
        return ServeOp("read", path, float(declared))
    if catalog and roll < fleet.read_fraction + 0.05:
        path, _declared = catalog[rng.integers(0, len(catalog))]
        return ServeOp("stat", path, 0.0)
    mean, sigma = SIZE_PROFILES[fleet.profile]
    size = max(1, int(min(rng.lognormal(mean, sigma), fleet.max_file_bytes)))
    payload = rng.bytes(min(size, PAYLOAD_CAP))
    counter[0] += 1
    path = f"/serve/{fleet.tenant.name}/{session_id}/f{counter[0]:05d}.bin"
    return ServeOp(
        "write", path, float(size), data=payload, logical_size=size
    )


class ClientPool:
    """One engine process driving an open-loop fleet's arrivals.

    ``sessions`` mode replays the legacy per-client semantics exactly:
    each virtual client keeps its own RNG child (same labels as the old
    per-process path), its own :class:`ClientSession` and its own op
    counter; the pool merges next-arrival times in a heap and issues
    each client's next op at the instant its own process would have.
    Per-client draw order (gap₁, op₁, gap₂, …), the ``t + gap ≥ t_end``
    stop rule and the disconnect check after each spawned op are all
    preserved, so reports are byte-identical to the legacy path.

    ``aggregate`` mode drives the whole fleet from one Poisson stream at
    the fleet's summed arrival rate (superposition) through one pooled
    session with non-sticky disconnects — a ``client.disconnect`` fault
    drops one *virtual* client (one recorded ``disconnected`` outcome),
    not the pool.  Per-pool outcome counts and latency histograms land
    in the same per-tenant metrics as every other path.

    Aggregate arrivals are *vectorized*: inter-arrival gaps and op-kind
    rolls are batch-drawn ``EPOCH`` at a time from dedicated sub-streams
    (``pool-<tenant>`` → ``gaps`` / ``rolls`` / ``ops``), so a
    million-arrival fleet pays O(epochs) of RNG dispatch instead of two
    Python RNG calls per event.  Arrival *times* are still accumulated by
    the engine one ``Delay`` at a time (cumsum would round differently),
    and a batch's unused tail is simply discarded at the horizon.
    ``REPRO_SCALAR_LOADGEN=1`` switches to a draw-per-event reference
    loop over the same sub-streams; reports are byte-identical either
    way (hypothesis-pinned).
    """

    #: prune completed op processes once the in-flight list hits this
    PRUNE_AT = 512

    #: arrivals batch-drawn per epoch in vectorized aggregate mode
    EPOCH = 1024

    def __init__(
        self,
        engine,
        fleet: FleetSpec,
        rng: DeterministicRNG,
        link: NetworkLink,
        admission: AdmissionController,
        backend,
        metrics: MetricsRegistry,
        catalog: list[tuple[str, int]],
        t_end: float,
        mode: Optional[str] = None,
    ):
        if fleet.mode != "open":
            raise ValueError("ClientPool drives open-loop fleets")
        self.engine = engine
        self.fleet = fleet
        self.catalog = catalog
        self.t_end = t_end
        self.mode = mode or fleet.resolved_pooling()
        if self.mode not in ("sessions", "aggregate"):
            raise ValueError(f"unknown pool mode {self.mode!r}")
        self.sessions: list[ClientSession] = []
        self._clients: list[tuple[ClientSession, DeterministicRNG, list]] = []
        tenant = fleet.tenant.name
        if self.mode == "sessions":
            for index in range(fleet.clients):
                session_id = f"{tenant}-{index}"
                session = ClientSession(
                    engine, session_id, tenant, link, admission, backend,
                    metrics,
                )
                self.sessions.append(session)
                self._clients.append(
                    (session, rng.child(f"client-{session_id}"), [0])
                )
        else:
            session = ClientSession(
                engine, f"{tenant}-pool", tenant, link, admission,
                backend, metrics, sticky_disconnect=False,
            )
            self.sessions.append(session)
            pool_rng = rng.child(f"pool-{tenant}")
            self._gap_rng = pool_rng.child("gaps")
            self._roll_rng = pool_rng.child("rolls")
            self._clients.append((session, pool_rng.child("ops"), [0]))

    # ------------------------------------------------------------------
    def run(self) -> Generator:
        if self.mode == "sessions":
            yield from self._run_sessions()
        else:
            yield from self._run_aggregate()

    def _one_shot(
        self, session: ClientSession, op: ServeOp
    ) -> Generator:
        try:
            outcome = yield from session.perform(op)
        except SessionDisconnectedError:
            return
        if op.kind == "write" and outcome.status == "ok":
            self.catalog.append((op.path, int(op.nbytes)))

    def _spawn_op(
        self, session: ClientSession, rng: DeterministicRNG, counter: list
    ) -> Generator:
        op = _next_op(self.fleet, rng, self.catalog, session.session_id,
                      counter)
        child = yield Spawn(
            self._one_shot(session, op),
            f"op-{session.session_id}-{counter[0]}",
        )
        return child

    def _run_sessions(self) -> Generator:
        per_client_rate = self.fleet.arrival_rate / self.fleet.clients
        mean_gap = 1.0 / per_client_rate
        # Heap entries carry (arrival, index, gap, base): when the entry
        # was scheduled from the *current* instant (base == now, always
        # true for the earliest client and for 1-client pools) we delay
        # by the drawn gap itself — bit-identical arrival times to the
        # legacy per-process path, not just equal-up-to-rounding.
        heap: list[tuple[float, int, float, float]] = []
        for index, (_session, rng, _counter) in enumerate(self._clients):
            gap = rng.exponential(mean_gap)
            if self.engine.now + gap < self.t_end:
                heapq.heappush(
                    heap, (self.engine.now + gap, index, gap, self.engine.now)
                )
        spawned: list = []
        while heap:
            when, index, gap, base = heapq.heappop(heap)
            if base == self.engine.now:
                yield Delay(gap)
            elif when > self.engine.now:
                yield Delay(when - self.engine.now)
            session, rng, counter = self._clients[index]
            child = yield from self._spawn_op(session, rng, counter)
            spawned.append(child)
            if len(spawned) >= self.PRUNE_AT:
                spawned = [p for p in spawned if not p.done]
            if session.disconnected:
                continue  # this virtual client stops issuing
            gap = rng.exponential(mean_gap)
            if self.engine.now + gap >= self.t_end:
                continue
            heapq.heappush(
                heap, (self.engine.now + gap, index, gap, self.engine.now)
            )
        pending = [process for process in spawned if not process.done]
        if pending:
            yield AllOf(pending)

    def _spawn_roll(
        self,
        session: ClientSession,
        roll: float,
        rng: DeterministicRNG,
        counter: list,
    ) -> Generator:
        op = _op_from_roll(self.fleet, roll, rng, self.catalog,
                           session.session_id, counter)
        child = yield Spawn(
            self._one_shot(session, op),
            f"op-{session.session_id}-{counter[0]}",
        )
        return child

    def _run_aggregate(self) -> Generator:
        session, op_rng, counter = self._clients[0]
        mean_gap = 1.0 / self.fleet.arrival_rate
        engine = self.engine
        t_end = self.t_end
        spawned: list = []
        if _scalar_loadgen():
            # Reference path: one scalar draw per event off the same
            # sub-streams the vectorized loop batch-reads.
            while True:
                gap = self._gap_rng.exponential(mean_gap)
                if engine.now + gap >= t_end:
                    break
                yield Delay(gap)
                roll = self._roll_rng.uniform()
                child = yield from self._spawn_roll(
                    session, roll, op_rng, counter
                )
                spawned.append(child)
                if len(spawned) >= self.PRUNE_AT:
                    spawned = [p for p in spawned if not p.done]
        else:
            epoch = self.EPOCH
            exhausted = False
            while not exhausted:
                gaps = self._gap_rng.exponential_array(mean_gap, epoch)
                rolls = self._roll_rng.uniform_array(epoch)
                for index in range(epoch):
                    gap = float(gaps[index])
                    if engine.now + gap >= t_end:
                        exhausted = True
                        break
                    yield Delay(gap)
                    child = yield from self._spawn_roll(
                        session, float(rolls[index]), op_rng, counter
                    )
                    spawned.append(child)
                    if len(spawned) >= self.PRUNE_AT:
                        spawned = [p for p in spawned if not p.done]
        pending = [process for process in spawned if not process.done]
        if pending:
            yield AllOf(pending)


def run_serve(
    seed: int,
    fleets: Optional[list[FleetSpec]] = None,
    duration_s: float = 60.0,
    prepopulate: int = 18,
    backend: str = "olfs",
    faults: bool = False,
    fault_intensity: float = 1.0,
    max_inflight: int = 8,
    scrub: bool = False,
    scrub_rate_bytes: float = 4 * units.MB,
    include_events: bool = False,
    flight_out: Optional[str] = None,
) -> dict:
    """Run one serving experiment; returns the report dict.

    With ``scrub=True`` a :class:`~repro.preserve.scrubber.
    BackgroundScrubber` patrols the rack *during* the serving run,
    admitted through the same controller as the paying tenants (its own
    low-weight ``scrub`` tenant) — the QoS layer, not good manners, is
    what keeps patrol I/O out of the gold tenant's p99.

    With ``flight_out`` set a :class:`~repro.obs.recorder.FlightRecorder`
    is attached for the whole run and dumped (JSONL) to that path at the
    end; the default leaves the run and report byte-identical to an
    unrecorded build.
    """
    if backend not in ("olfs", "cluster"):
        raise ValueError(f"unknown backend {backend!r}")
    fleets = list(fleets) if fleets is not None else default_fleets()
    if not fleets:
        raise ValueError("need at least one fleet")
    rng = DeterministicRNG(seed).child("serve")

    plan = None
    if faults:
        plan = FaultPlan.randomized(
            rng.child("plan"), duration_s, intensity=fault_intensity,
            serve=True,
        )

    # -- rack(s) -------------------------------------------------------
    # Serving-sized buffer volumes: the chaos rig's 200 MB would fill in
    # seconds under a saturating write fleet and turn every outcome into
    # ENOSPC; the paper's rack fronts the drives with RAID-5 volumes.
    config = _build_config()
    rack_kwargs = dict(
        roller_count=1, buffer_volume_capacity=4 * units.GB
    )
    if backend == "cluster":
        from repro.cluster import RackCluster

        cluster = RackCluster(
            rack_count=2, replicas=1, config=config, **rack_kwargs
        )
        engine = cluster.engine
        racks = cluster.racks
        injector = None
        if plan is not None:
            from repro.faults.injector import FaultInjector

            injector = (
                FaultInjector(engine, plan, seed=seed)
                .bind(racks[0])
                .install()
            )
            injector.start()
        backend_obj = ClusterBackend(cluster)
    else:
        from repro import ROS

        ros = ROS(
            config=config,
            fault_plan=plan,
            fault_seed=seed,
            **rack_kwargs,
        )
        engine = ros.engine
        racks = [ros]
        injector = ros.fault_injector
        backend_obj = OLFSBackend(ros)

    recorder = None
    if flight_out:
        from repro.obs.recorder import FlightRecorder

        # OLFS installs its own recorder when monitoring; reuse it so
        # rack events and serve events land in one journal.
        recorder = getattr(engine, "recorder", None)
        if not isinstance(recorder, FlightRecorder):
            recorder = FlightRecorder(engine).install()

    # -- serving plumbing ----------------------------------------------
    link = NetworkLink(engine)
    tenants = [fleet.tenant for fleet in fleets]
    if scrub:
        # Appended after every fleet tenant so scrub-off runs keep their
        # exact tenant order (and byte-identical reports).
        tenants.append(
            TenantSpec(
                "scrub",
                rate_bytes=scrub_rate_bytes,
                weight=0.25,
                max_queue=4,
                deadline_s=30.0,
            )
        )
    admission = AdmissionController(
        engine,
        tenants,
        max_inflight=max_inflight,
    )
    metrics = MetricsRegistry()

    # -- pre-population ------------------------------------------------
    # Each fleet gets its own file population in its own size profile, so
    # a small-file tenant's reads are not hostage to another tenant's
    # multi-megabyte masters.
    catalogs: list[list[tuple[str, int]]] = [[] for _ in fleets]
    per_fleet = max(1, prepopulate // len(fleets))
    writer = racks[0] if backend == "olfs" else None
    for index, fleet in enumerate(fleets):
        generator = ArchivalWorkloadGenerator(
            profile=fleet.profile,
            seed=seed + index,
            root=f"/serve/{fleet.tenant.name}",
            max_file_bytes=fleet.max_file_bytes,
        )
        for spec in generator.files(per_fleet):
            try:
                if writer is not None:
                    writer.write(spec.path, spec.payload, spec.logical_size)
                else:
                    cluster.write(spec.path, spec.payload, spec.logical_size)
            except ROSError:
                continue
            catalogs[index].append((spec.path, spec.declared_size))

    scrubber = None
    if scrub:
        # Burn the pre-population to disc so the patrol has USED arrays
        # to walk, then scrub under live traffic through the admission
        # controller (budget mode two of the scrubber).
        from repro.preserve.scrubber import BackgroundScrubber

        try:
            if backend == "olfs":
                racks[0].flush()
            else:
                cluster.flush()
        except ROSError:
            pass
        racks[0].settle()
        scrubber = BackgroundScrubber(
            racks[0], admission=admission, tenant="scrub"
        )

    # -- fleets --------------------------------------------------------
    serve_start = engine.now
    t_end = serve_start + duration_s
    sessions: list[ClientSession] = []

    def closed_loop(
        session: ClientSession,
        fleet: FleetSpec,
        client_rng: DeterministicRNG,
        catalog: list[tuple[str, int]],
    ) -> Generator:
        counter = [0]
        while engine.now < t_end and not session.disconnected:
            op = _next_op(
                fleet, client_rng, catalog, session.session_id, counter
            )
            try:
                outcome = yield from session.perform(op)
            except SessionDisconnectedError:
                return
            if op.kind == "write" and outcome.status == "ok":
                catalog.append((op.path, int(op.nbytes)))
            yield Delay(client_rng.exponential(fleet.think_s))

    def one_shot(
        session: ClientSession,
        op: ServeOp,
        catalog: list[tuple[str, int]],
    ) -> Generator:
        try:
            outcome = yield from session.perform(op)
        except SessionDisconnectedError:
            return
        if op.kind == "write" and outcome.status == "ok":
            catalog.append((op.path, int(op.nbytes)))

    def open_loop(
        session: ClientSession,
        fleet: FleetSpec,
        client_rng: DeterministicRNG,
        catalog: list[tuple[str, int]],
    ) -> Generator:
        rate = fleet.arrival_rate / fleet.clients
        counter = [0]
        spawned = []
        while not session.disconnected:
            gap = client_rng.exponential(1.0 / rate)
            if engine.now + gap >= t_end:
                break
            yield Delay(gap)
            op = _next_op(
                fleet, client_rng, catalog, session.session_id, counter
            )
            child = yield Spawn(
                one_shot(session, op, catalog),
                f"op-{session.session_id}-{counter[0]}",
            )
            spawned.append(child)
        pending = [process for process in spawned if not process.done]
        if pending:
            yield AllOf(pending)

    def main() -> Generator:
        procs = []
        for index, fleet in enumerate(fleets):
            if fleet.mode == "open" and fleet.resolved_pooling() != "legacy":
                pool = ClientPool(
                    engine, fleet, rng, link, admission, backend_obj,
                    metrics, catalogs[index], t_end,
                )
                sessions.extend(pool.sessions)
                process = yield Spawn(
                    pool.run(), f"pool-{fleet.tenant.name}"
                )
                procs.append(process)
                continue
            for client in range(fleet.clients):
                session_id = f"{fleet.tenant.name}-{client}"
                session = ClientSession(
                    engine, session_id, fleet.tenant.name, link,
                    admission, backend_obj, metrics,
                )
                sessions.append(session)
                client_rng = rng.child(f"client-{session_id}")
                loop = closed_loop if fleet.mode == "closed" else open_loop
                process = yield Spawn(
                    loop(session, fleet, client_rng, catalogs[index]),
                    f"client-{session_id}",
                )
                procs.append(process)
        yield AllOf(procs)

    if scrubber is not None:
        engine.spawn(scrubber.run(t_end), name="serve-scrubber")
    engine.run_process(main(), "serve-main")
    elapsed = engine.now - serve_start
    admission.close()
    if injector is not None:
        injector.stop()
    for rack in racks:
        rack.settle()

    report = build_report(
        seed=seed,
        duration_s=elapsed,
        metrics=metrics,
        admission=admission,
        link_health=link.health(),
        backend=backend,
    )
    report["prepopulated"] = sum(len(catalog) for catalog in catalogs)
    report["faults"] = bool(faults)
    if scrubber is not None:
        report["scrub"] = scrubber.health()
    if injector is not None:
        report["fault_events"] = len(injector.log)
    report["sessions"] = {
        session.session_id: dict(sorted(session.outcomes.items()))
        for session in sorted(sessions, key=lambda s: s.session_id)
    }
    if include_events:
        # Opt-in so the default report keeps its historical byte form;
        # the perf scenarios use this for events-per-op accounting.
        report["events_issued"] = engine.events_issued
    if recorder is not None:
        recorder.dump(flight_out)
        report["flight_dump"] = flight_out
    return report
