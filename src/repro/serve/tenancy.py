"""Tenants, token-bucket rate limits, and fair-share admission control.

A :class:`TenantSpec` names a tenant and its QoS contract: optional
ops/s and bytes/s token buckets, a scheduling weight, a bounded
per-tenant admission queue, and an optional queueing deadline.  The
:class:`AdmissionController` sits between sessions and the rack:

* **backpressure** — a full tenant queue (or a closed controller)
  rejects immediately with
  :class:`~repro.errors.AdmissionRejectedError`;
* **deadlines** — requests that outlive ``deadline_s`` in the queue fail
  with :class:`~repro.errors.AdmissionTimeoutError` instead of occupying
  the drive pool after the client has given up;
* **fair share** — dispatch order is start-time fair queuing (SFQ):
  every request gets a start tag ``S = max(V, tenant's last finish)``
  and finish tag ``F = S + cost / weight``; the dispatcher always
  releases the eligible request with the smallest finish tag, so a
  tenant's share of the drive pool is proportional to its weight no
  matter how deep the other queues are;
* **rate limits** — a request is eligible only when its tenant's token
  buckets (ops and bytes) cover it; buckets refill lazily on the
  simulation clock, so admission can never exceed
  ``burst + rate x elapsed`` (the conservation property the hypothesis
  suite checks).

Every decision is journaled to the engine's flight recorder
(``serve.admit`` / ``serve.reject`` / ``serve.timeout`` /
``serve.release``), and :meth:`AdmissionController.stats` exposes the
counters the chaos harness audits for "no admitted request lost".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import AdmissionRejectedError, AdmissionTimeoutError
from repro.sim.engine import Engine, SimEvent, Wait

#: SFQ cost unit: one 64 KB bucket's worth of payload
COST_UNIT_BYTES = 65536.0


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's QoS contract."""

    name: str
    #: admitted operations per second (None = unlimited)
    rate_ops: Optional[float] = None
    #: admitted payload bytes per second (None = unlimited)
    rate_bytes: Optional[float] = None
    #: bucket depths (how much burst the contract tolerates)
    burst_ops: float = 8.0
    burst_bytes: float = 8 * COST_UNIT_BYTES
    #: SFQ weight (share of the drive pool under contention)
    weight: float = 1.0
    #: bounded admission queue depth (backpressure beyond this)
    max_queue: int = 64
    #: queueing deadline in seconds (None = wait forever)
    deadline_s: Optional[float] = None
    #: advisory p99 latency objective, surfaced in serve reports
    slo_p99_s: Optional[float] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.weight <= 0:
            raise ValueError(f"{self.name}: weight must be positive")
        if self.max_queue < 1:
            raise ValueError(f"{self.name}: max_queue must be >= 1")
        for field_name in ("rate_ops", "rate_bytes", "deadline_s"):
            value = getattr(self, field_name)
            if value is not None and value <= 0:
                raise ValueError(
                    f"{self.name}: {field_name} must be positive"
                )


class TokenBucket:
    """A token bucket refilled lazily on the simulation clock.

    ``try_take`` either debits the bucket now or reports failure;
    ``seconds_until`` tells the dispatcher exactly how long until the
    debit would succeed, so waiting is event-driven, not polled.

    Requests larger than the bucket depth are admitted on a *debt*
    model: they wait until the bucket is full, then drive it negative,
    which spaces subsequent grants at the contracted rate.  ``granted``
    accumulates every successful debit; the conservation bound the
    hypothesis suite checks is
    ``granted <= rate x elapsed + max(burst, largest single request)``
    (which reduces to ``burst + rate x elapsed`` when every request fits
    the bucket).
    """

    def __init__(self, engine: Engine, rate: float, burst: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.engine = engine
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.granted = 0.0
        self._last = engine.now

    def _refill(self) -> None:
        now = self.engine.now
        if now > self._last:
            self.tokens = min(
                self.burst, self.tokens + self.rate * (now - self._last)
            )
            self._last = now

    def try_take(self, amount: float) -> bool:
        self._refill()
        if self.tokens + 1e-12 >= min(amount, self.burst):
            self.tokens -= amount
            self.granted += amount
            return True
        return False

    def seconds_until(self, amount: float) -> float:
        """Simulated seconds until ``try_take(amount)`` would succeed."""
        self._refill()
        deficit = min(amount, self.burst) - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


class _Ticket:
    """One queued admission request."""

    __slots__ = (
        "tenant", "nbytes", "cost", "enqueued_at", "deadline",
        "start_tag", "finish_tag", "seq", "event",
    )

    def __init__(self, tenant, nbytes, cost, enqueued_at, deadline,
                 seq, event):
        self.tenant = tenant
        self.nbytes = nbytes
        self.cost = cost
        self.enqueued_at = enqueued_at
        self.deadline = deadline
        self.start_tag = 0.0
        self.finish_tag = 0.0
        self.seq = seq
        self.event = event


class AdmissionGrant:
    """Handle returned by a successful admission; release when done."""

    __slots__ = ("_controller", "_tenant", "_released")

    def __init__(self, controller: "AdmissionController", tenant: str):
        self._controller = controller
        self._tenant = tenant
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._controller._release(self._tenant)


class AdmissionController:
    """Bounded, deadline-aware, weighted-fair admission to the rack."""

    def __init__(
        self,
        engine: Engine,
        tenants: list[TenantSpec],
        max_inflight: int = 8,
    ):
        if not tenants:
            raise ValueError("need at least one tenant")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        self.engine = engine
        self.tenants = {tenant.name: tenant for tenant in tenants}
        self.max_inflight = max_inflight
        self._queues: dict[str, deque[_Ticket]] = {
            name: deque() for name in self.tenants
        }
        self._ops_buckets: dict[str, TokenBucket] = {}
        self._bytes_buckets: dict[str, TokenBucket] = {}
        for tenant in tenants:
            if tenant.rate_ops is not None:
                self._ops_buckets[tenant.name] = TokenBucket(
                    engine, tenant.rate_ops, tenant.burst_ops
                )
            if tenant.rate_bytes is not None:
                self._bytes_buckets[tenant.name] = TokenBucket(
                    engine, tenant.rate_bytes, tenant.burst_bytes
                )
        #: SFQ virtual time and per-tenant last finish tags
        self._virtual = 0.0
        self._last_finish: dict[str, float] = {
            name: 0.0 for name in self.tenants
        }
        self._seq = 0
        self._inflight = 0
        self._closed = False
        self._wake: Optional[SimEvent] = None
        self._dispatcher = engine.spawn(
            self._dispatch_loop(), name="admission-dispatcher"
        )
        #: per-tenant decision counters (chaos invariant + reports)
        self.stats: dict[str, dict[str, float]] = {
            name: {
                "submitted": 0,
                "admitted": 0,
                "rejected": 0,
                "timed_out": 0,
                "released": 0,
                "admitted_bytes": 0.0,
                "queue_seconds": 0.0,
            }
            for name in self.tenants
        }

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def admit(self, tenant_name: str, nbytes: float) -> Generator:
        """Queue for admission; returns an :class:`AdmissionGrant`.

        Raises :class:`AdmissionRejectedError` on backpressure and
        :class:`AdmissionTimeoutError` if the queueing deadline passes
        first.  Generator form — call with ``yield from`` inside a
        simulation process.
        """
        tenant = self.tenants.get(tenant_name)
        if tenant is None:
            raise KeyError(f"unknown tenant {tenant_name!r}")
        stats = self.stats[tenant_name]
        stats["submitted"] += 1
        queue = self._queues[tenant_name]
        if self._closed or len(queue) >= tenant.max_queue:
            stats["rejected"] += 1
            self._record(
                "serve.reject", tenant=tenant_name,
                nbytes=float(nbytes), depth=len(queue),
                reason="closed" if self._closed else "queue_full",
            )
            raise AdmissionRejectedError(
                f"{tenant_name}: queue full "
                f"({len(queue)}/{tenant.max_queue})"
                if not self._closed
                else f"{tenant_name}: admission closed"
            )
        now = self.engine.now
        deadline = (
            now + tenant.deadline_s if tenant.deadline_s is not None
            else None
        )
        self._seq += 1
        ticket = _Ticket(
            tenant_name, float(nbytes),
            max(1.0, float(nbytes) / COST_UNIT_BYTES),
            now, deadline, self._seq, self.engine.event("admission"),
        )
        ticket.start_tag = max(
            self._virtual, self._last_finish[tenant_name]
        )
        ticket.finish_tag = ticket.start_tag + ticket.cost / tenant.weight
        self._last_finish[tenant_name] = ticket.finish_tag
        queue.append(ticket)
        self._kick()
        grant = yield Wait(ticket.event)
        return grant

    def _release(self, tenant_name: str) -> None:
        self._inflight -= 1
        self.stats[tenant_name]["released"] += 1
        self._record("serve.release", tenant=tenant_name,
                     inflight=self._inflight)
        self._kick()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        wake = self._wake
        if wake is not None and not wake.fired:
            wake.succeed()

    def _prune_deadlines(self) -> None:
        now = self.engine.now
        for name, queue in self._queues.items():
            if not queue:
                continue
            kept = deque()
            for ticket in queue:
                if ticket.deadline is not None and now >= ticket.deadline:
                    stats = self.stats[name]
                    stats["timed_out"] += 1
                    self._record(
                        "serve.timeout", tenant=name,
                        nbytes=ticket.nbytes,
                        waited=now - ticket.enqueued_at,
                    )
                    ticket.event.fail(AdmissionTimeoutError(
                        f"{name}: deadline after "
                        f"{now - ticket.enqueued_at:.3f}s in queue"
                    ))
                else:
                    kept.append(ticket)
            self._queues[name] = queue = kept

    def _eligible_head(self, name: str) -> Optional[float]:
        """Seconds until this tenant's head ticket is token-eligible."""
        queue = self._queues[name]
        if not queue:
            return None
        ticket = queue[0]
        wait = 0.0
        ops_bucket = self._ops_buckets.get(name)
        if ops_bucket is not None:
            wait = max(wait, ops_bucket.seconds_until(1.0))
        bytes_bucket = self._bytes_buckets.get(name)
        if bytes_bucket is not None:
            wait = max(wait, bytes_bucket.seconds_until(ticket.nbytes))
        return wait

    def _try_dispatch(self) -> bool:
        """Admit the eligible head ticket with the smallest finish tag."""
        if self._inflight >= self.max_inflight:
            return False
        best: Optional[_Ticket] = None
        for name in self.tenants:  # dict order: stable, insertion
            wait = self._eligible_head(name)
            if wait is None or wait > 0.0:
                continue
            ticket = self._queues[name][0]
            if best is None or (ticket.finish_tag, ticket.seq) < (
                best.finish_tag, best.seq
            ):
                best = ticket
        if best is None:
            return False
        name = best.tenant
        ops_bucket = self._ops_buckets.get(name)
        if ops_bucket is not None:
            ops_bucket.try_take(1.0)
        bytes_bucket = self._bytes_buckets.get(name)
        if bytes_bucket is not None:
            bytes_bucket.try_take(best.nbytes)
        self._queues[name].popleft()
        self._virtual = max(self._virtual, best.start_tag)
        self._inflight += 1
        now = self.engine.now
        stats = self.stats[name]
        stats["admitted"] += 1
        stats["admitted_bytes"] += best.nbytes
        stats["queue_seconds"] += now - best.enqueued_at
        self._record(
            "serve.admit", tenant=name, nbytes=best.nbytes,
            waited=now - best.enqueued_at, inflight=self._inflight,
        )
        best.event.succeed(AdmissionGrant(self, name))
        return True

    def _next_wait(self) -> Optional[float]:
        """Seconds until the next token refill or deadline expiry."""
        now = self.engine.now
        wait: Optional[float] = None
        if self._inflight < self.max_inflight:
            for name in self.tenants:
                head_wait = self._eligible_head(name)
                if head_wait is not None and (
                    wait is None or head_wait < wait
                ):
                    wait = head_wait
        for queue in self._queues.values():
            for ticket in queue:
                if ticket.deadline is not None:
                    remaining = max(0.0, ticket.deadline - now)
                    if wait is None or remaining < wait:
                        wait = remaining
        return wait

    def _dispatch_loop(self) -> Generator:
        while True:
            self._prune_deadlines()
            while self._try_dispatch():
                pass
            if self._closed and not any(
                self._queues[name] for name in self.tenants
            ):
                return
            wake = self.engine.event("admission-wake")
            self._wake = wake
            timer = None
            wait = self._next_wait()
            if wait is not None:
                def fire(event: SimEvent = wake) -> None:
                    if not event.fired:
                        event.succeed()
                timer = self.engine.call_later(max(wait, 1e-9), fire)
            yield Wait(wake)
            self._wake = None
            if timer is not None:
                timer.cancel()

    # ------------------------------------------------------------------
    # Lifecycle / audit
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admitting: fail queued tickets, let the dispatcher exit."""
        if self._closed:
            return
        self._closed = True
        for name, queue in self._queues.items():
            while queue:
                ticket = queue.popleft()
                self.stats[name]["rejected"] += 1
                self._record("serve.reject", tenant=name,
                             nbytes=ticket.nbytes, reason="closed")
                ticket.event.fail(AdmissionRejectedError(
                    f"{name}: admission closed"
                ))
        self._kick()

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queued(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def health(self) -> dict:
        return {
            "inflight": self._inflight,
            "queued": self.queued,
            "closed": self._closed,
            "virtual_time": round(self._virtual, 6),
            "per_tenant": {
                name: dict(stats) for name, stats in
                sorted(self.stats.items())
            },
        }

    def audit(self) -> tuple[bool, str]:
        """The "no admitted request lost" check (chaos 5th invariant).

        Every admitted request must eventually release its grant, and no
        ticket may still be queued once the system has drained.
        """
        for name in sorted(self.stats):
            stats = self.stats[name]
            if stats["admitted"] != stats["released"]:
                return False, (
                    f"{name}: admitted={int(stats['admitted'])} "
                    f"released={int(stats['released'])}"
                )
            lost = stats["submitted"] - (
                stats["admitted"] + stats["rejected"] + stats["timed_out"]
            )
            if lost:
                return False, f"{name}: {int(lost)} tickets unaccounted"
        if self.queued:
            return False, f"{self.queued} tickets still queued"
        return True, "every admitted request released its grant"

    def _record(self, kind: str, **fields) -> None:
        if self.engine.recorder.enabled:
            rounded = {
                key: round(value, 6) if isinstance(value, float) else value
                for key, value in fields.items()
            }
            self.engine.recorder.record(kind, **rounded)
