"""Per-tenant serving reports: throughput, percentiles, SLO verdicts.

``build_report`` reduces a finished load run into one deterministic dict
(sorted tenants, rounded floats); ``report_to_json`` renders the
canonical byte form the CLI and CI compare across runs, and
``render_text`` renders the human table.
"""

from __future__ import annotations

import json

from repro import units
from repro.serve.session import LATENCY_BOUNDS, STATUSES
from repro.serve.tenancy import AdmissionController
from repro.sim.tracing import MetricsRegistry


def build_report(
    seed: int,
    duration_s: float,
    metrics: MetricsRegistry,
    admission: AdmissionController,
    link_health: dict,
    backend: str,
) -> dict:
    """One deterministic dict summarizing a serve run."""
    tenants = {}
    for name in sorted(admission.tenants):
        spec = admission.tenants[name]
        stats = admission.stats[name]
        histogram = metrics.histogram(
            f"serve.latency_s.{name}", LATENCY_BOUNDS
        )
        ok_bytes = metrics.counter(f"serve.bytes.{name}").value
        counts = {
            status: int(
                metrics.counter(f"serve.ops.{name}.{status}").value
            )
            for status in STATUSES
        }
        p99 = histogram.quantile(0.99)
        entry = {
            "ops": sum(counts.values()),
            "outcomes": counts,
            "admitted": int(stats["admitted"]),
            "admitted_bytes": round(stats["admitted_bytes"], 3),
            "mean_queue_s": round(
                stats["queue_seconds"] / stats["admitted"], 6
            ) if stats["admitted"] else 0.0,
            "ok_bytes": round(ok_bytes, 3),
            "throughput_mbps": round(
                ok_bytes / duration_s / units.MB, 3
            ) if duration_s > 0 else 0.0,
            "p50_s": round(histogram.quantile(0.50), 6),
            "p95_s": round(histogram.quantile(0.95), 6),
            "p99_s": round(p99, 6),
            "weight": spec.weight,
            "rate_bytes": spec.rate_bytes,
            "rate_ops": spec.rate_ops,
        }
        if spec.slo_p99_s is not None:
            entry["slo_p99_s"] = spec.slo_p99_s
            entry["slo_met"] = bool(
                histogram.count == 0 or p99 <= spec.slo_p99_s
            )
        tenants[name] = entry
    audit_ok, audit_detail = admission.audit()
    return {
        "seed": seed,
        "backend": backend,
        "duration_s": round(duration_s, 6),
        "tenants": tenants,
        "totals": {
            "ops": sum(entry["ops"] for entry in tenants.values()),
            "ok": sum(
                entry["outcomes"]["ok"] for entry in tenants.values()
            ),
            "rejected": sum(
                entry["outcomes"]["rejected"] for entry in tenants.values()
            ),
            "timeouts": sum(
                entry["outcomes"]["timeout"] for entry in tenants.values()
            ),
            "ok_bytes": round(
                sum(entry["ok_bytes"] for entry in tenants.values()), 3
            ),
        },
        "link": {
            "bytes_in": round(link_health["bytes_in"], 3),
            "bytes_out": round(link_health["bytes_out"], 3),
            "requests": link_health["requests"],
            "responses": link_health["responses"],
            "drops": link_health["drops"],
            "utilization_in": round(
                link_health["bytes_in"]
                / (link_health["capacity_bps"] * duration_s),
                4,
            ) if duration_s > 0 else 0.0,
            "utilization_out": round(
                link_health["bytes_out"]
                / (link_health["capacity_bps"] * duration_s),
                4,
            ) if duration_s > 0 else 0.0,
        },
        "admission_audit": {"ok": audit_ok, "detail": audit_detail},
    }


def report_to_json(report: dict) -> str:
    """Canonical byte form — what determinism checks compare."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def render_text(report: dict) -> str:
    """Human-readable per-tenant table plus link/audit footer."""
    lines = [
        f"serve report  seed={report['seed']}  "
        f"backend={report['backend']}  "
        f"duration={report['duration_s']:.1f}s",
        "",
    ]
    header = (
        f"{'tenant':<12} {'ops':>6} {'ok':>6} {'rej':>5} {'t/o':>5} "
        f"{'MB/s':>8} {'p50 s':>9} {'p95 s':>9} {'p99 s':>9} {'slo':>4}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, entry in report["tenants"].items():
        slo = "-"
        if "slo_met" in entry:
            slo = "ok" if entry["slo_met"] else "MISS"
        lines.append(
            f"{name:<12} {entry['ops']:>6} "
            f"{entry['outcomes']['ok']:>6} "
            f"{entry['outcomes']['rejected']:>5} "
            f"{entry['outcomes']['timeout']:>5} "
            f"{entry['throughput_mbps']:>8.2f} "
            f"{entry['p50_s']:>9.4f} {entry['p95_s']:>9.4f} "
            f"{entry['p99_s']:>9.4f} {slo:>4}"
        )
    link = report["link"]
    lines.append("")
    lines.append(
        f"link: in {link['bytes_in'] / units.MB:.1f} MB "
        f"({link['utilization_in'] * 100:.1f}%)  "
        f"out {link['bytes_out'] / units.MB:.1f} MB "
        f"({link['utilization_out'] * 100:.1f}%)  "
        f"drops {link['drops']}"
    )
    audit = report["admission_audit"]
    lines.append(
        f"admission audit: {'PASS' if audit['ok'] else 'FAIL'} "
        f"({audit['detail']})"
    )
    return "\n".join(lines)
