"""A working UDF-like file system (Universal Disc Format, simplified).

OLFS leans on UDF for both of its on-disc structures (§4): *buckets* are
updatable UDF volumes on the disk write buffer, *disc images* are closed
UDF volumes burned onto media.  This package implements the pieces that
matter to the paper's design:

* fixed 2 KB blocks ("in the UDF file system the basic block size is 2 KB
  and cannot be changed", §4.5);
* each file/directory costs at least one 2 KB entry block, so tiny files
  halve usable capacity in the worst case (§4.5);
* full directory subtrees inside every volume (the unique-file-path design
  of §4.4 needs images to carry their files' ancestor directories);
* volumes serialize to a self-describing byte layout (anchor descriptor +
  entry table + data extents) and mount back, which is what makes burned
  discs independently readable for recovery (§4.4).
"""

from repro.udf.constants import BLOCK_SIZE, ENTRY_BLOCKS
from repro.udf.entry import DirectoryEntry, FileEntry
from repro.udf.filesystem import UDFFileSystem
from repro.udf.image import DiscImage

__all__ = [
    "BLOCK_SIZE",
    "DirectoryEntry",
    "DiscImage",
    "ENTRY_BLOCKS",
    "FileEntry",
    "UDFFileSystem",
]
