"""UDF file and directory entries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.udf.constants import BLOCK_SIZE, ENTRY_BLOCKS


def blocks_for_data(nbytes: int) -> int:
    """Data blocks needed for ``nbytes`` of file content."""
    return -(-int(nbytes) // BLOCK_SIZE)


@dataclass
class FileEntry:
    """A regular file: name, real content and an optional declared size.

    ``logical_size`` lets timing-scale experiments carry files whose
    declared size exceeds the stored payload; it defaults to the payload
    length and all space accounting uses it.
    """

    name: str
    data: bytes = b""
    logical_size: Optional[int] = None
    mtime: float = 0.0

    def __post_init__(self):
        if self.logical_size is None:
            self.logical_size = len(self.data)
        if self.logical_size < len(self.data):
            raise ValueError(
                f"logical size {self.logical_size} < payload {len(self.data)}"
            )

    @property
    def size(self) -> int:
        return self.logical_size

    @property
    def blocks(self) -> int:
        """Total blocks consumed: entry block(s) plus data blocks."""
        return ENTRY_BLOCKS + blocks_for_data(self.logical_size)


@dataclass
class DirectoryEntry:
    """A directory: named children, each a FileEntry or DirectoryEntry."""

    name: str
    children: dict = field(default_factory=dict)
    mtime: float = 0.0

    @property
    def blocks(self) -> int:
        return ENTRY_BLOCKS

    def child_names(self) -> list[str]:
        return sorted(self.children)

    def is_empty(self) -> bool:
        return not self.children
