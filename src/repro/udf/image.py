"""Disc images: serializable UDF volumes with identity.

A disc image is OLFS's basic container (§4.1): "each disc image has the
same capacity as the disc and has an internal UDF file system... disc
images as a whole can swap between discs and disks.  Each disc image has a
universal unique identifier."

Three kinds exist:

* ``data`` — a closed UDF volume holding user files (from a filled bucket);
* ``parity`` — raw parity bytes over a disc array's data images (§4.7:
  "the parity image is not a UDF volume");
* ``metadata`` — a periodic snapshot of the Metadata Volume (§4.2), burned
  so the global namespace can be recovered from discs.

The serialized layout is self-describing (magic + JSON header + extents),
which is what lets recovery reconstruct everything from survived discs.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.errors import MediaError
from repro.udf.constants import FORMAT_VERSION, VOLUME_MAGIC
from repro.udf.entry import DirectoryEntry, FileEntry
from repro.udf.filesystem import UDFFileSystem

_HEADER_LEN_BYTES = 8

DATA = "data"
PARITY = "parity"
METADATA = "metadata"
_KINDS = (DATA, PARITY, METADATA)


class DiscImage:
    """An identified, serializable volume that swaps between disks and discs."""

    def __init__(
        self,
        image_id: str,
        kind: str = DATA,
        filesystem: Optional[UDFFileSystem] = None,
        raw: Optional[bytes] = None,
        logical_size: Optional[int] = None,
    ):
        if kind not in _KINDS:
            raise ValueError(f"unknown image kind {kind!r}")
        if kind == PARITY:
            if raw is None:
                raise ValueError("parity images need raw bytes")
        elif filesystem is None:
            raise ValueError(f"{kind} images need a filesystem")
        self.image_id = image_id
        self.kind = kind
        self.filesystem = filesystem
        self.raw = raw
        self._declared_size = logical_size

    @property
    def logical_size(self) -> int:
        """Bytes this image occupies for burn timing/capacity purposes."""
        if self._declared_size is not None:
            return self._declared_size
        if self.kind == PARITY:
            return len(self.raw)
        return self.filesystem.used_bytes

    def mount(self) -> UDFFileSystem:
        """The image's read-only file system view (data/metadata only)."""
        if self.filesystem is None:
            raise MediaError(f"image {self.image_id} ({self.kind}) has no fs")
        return self.filesystem

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def serialize(self) -> bytes:
        """Self-describing byte layout: magic | header length | JSON header
        | concatenated file extents (or raw parity bytes)."""
        if self.kind == PARITY:
            header = {
                "version": FORMAT_VERSION,
                "image_id": self.image_id,
                "kind": self.kind,
                "logical_size": self.logical_size,
                "payload_length": len(self.raw),
            }
            body = self.raw
            head = json.dumps(header, sort_keys=True).encode()
            return (
                VOLUME_MAGIC
                + len(head).to_bytes(_HEADER_LEN_BYTES, "big")
                + head
                + body
            )
        entries = []
        extents = []
        offset = 0
        fs = self.filesystem
        for path, entry in fs.walk():
            if isinstance(entry, DirectoryEntry):
                entries.append({"path": path, "type": "dir", "mtime": entry.mtime})
            else:
                entries.append(
                    {
                        "path": path,
                        "type": "file",
                        "size": entry.logical_size,
                        "length": len(entry.data),
                        "offset": offset,
                        "mtime": entry.mtime,
                    }
                )
                extents.append(entry.data)
                offset += len(entry.data)
        header = {
            "version": FORMAT_VERSION,
            "image_id": self.image_id,
            "kind": self.kind,
            "label": fs.label,
            "capacity": fs.capacity,
            "logical_size": self.logical_size,
            "entries": entries,
        }
        head = json.dumps(header, sort_keys=True).encode()
        return (
            VOLUME_MAGIC
            + len(head).to_bytes(_HEADER_LEN_BYTES, "big")
            + head
            + b"".join(extents)
        )

    @classmethod
    def deserialize(cls, blob: bytes) -> "DiscImage":
        """Rebuild an image (and its fs) from serialized bytes."""
        if blob[: len(VOLUME_MAGIC)] != VOLUME_MAGIC:
            raise MediaError("not a ROS-UDF volume (bad magic)")
        cursor = len(VOLUME_MAGIC)
        head_len = int.from_bytes(
            blob[cursor : cursor + _HEADER_LEN_BYTES], "big"
        )
        cursor += _HEADER_LEN_BYTES
        header = json.loads(blob[cursor : cursor + head_len])
        cursor += head_len
        if header.get("version") != FORMAT_VERSION:
            raise MediaError(
                f"unsupported volume format {header.get('version')}"
            )
        kind = header["kind"]
        if kind == PARITY:
            raw = blob[cursor : cursor + header["payload_length"]]
            return cls(
                header["image_id"],
                kind=PARITY,
                raw=raw,
                logical_size=header["logical_size"],
            )
        fs = UDFFileSystem(header["capacity"], label=header["label"])
        data_base = cursor
        for entry in header["entries"]:
            if entry["type"] == "dir":
                fs.makedirs(entry["path"], mtime=entry["mtime"])
            else:
                start = data_base + entry["offset"]
                payload = blob[start : start + entry["length"]]
                fs.write_file(
                    entry["path"],
                    payload,
                    logical_size=entry["size"],
                    mtime=entry["mtime"],
                )
        fs.close()
        return cls(
            header["image_id"],
            kind=kind,
            filesystem=fs,
            logical_size=header["logical_size"],
        )

    @staticmethod
    def peek_header(blob: bytes) -> dict:
        """Read just the JSON header (recovery scans discs cheaply)."""
        if blob[: len(VOLUME_MAGIC)] != VOLUME_MAGIC:
            raise MediaError("not a ROS-UDF volume (bad magic)")
        cursor = len(VOLUME_MAGIC)
        head_len = int.from_bytes(
            blob[cursor : cursor + _HEADER_LEN_BYTES], "big"
        )
        cursor += _HEADER_LEN_BYTES
        return json.loads(blob[cursor : cursor + head_len])

    def __repr__(self) -> str:
        return f"<DiscImage {self.image_id} {self.kind} {self.logical_size}B>"
