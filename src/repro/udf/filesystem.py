"""The in-memory UDF volume: a block-accounted directory tree.

Paths are absolute, slash-separated, rooted at ``/``.  The volume tracks
every entry's block consumption against a fixed capacity; an *open* volume
(a bucket) accepts writes and in-place updates, a *closed* volume (a disc
image) is read-only — matching the bucket -> image life cycle of §4.3.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import (
    DirectoryNotEmptyOLFSError,
    FileExistsOLFSError,
    FileNotFoundOLFSError,
    InvalidPathError,
    IsADirectoryOLFSError,
    NoSpaceOLFSError,
    NotADirectoryOLFSError,
    ReadOnlyOLFSError,
)
from repro.udf.constants import BLOCK_SIZE, ENTRY_BLOCKS
from repro.udf.entry import DirectoryEntry, FileEntry, blocks_for_data


def split_path(path: str) -> list[str]:
    """Validate and split an absolute path into components."""
    if not path or not path.startswith("/"):
        raise InvalidPathError(f"path must be absolute: {path!r}")
    parts = [part for part in path.split("/") if part]
    for part in parts:
        if part in (".", ".."):
            raise InvalidPathError(f"relative component in {path!r}")
    return parts


class UDFFileSystem:
    """One UDF volume: 2 KB blocks, capacity-bounded, open or closed."""

    def __init__(self, capacity: int, label: str = ""):
        if capacity < BLOCK_SIZE:
            raise ValueError(f"capacity {capacity} below one block")
        self.capacity = int(capacity)
        self.label = label
        self.root = DirectoryEntry(name="/")
        self.read_only = False
        self._used_blocks = ENTRY_BLOCKS  # the root directory entry

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    @property
    def total_blocks(self) -> int:
        return self.capacity // BLOCK_SIZE

    @property
    def used_blocks(self) -> int:
        return self._used_blocks

    @property
    def used_bytes(self) -> int:
        return self._used_blocks * BLOCK_SIZE

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self._used_blocks

    @property
    def free_bytes(self) -> int:
        return self.free_blocks * BLOCK_SIZE

    def blocks_needed_for(self, path: str, nbytes: int) -> int:
        """Blocks a new file of ``nbytes`` at ``path`` would consume,
        including any ancestor directories that do not exist yet."""
        parts = split_path(path)
        blocks = ENTRY_BLOCKS + blocks_for_data(nbytes)
        node = self.root
        for part in parts[:-1]:
            child = node.children.get(part) if isinstance(node, DirectoryEntry) else None
            if child is None or not isinstance(child, DirectoryEntry):
                blocks += ENTRY_BLOCKS  # directory to be created
                node = DirectoryEntry(name=part)
            else:
                node = child
        return blocks

    def fits(self, path: str, nbytes: int) -> bool:
        return self.blocks_needed_for(path, nbytes) <= self.free_blocks

    def _charge(self, blocks: int) -> None:
        if blocks > self.free_blocks:
            raise NoSpaceOLFSError(
                f"volume {self.label!r}: need {blocks} blocks, "
                f"{self.free_blocks} free"
            )
        self._used_blocks += blocks

    def _refund(self, blocks: int) -> None:
        self._used_blocks -= blocks

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _lookup(self, path: str):
        node = self.root
        for part in split_path(path):
            if not isinstance(node, DirectoryEntry):
                raise NotADirectoryOLFSError(f"{path!r}: not a directory")
            if part not in node.children:
                raise FileNotFoundOLFSError(f"{path!r}: no such entry")
            node = node.children[part]
        return node

    def exists(self, path: str) -> bool:
        try:
            self._lookup(path)
            return True
        except (FileNotFoundOLFSError, NotADirectoryOLFSError):
            return False

    def is_dir(self, path: str) -> bool:
        try:
            return isinstance(self._lookup(path), DirectoryEntry)
        except (FileNotFoundOLFSError, NotADirectoryOLFSError):
            return False

    def is_file(self, path: str) -> bool:
        try:
            return isinstance(self._lookup(path), FileEntry)
        except (FileNotFoundOLFSError, NotADirectoryOLFSError):
            return False

    def stat(self, path: str) -> dict:
        node = self._lookup(path)
        if isinstance(node, FileEntry):
            return {
                "type": "file",
                "size": node.size,
                "blocks": node.blocks,
                "mtime": node.mtime,
            }
        return {
            "type": "dir",
            "entries": len(node.children),
            "blocks": node.blocks,
            "mtime": node.mtime,
        }

    def listdir(self, path: str = "/") -> list[str]:
        node = self.root if path == "/" else self._lookup(path)
        if not isinstance(node, DirectoryEntry):
            raise NotADirectoryOLFSError(f"{path!r} is a file")
        return node.child_names()

    def walk(self, path: str = "/") -> Iterator[tuple[str, object]]:
        """Depth-first (path, entry) pairs under ``path``, files and dirs."""
        node = self.root if path == "/" else self._lookup(path)
        base = "" if path == "/" else path.rstrip("/")

        def recurse(prefix: str, directory: DirectoryEntry):
            for name in directory.child_names():
                child = directory.children[name]
                child_path = f"{prefix}/{name}"
                yield child_path, child
                if isinstance(child, DirectoryEntry):
                    yield from recurse(child_path, child)

        if isinstance(node, DirectoryEntry):
            yield from recurse(base, node)

    def file_paths(self) -> list[str]:
        return [
            path
            for path, entry in self.walk()
            if isinstance(entry, FileEntry)
        ]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _require_writable(self) -> None:
        if self.read_only:
            raise ReadOnlyOLFSError(
                f"volume {self.label!r} is closed (read-only)"
            )

    def makedirs(self, path: str, mtime: float = 0.0) -> DirectoryEntry:
        """Create a directory and any missing ancestors."""
        self._require_writable()
        node = self.root
        for part in split_path(path):
            if not isinstance(node, DirectoryEntry):
                raise NotADirectoryOLFSError(f"{path!r}: ancestor is a file")
            child = node.children.get(part)
            if child is None:
                self._charge(ENTRY_BLOCKS)
                child = DirectoryEntry(name=part, mtime=mtime)
                node.children[part] = child
            node = child
        if not isinstance(node, DirectoryEntry):
            raise NotADirectoryOLFSError(f"{path!r} exists as a file")
        return node

    def write_file(
        self,
        path: str,
        data: bytes,
        logical_size: Optional[int] = None,
        mtime: float = 0.0,
        overwrite: bool = False,
    ) -> FileEntry:
        """Create (or, in an open volume, replace) a file with content."""
        self._require_writable()
        parts = split_path(path)
        if not parts:
            raise InvalidPathError("cannot write to /")
        parent = (
            self.makedirs("/" + "/".join(parts[:-1]), mtime)
            if len(parts) > 1
            else self.root
        )
        name = parts[-1]
        existing = parent.children.get(name)
        if existing is not None:
            if isinstance(existing, DirectoryEntry):
                raise IsADirectoryOLFSError(f"{path!r} is a directory")
            if not overwrite:
                raise FileExistsOLFSError(f"{path!r} exists")
        entry = FileEntry(
            name=name, data=bytes(data), logical_size=logical_size, mtime=mtime
        )
        new_blocks = entry.blocks - (existing.blocks if existing else 0)
        if new_blocks > 0:
            self._charge(new_blocks)
        else:
            self._refund(-new_blocks)
        parent.children[name] = entry
        return entry

    def append_file(self, path: str, data: bytes, mtime: float = 0.0) -> FileEntry:
        """Append to an existing file (open volumes only)."""
        self._require_writable()
        entry = self._lookup(path)
        if isinstance(entry, DirectoryEntry):
            raise IsADirectoryOLFSError(f"{path!r} is a directory")
        if entry.logical_size != len(entry.data):
            raise InvalidPathError(
                f"{path!r}: cannot append to a declared-size file"
            )
        new_data = entry.data + bytes(data)
        new_entry = FileEntry(name=entry.name, data=new_data, mtime=mtime)
        delta = new_entry.blocks - entry.blocks
        if delta > 0:
            self._charge(delta)
        parts = split_path(path)
        parent = self.root if len(parts) == 1 else self._lookup(
            "/" + "/".join(parts[:-1])
        )
        parent.children[entry.name] = new_entry
        return new_entry

    def read_file(self, path: str) -> bytes:
        entry = self._lookup(path)
        if isinstance(entry, DirectoryEntry):
            raise IsADirectoryOLFSError(f"{path!r} is a directory")
        return entry.data

    def file_entry(self, path: str) -> FileEntry:
        entry = self._lookup(path)
        if isinstance(entry, DirectoryEntry):
            raise IsADirectoryOLFSError(f"{path!r} is a directory")
        return entry

    def remove(self, path: str) -> None:
        """Remove a file or empty directory (open volumes only)."""
        self._require_writable()
        parts = split_path(path)
        if not parts:
            raise InvalidPathError("cannot remove /")
        parent = self.root if len(parts) == 1 else self._lookup(
            "/" + "/".join(parts[:-1])
        )
        if not isinstance(parent, DirectoryEntry) or parts[-1] not in parent.children:
            raise FileNotFoundOLFSError(f"{path!r}: no such entry")
        entry = parent.children[parts[-1]]
        if isinstance(entry, DirectoryEntry) and not entry.is_empty():
            raise DirectoryNotEmptyOLFSError(f"{path!r} is not empty")
        del parent.children[parts[-1]]
        self._refund(entry.blocks)

    def clear(self) -> None:
        """Wipe all contents (bucket recycling, §4.3)."""
        self._require_writable()
        self.root = DirectoryEntry(name="/")
        self._used_blocks = ENTRY_BLOCKS

    def close(self) -> None:
        """Finalize the volume: no further writes (bucket -> image)."""
        self.read_only = True

    def __repr__(self) -> str:
        mode = "ro" if self.read_only else "rw"
        return (
            f"<UDFFileSystem {self.label!r} {mode} "
            f"{self.used_blocks}/{self.total_blocks} blocks>"
        )
