"""UDF layout constants."""

#: Fixed UDF block size (§4.5: "the basic block size is 2 KB and cannot be
#: changed").
BLOCK_SIZE = 2048

#: Blocks consumed by a file/directory entry (the 2 KB minimum allocation).
ENTRY_BLOCKS = 1

#: Magic marking the start of a serialized volume (our anchor descriptor).
VOLUME_MAGIC = b"ROS-UDF2"

#: On-disc format version for serialized volumes.
FORMAT_VERSION = 2
