"""Processor-sharing bandwidth model for I/O-stream interference.

A :class:`SharedBandwidth` models a device or link of fixed capacity
(bytes/second) shared *fluidly* by all active transfers: at any instant each
flow receives ``capacity * weight / total_weight``.  This is the classic
fluid-flow approximation used in storage simulators and is exactly what the
paper's Section 4.7 argument is about — four concurrent intensive streams on
one RAID volume slow each other down, which is why ROS provisions multiple
independent RAID volumes.

Usage (inside a process generator)::

    yield from volume_bw.transfer(nbytes)          # weight 1
    yield from volume_bw.transfer(nbytes, weight=2)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.sim.engine import SimulationError, Wait

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine, SimEvent, Timer

_EPSILON_BYTES = 1e-6


class _Flow:
    __slots__ = ("remaining", "weight", "event")

    def __init__(self, remaining: float, weight: float, event: "SimEvent"):
        self.remaining = remaining
        self.weight = weight
        self.event = event


class SharedBandwidth:
    """A capacity (bytes/s) shared by concurrent flows, processor-sharing."""

    def __init__(self, engine: "Engine", capacity: float, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = float(capacity)
        self.name = name
        self._flows: list[_Flow] = []
        self._last_settled = engine.now
        self._timer: Optional["Timer"] = None
        self._bytes_moved = 0.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._flows)

    @property
    def bytes_moved(self) -> float:
        """Total bytes transferred through this device so far (settled)."""
        self._settle()
        return self._bytes_moved

    def current_rate(self, weight: float = 1.0) -> float:
        """Rate a new flow of ``weight`` would receive right now, bytes/s."""
        total = sum(flow.weight for flow in self._flows) + weight
        return self.capacity * weight / total

    def transfer(self, nbytes: float, weight: float = 1.0) -> Generator:
        """Generator effect: completes when ``nbytes`` have moved.

        Use as ``yield from bandwidth.transfer(n)`` inside a process.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if nbytes == 0:
            return
        event = self.engine.event(f"{self.name}:transfer")
        self._settle()
        self._flows.append(_Flow(float(nbytes), float(weight), event))
        self._reschedule()
        yield Wait(event)

    def estimate_seconds(self, nbytes: float) -> float:
        """Time to move ``nbytes`` if this flow ran alone (no contention)."""
        return nbytes / self.capacity

    # ------------------------------------------------------------------
    # Fluid-flow bookkeeping
    # ------------------------------------------------------------------
    def _total_weight(self) -> float:
        return sum(flow.weight for flow in self._flows)

    def _completion_threshold(self) -> float:
        """Bytes below which a flow counts as finished.

        Scaled with capacity so that the completion delta never underflows
        float time resolution (remaining/rate must stay representable when
        added to the clock) — a sub-nanosecond tail is simply done.
        """
        return max(_EPSILON_BYTES, self.capacity * 1e-9)

    def _settle(self) -> None:
        """Advance every active flow's progress up to the current time."""
        now = self.engine.now
        elapsed = now - self._last_settled
        self._last_settled = now
        if not self._flows:
            return
        if elapsed > 0:
            total_weight = self._total_weight()
            for flow in self._flows:
                rate = self.capacity * flow.weight / total_weight
                moved = min(flow.remaining, rate * elapsed)
                flow.remaining -= moved
                self._bytes_moved += moved
        threshold = self._completion_threshold()
        finished = [f for f in self._flows if f.remaining <= threshold]
        if finished:
            self._flows = [f for f in self._flows if f.remaining > threshold]
            for flow in finished:
                self._bytes_moved += flow.remaining
                flow.remaining = 0.0
                flow.event.succeed()

    def _reschedule(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._flows:
            return
        total_weight = self._total_weight()
        next_completion = min(
            flow.remaining / (self.capacity * flow.weight / total_weight)
            for flow in self._flows
        )
        if next_completion < 0:
            raise SimulationError("negative completion time in bandwidth model")
        self._timer = self.engine.call_later(next_completion, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        self._settle()
        self._reschedule()
