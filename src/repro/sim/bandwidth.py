"""Processor-sharing bandwidth model for I/O-stream interference.

A :class:`SharedBandwidth` models a device or link of fixed capacity
(bytes/second) shared *fluidly* by all active transfers: at any instant each
flow receives ``capacity * weight / total_weight``.  This is the classic
fluid-flow approximation used in storage simulators and is exactly what the
paper's Section 4.7 argument is about — four concurrent intensive streams on
one RAID volume slow each other down, which is why ROS provisions multiple
independent RAID volumes.

Usage (inside a process generator)::

    yield from volume_bw.transfer(nbytes)          # weight 1
    yield from volume_bw.transfer(nbytes, weight=2)

Incremental accounting
----------------------
The seed implementation re-summed every flow's weight and rescanned every
flow on each arrival *and* each completion timer — O(active flows) per flow
event, O(n²) for the §4.7 multi-stream bursts.  This version keeps the
bookkeeping incremental while producing bit-identical event times:

* the total weight is maintained on flow add/finish (appends reproduce the
  seed's left-to-right summation exactly; removals subtract — exact for the
  integral weights every call site uses — and fall back to a re-sum in list
  order if any non-integral weight is active);
* the flow that completes next (the argmin of ``remaining / rate``) is
  tracked across arrivals, so ``_reschedule`` is O(1) instead of a scan —
  under processor sharing all flows drain at the same per-weight rate, so
  the argmin only changes on arrivals and completions;
* ``_settle`` is O(1) when no simulated time has passed (same-instant
  arrival bursts) and touches every flow only when real progress must be
  credited — using the seed's exact per-flow arithmetic, in list order, so
  ``remaining``/``bytes_moved`` stay bit-identical.

``bytes_moved`` is now a *pure* read: it reports settled progress plus the
in-flight remainder without mutating state (the seed property silently
settled, which could fire completion events from a read).  Call
:meth:`settle` for the old explicit-settlement behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.sim.engine import Alarm, Park, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine, Process

_EPSILON_BYTES = 1e-6


class _Flow(Park):
    """One active transfer; doubles as the waiter's parking effect.

    Yielding the flow itself (instead of ``Wait`` on a freshly allocated
    per-transfer ``SimEvent``) saves two allocations and the waiter-list
    bookkeeping per transfer; ``_detach`` supports interrupting the
    transferring process — the flow keeps draining, its completion then
    wakes nobody (matching the old fire-an-event-with-no-waiters
    behaviour).
    """

    __slots__ = ("remaining", "weight", "waiter")

    def __init__(self, remaining: float, weight: float):
        self.remaining = remaining
        self.weight = weight
        self.waiter: Optional["Process"] = None

    def _attach(self, process: "Process") -> None:
        self.waiter = process

    def _detach(self, process: "Process") -> None:
        if self.waiter is process:
            self.waiter = None


class SharedBandwidth:
    """A capacity (bytes/s) shared by concurrent flows, processor-sharing."""

    def __init__(self, engine: "Engine", capacity: float, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = float(capacity)
        self.name = name
        self._flows: list[_Flow] = []
        self._last_settled = engine.now
        self._alarm = Alarm(engine, self._on_alarm)
        self._bytes_moved = 0.0
        # Incremental bookkeeping (see module docstring).
        self._weight_total = 0.0
        self._nonintegral_weights = 0
        self._min_flow: Optional[_Flow] = None
        self._tiny_pending = False  # a flow was admitted at/below threshold
        self._threshold = max(_EPSILON_BYTES, self.capacity * 1e-9)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._flows)

    @property
    def bytes_moved(self) -> float:
        """Total bytes transferred through this device so far.

        Pure read: settled progress plus each active flow's in-flight
        share since the last settlement, computed without mutating the
        model (no events fire, no state changes).
        """
        total = self._bytes_moved
        flows = self._flows
        if flows:
            elapsed = self.engine.now - self._last_settled
            if elapsed > 0:
                capacity = self.capacity
                total_weight = self._weight_total
                for flow in flows:
                    rate = capacity * flow.weight / total_weight
                    moved = rate * elapsed
                    if moved > flow.remaining:
                        moved = flow.remaining
                    total += moved
        return total

    def settle(self) -> None:
        """Credit all in-flight progress up to ``engine.now`` (mutating).

        Completion events for flows that finished exactly now fire from
        here — this is the explicit form of what reading ``bytes_moved``
        used to do implicitly.
        """
        self._settle()

    def current_rate(self, weight: float = 1.0) -> float:
        """Rate a new flow of ``weight`` would receive right now, bytes/s."""
        total = self._weight_total + weight
        return self.capacity * weight / total

    def transfer(self, nbytes: float, weight: float = 1.0) -> Generator:
        """Generator effect: completes when ``nbytes`` have moved.

        Use as ``yield from bandwidth.transfer(n)`` inside a process.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if nbytes == 0:
            return
        engine = self.engine
        self._settle()
        flow = _Flow(float(nbytes), float(weight))
        self._flows.append(flow)
        # Inlined _add_weight / _note_arrival / reschedule: this is the
        # hottest loop in flow-churn workloads, and each helper call paid
        # a frame plus repeated attribute loads.  The arithmetic is kept
        # expression-for-expression identical (chaos corpus byte-identity
        # is the oracle).
        w = flow.weight
        self._weight_total += w
        if w != int(w):
            self._nonintegral_weights += 1
        if flow.remaining <= self._threshold:
            self._tiny_pending = True
        capacity = self.capacity
        total = self._weight_total
        current = self._min_flow
        if current is None:
            current = flow
        elif (
            flow.remaining / (capacity * flow.weight / total)
            < current.remaining / (capacity * current.weight / total)
        ):
            current = flow
        self._min_flow = current
        self._alarm.arm(
            engine._now
            + current.remaining / (capacity * current.weight / total)
        )
        yield flow

    def estimate_seconds(self, nbytes: float) -> float:
        """Time to move ``nbytes`` if this flow ran alone (no contention)."""
        return nbytes / self.capacity

    # ------------------------------------------------------------------
    # Incremental weight total
    # ------------------------------------------------------------------
    def _total_weight(self) -> float:
        return self._weight_total

    def _remove_weights(self, finished: list[_Flow]) -> None:
        if self._nonintegral_weights:
            # Non-integral weights: incremental subtraction can drift from
            # a fresh sum in float arithmetic, so re-sum in list order
            # (exactly the seed's computation over the surviving flows).
            total = 0.0
            nonintegral = 0
            for flow in self._flows:
                total += flow.weight
                if flow.weight != int(flow.weight):
                    nonintegral += 1
            self._weight_total = total
            self._nonintegral_weights = nonintegral
        else:
            # All weights are integers: float add/subtract is exact.
            for flow in finished:
                self._weight_total -= flow.weight

    # ------------------------------------------------------------------
    # Fluid-flow bookkeeping
    # ------------------------------------------------------------------
    def _completion_threshold(self) -> float:
        """Bytes below which a flow counts as finished.

        Scaled with capacity so that the completion delta never underflows
        float time resolution (remaining/rate must stay representable when
        added to the clock) — a sub-nanosecond tail is simply done.
        """
        return self._threshold

    def _next_completion_of(self, flow: _Flow) -> float:
        return flow.remaining / (
            self.capacity * flow.weight / self._weight_total
        )

    def _settle(self) -> None:
        """Advance every active flow's progress up to the current time.

        Amortized: O(1) when no simulated time elapsed and no freshly
        admitted flow sits at the completion threshold; O(active flows) —
        the seed's exact arithmetic, in list order — only when progress
        must be credited.
        """
        now = self.engine._now
        elapsed = now - self._last_settled
        self._last_settled = now
        flows = self._flows
        if not flows:
            return
        threshold = self._threshold
        crossed = False
        if elapsed > 0:
            total_weight = self._weight_total
            capacity = self.capacity
            # Running total in a local (same adds, same order: the float
            # result is bit-identical to updating the attribute per flow).
            bytes_moved = self._bytes_moved
            for flow in flows:
                rate = capacity * flow.weight / total_weight
                moved = rate * elapsed
                if moved > flow.remaining:
                    moved = flow.remaining
                flow.remaining -= moved
                bytes_moved += moved
                if flow.remaining <= threshold:
                    crossed = True
            self._bytes_moved = bytes_moved
        if not crossed and not self._tiny_pending:
            return
        self._tiny_pending = False
        finished = [f for f in flows if f.remaining <= threshold]
        if finished:
            self._flows = flows = [f for f in flows if f.remaining > threshold]
            self._remove_weights(finished)
            engine = self.engine
            runq = engine._runq
            seq_next = engine._seq_next
            for flow in finished:
                self._bytes_moved += flow.remaining
                flow.remaining = 0.0
                waiter = flow.waiter
                if waiter is not None:
                    flow.waiter = None
                    runq.append((seq_next(), waiter, None, None))
                    waiter._suspension = None
            # The finished flow was (almost always) the tracked argmin;
            # rescan the survivors while we already hold them.
            best: Optional[_Flow] = None
            best_completion = 0.0
            for flow in flows:
                completion = self._next_completion_of(flow)
                if best is None or completion < best_completion:
                    best = flow
                    best_completion = completion
            self._min_flow = best

    def _on_alarm(self) -> None:
        """Alarm callback: credit progress, then re-arm for the new argmin.

        ``_min_flow`` is ``None`` exactly when no flows remain (the
        ``_settle`` rescan maintains this), so a drained device simply
        stops re-arming — matching the old one-shot timer's behaviour of
        firing once more after drain and going quiet.
        """
        self._settle()
        flow = self._min_flow
        if flow is not None:
            next_completion = flow.remaining / (
                self.capacity * flow.weight / self._weight_total
            )
            if next_completion < 0:
                raise SimulationError(
                    "negative completion time in bandwidth model"
                )
            self._alarm.arm(self.engine._now + next_completion)
