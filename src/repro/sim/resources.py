"""Countable resources with FIFO/priority queueing.

A :class:`Resource` models a pool of identical units (optical drives, the
robotic arm, burner slots).  Processes acquire a unit by yielding
``Acquire(resource, priority)`` and receive a :class:`Grant`; releasing the
grant wakes the next queued process.  Lower ``priority`` values are served
first; ties are FIFO.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Optional

from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine, Process


class Grant:
    """A held unit of a resource; release exactly once."""

    __slots__ = ("resource", "released")

    def __init__(self, resource: "Resource"):
        self.resource = resource
        self.released = False

    def release(self) -> None:
        if self.released:
            raise SimulationError("grant released twice")
        self.released = True
        self.resource._release_one()


class Resource:
    """A pool of ``capacity`` identical units with a priority queue."""

    def __init__(self, engine: "Engine", capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: list[tuple[int, int, "Process"]] = []
        self._sequence = itertools.count()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def try_acquire(self) -> Optional[Grant]:
        """Non-blocking acquire: a Grant if a unit is free *and* no process
        is queued ahead, else ``None``."""
        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
            return Grant(self)
        return None

    # ------------------------------------------------------------------
    # Engine integration
    # ------------------------------------------------------------------
    def _enqueue(self, process: "Process", priority: int) -> None:
        entry = (priority, next(self._sequence), process)
        heapq.heappush(self._queue, entry)
        process._suspension = self
        self._dispatch()

    def _detach(self, process: "Process") -> None:
        """Remove an interrupted process from the queue (engine callback)."""
        self._queue = [entry for entry in self._queue if entry[2] is not process]
        heapq.heapify(self._queue)

    def _release_one(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"resource {self.name!r} over-released")
        self._in_use -= 1
        self._dispatch()

    def _dispatch(self) -> None:
        while self._queue and self._in_use < self.capacity:
            _prio, _seq, process = heapq.heappop(self._queue)
            self._in_use += 1
            self.engine._schedule_resume(process, value=Grant(self))
