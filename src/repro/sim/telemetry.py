"""Telemetry: periodic sampling of simulation state into time series.

Benchmarks and examples often need "X over simulated time" (Figure 9's
aggregate-throughput curve, buffer occupancy, queue depths).  A
:class:`Sampler` runs as a background process, evaluating named probe
callables on a fixed period and accumulating ``(t, value)`` series until
stopped or until its horizon passes.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.sim.engine import Delay, Engine


class Sampler:
    """Samples named probes every ``period`` seconds of simulated time."""

    def __init__(
        self,
        engine: Engine,
        period: float,
        probes: dict[str, Callable[[], float]],
        horizon: Optional[float] = None,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        if not probes:
            raise ValueError("need at least one probe")
        self.engine = engine
        self.period = float(period)
        self.probes = dict(probes)
        self.horizon = horizon
        self.series: dict[str, list[tuple[float, float]]] = {
            name: [] for name in probes
        }
        self._stopped = False
        self._process = None

    # ------------------------------------------------------------------
    def start(self) -> "Sampler":
        self._process = self.engine.spawn(self._run(), name="sampler")
        return self

    def stop(self) -> None:
        self._stopped = True

    def _run(self) -> Generator:
        deadline = (
            self.engine.now + self.horizon if self.horizon is not None else None
        )
        while not self._stopped:
            yield Delay(self.period)
            if deadline is not None and self.engine.now > deadline:
                return
            now = self.engine.now
            for name, probe in self.probes.items():
                self.series[name].append((now, float(probe())))

    # ------------------------------------------------------------------
    # Series analysis helpers
    # ------------------------------------------------------------------
    def values(self, name: str) -> list[float]:
        return [value for _, value in self.series[name]]

    def peak(self, name: str) -> float:
        values = self.values(name)
        return max(values) if values else 0.0

    def mean(self, name: str) -> float:
        values = self.values(name)
        return sum(values) / len(values) if values else 0.0

    def time_above(self, name: str, threshold: float) -> float:
        """Simulated seconds the series spent at or above ``threshold``."""
        return self.period * sum(
            1 for value in self.values(name) if value >= threshold
        )

    def to_rows(self, stride: int = 1) -> list[dict]:
        """Tabular form for report printing (one row per sample time)."""
        if not self.series:
            return []
        names = list(self.series)
        length = min(len(self.series[name]) for name in names)
        rows = []
        for index in range(0, length, max(1, stride)):
            row = {"t_s": round(self.series[names[0]][index][0], 1)}
            for name in names:
                row[name] = round(self.series[name][index][1], 2)
            rows.append(row)
        return rows
