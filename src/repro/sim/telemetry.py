"""Telemetry: periodic sampling of simulation state into time series.

Benchmarks and examples often need "X over simulated time" (Figure 9's
aggregate-throughput curve, buffer occupancy, queue depths).  A
:class:`Sampler` runs as a background process, evaluating named probe
callables on a fixed period and accumulating ``(t, value)`` series until
stopped or until its horizon passes.

Stopping is immediate: :meth:`Sampler.stop` interrupts the background
process at its current suspension point instead of waiting for the next
tick, so no sample is ever collected after ``stop()`` returns.  Samplers
are also context managers — ``with Sampler(...) as s:`` starts on entry
and stops on exit.

The whole-run aggregate types (:class:`MetricsRegistry` and its
counters/gauges/le-histograms, including :meth:`Histogram.quantile` for
percentile reports) are re-exported here alongside the sampler so
telemetry consumers import from one place.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.sim.engine import Delay, Engine, Interrupt
from repro.sim.tracing import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sampler",
]


class Sampler:
    """Samples named probes every ``period`` seconds of simulated time.

    ``on_tick(now)``, if given, is invoked after each round of probe
    evaluation — observers such as :class:`repro.obs.health.SystemMonitor`
    use it to take richer snapshots on the same cadence without a second
    background process.
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        probes: dict[str, Callable[[], float]],
        horizon: Optional[float] = None,
        on_tick: Optional[Callable[[float], None]] = None,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        if not probes and on_tick is None:
            raise ValueError("need at least one probe")
        self.engine = engine
        self.period = float(period)
        self.probes = dict(probes)
        self.horizon = horizon
        self.on_tick = on_tick
        self.series: dict[str, list[tuple[float, float]]] = {
            name: [] for name in probes
        }
        self._stopped = False
        self._process = None

    # ------------------------------------------------------------------
    def start(self) -> "Sampler":
        """Start (or restart after ``stop``) the sampling process."""
        if self._process is not None and not self._process.done:
            return self
        self._stopped = False
        self._process = self.engine.spawn(self._run(), name="sampler")
        return self

    def stop(self) -> None:
        """Stop sampling immediately.

        Interrupts the background process at its current ``Delay`` so the
        stop takes effect *now*, not at the next tick; a sampler stopped
        before its first tick records zero samples.  Idempotent.
        """
        if self._stopped:
            return
        self._stopped = True
        process = self._process
        if (
            process is not None
            and not process.done
            and process._suspension is not None
        ):
            process.interrupt("sampler-stop")

    def __enter__(self) -> "Sampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _run(self) -> Generator:
        deadline = (
            self.engine.now + self.horizon if self.horizon is not None else None
        )
        try:
            while not self._stopped:
                yield Delay(self.period)
                # Re-check after the delay: stop() from a running process
                # (no suspension to interrupt) must still drop this tick.
                if self._stopped:
                    return
                if deadline is not None and self.engine.now > deadline:
                    return
                now = self.engine.now
                for name, probe in self.probes.items():
                    self.series[name].append((now, float(probe())))
                if self.on_tick is not None:
                    self.on_tick(now)
        except Interrupt:
            return

    # ------------------------------------------------------------------
    # Series analysis helpers
    # ------------------------------------------------------------------
    def values(self, name: str) -> list[float]:
        return [value for _, value in self.series[name]]

    def peak(self, name: str) -> float:
        values = self.values(name)
        return max(values) if values else 0.0

    def mean(self, name: str) -> float:
        values = self.values(name)
        return sum(values) / len(values) if values else 0.0

    def time_above(self, name: str, threshold: float) -> float:
        """Simulated seconds the series spent at or above ``threshold``."""
        return self.period * sum(
            1 for value in self.values(name) if value >= threshold
        )

    def to_rows(self, stride: int = 1) -> list[dict]:
        """Tabular form for report printing (one row per sample time)."""
        if not self.series:
            return []
        names = list(self.series)
        length = min(len(self.series[name]) for name in names)
        rows = []
        for index in range(0, length, max(1, stride)):
            row = {"t_s": round(self.series[names[0]][index][0], 1)}
            for name in names:
                row[name] = round(self.series[name][index][1], 2)
            rows.append(row)
        return rows
