"""Deterministic discrete-event simulation engine.

This package provides the substrate on which every timed component of the
ROS reproduction runs: a single simulated clock, generator-based processes,
FIFO/priority resources and a processor-sharing bandwidth model used for
I/O-stream interference.

The engine is deliberately small and dependency-free.  Processes are plain
Python generators that ``yield`` *effects* (:class:`Delay`, :class:`Wait`,
:class:`Acquire`, ...) and receive the effect's result back at the yield
point, in the style of SimPy::

    def worker(engine, resource):
        grant = yield Acquire(resource)
        yield Delay(2.5)
        grant.release()
        return "done"

    engine = Engine()
    result = engine.run_process(worker(engine, resource))
"""

from repro.sim.engine import (
    Acquire,
    AllOf,
    Delay,
    Engine,
    FirstOf,
    Interrupt,
    Join,
    Process,
    SimEvent,
    Spawn,
    Wait,
)
from repro.sim.resources import Grant, Resource
from repro.sim.bandwidth import SharedBandwidth
from repro.sim.rng import DeterministicRNG
from repro.sim.tracing import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Span,
    Tracer,
    to_chrome_trace,
    to_flat_json,
)

__all__ = [
    "Acquire",
    "AllOf",
    "Counter",
    "Delay",
    "DeterministicRNG",
    "Engine",
    "FirstOf",
    "Gauge",
    "Grant",
    "Histogram",
    "Interrupt",
    "Join",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Process",
    "Resource",
    "SharedBandwidth",
    "SimEvent",
    "Span",
    "Spawn",
    "Tracer",
    "to_chrome_trace",
    "to_flat_json",
    "Wait",
]
