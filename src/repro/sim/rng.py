"""Deterministic random-number helpers.

Every stochastic element of the simulation (fail-safe speed dips, sector
error injection, workload file sizes) draws from a :class:`DeterministicRNG`
seeded explicitly, so whole-system runs are bit-reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np


class DeterministicRNG:
    """Thin wrapper around :class:`numpy.random.Generator` with sub-streams.

    ``child(label)`` derives an independent, reproducible stream for a
    subsystem so that adding draws in one component never perturbs another.
    """

    def __init__(self, seed: int = 0x5EED):
        self.seed = int(seed)
        self._generator = np.random.default_rng(self.seed)

    def child(self, label: str) -> "DeterministicRNG":
        material = f"{self.seed}:{label}".encode()
        digest = hashlib.sha256(material).digest()
        return DeterministicRNG(int.from_bytes(digest[:8], "little"))

    # Convenience passthroughs -----------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._generator.uniform(low, high))

    def exponential(self, mean: float) -> float:
        return float(self._generator.exponential(mean))

    def integers(self, low: int, high: int) -> int:
        return int(self._generator.integers(low, high))

    def choice(self, sequence):
        index = int(self._generator.integers(0, len(sequence)))
        return sequence[index]

    def bytes(self, length: int) -> bytes:
        return self._generator.bytes(length)

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self._generator.lognormal(mean, sigma))

    # Batch draws ------------------------------------------------------
    # numpy Generators produce the *same underlying stream* for one
    # size-n array draw as for n sequential scalar draws of the same
    # distribution, so a consumer may switch between scalar and batch
    # (or split one batch into several) without changing the values it
    # sees.  The vectorized load generator leans on this; the
    # scalar↔batch equivalence is pinned by a hypothesis property test.
    def uniform_array(
        self, n: int, low: float = 0.0, high: float = 1.0
    ) -> np.ndarray:
        return self._generator.uniform(low, high, int(n))

    def exponential_array(self, mean: float, n: int) -> np.ndarray:
        return self._generator.exponential(mean, int(n))
