"""Core discrete-event engine: clock, timers, processes and effects.

The engine owns a single simulated clock (seconds, float) and an event heap.
Simulation *processes* are Python generators that yield effect objects; the
engine interprets each effect, suspends the process and resumes it with the
effect's result once the effect completes.

Supported effects
-----------------
``Delay(seconds)``
    Suspend the process for a fixed amount of simulated time.
``Wait(event)``
    Suspend until ``event.succeed(value)`` is called; resumes with ``value``.
``Spawn(generator)``
    Start a child process running concurrently; resumes immediately with the
    child's :class:`Process` handle.
``Join(process)``
    Suspend until the given process finishes; resumes with its return value,
    or re-raises the exception that killed it.
``AllOf(processes)``
    Suspend until every process in the list finishes; resumes with the list
    of their return values (raises the first failure).
``Acquire(resource, priority=0)``
    Queue on a :class:`repro.sim.resources.Resource`; resumes with a
    :class:`repro.sim.resources.Grant` once capacity is available.

Processes may also be interrupted (:meth:`Process.interrupt`), which raises
:class:`Interrupt` inside the generator at its current yield point.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.tracing import NULL_TRACER


class SimulationError(RuntimeError):
    """Raised for engine-level failures (deadlock, misuse of effects)."""


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Effect:
    """Base class for objects a process may yield to the engine."""

    __slots__ = ()


class Delay(Effect):
    """Suspend the yielding process for ``seconds`` of simulated time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError(f"negative delay: {seconds!r}")
        self.seconds = float(seconds)

    def __repr__(self) -> str:
        return f"Delay({self.seconds!r})"


class Wait(Effect):
    """Suspend the yielding process until the event fires."""

    __slots__ = ("event",)

    def __init__(self, event: "SimEvent"):
        self.event = event


class Spawn(Effect):
    """Start a child process; the yield resumes immediately with its handle."""

    __slots__ = ("generator", "name")

    def __init__(self, generator: Generator, name: str = ""):
        self.generator = generator
        self.name = name


class Join(Effect):
    """Suspend until ``process`` completes; resumes with its return value."""

    __slots__ = ("process",)

    def __init__(self, process: "Process"):
        self.process = process


class AllOf(Effect):
    """Suspend until every process in ``processes`` completes."""

    __slots__ = ("processes",)

    def __init__(self, processes: Iterable["Process"]):
        self.processes = list(processes)


class FirstOf(Effect):
    """Suspend until the *first* of several processes completes.

    Resumes with ``(index, result)`` of the winner; a losing process keeps
    running (interrupt it explicitly if its work is moot).  If the winner
    failed, its exception is re-raised in the waiter.
    """

    __slots__ = ("processes",)

    def __init__(self, processes: Iterable["Process"]):
        self.processes = list(processes)
        if not self.processes:
            raise ValueError("FirstOf needs at least one process")


class Acquire(Effect):
    """Queue on a resource; resumes with a Grant when capacity is free."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource, priority: int = 0):
        self.resource = resource
        self.priority = priority


class Timer:
    """Handle for a scheduled callback; may be cancelled before it fires."""

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class SimEvent:
    """One-shot event that processes can wait on.

    ``succeed(value)`` wakes every waiter with ``value``; ``fail(exc)``
    raises ``exc`` in every waiter.  Waiters that arrive after the event has
    fired resume immediately.
    """

    __slots__ = ("engine", "name", "_fired", "_value", "_exception", "_waiters")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._fired = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._waiters: list["Process"] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"event {self.name!r} has not fired")
        return self._value

    def succeed(self, value: Any = None) -> None:
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.engine._schedule_resume(process, value=value)

    def fail(self, exception: BaseException) -> None:
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._exception = exception
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.engine._schedule_resume(process, exception=exception)

    def _add_waiter(self, process: "Process") -> None:
        if self._fired:
            if self._exception is not None:
                self.engine._schedule_resume(process, exception=self._exception)
            else:
                self.engine._schedule_resume(process, value=self._value)
        else:
            self._waiters.append(process)

    def _remove_waiter(self, process: "Process") -> None:
        if process in self._waiters:
            self._waiters.remove(process)


class Process:
    """A running simulation process wrapping a generator.

    The engine resumes the generator each time its pending effect completes.
    ``done``, ``result`` and ``error`` expose the terminal state; other
    processes can wait for completion via the :class:`Join` effect.
    """

    __slots__ = (
        "engine",
        "name",
        "_generator",
        "done",
        "_result",
        "_error",
        "_error_observed",
        "_completion_waiters",
        "_pending_cancel",
        "_waiting_on",
        "span_parent",
        "_span_stack",
    )

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        self.engine = engine
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self.done = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._error_observed = False
        self._completion_waiters: list[Process] = []
        # Callback that detaches this process from whatever it is waiting on
        # (timer, event, resource queue); used by interrupt().
        self._pending_cancel: Optional[Callable[[], None]] = None
        self._waiting_on: Optional[str] = None
        # Tracing context: the span that was active when this process was
        # spawned (background work attaches under it), and this process's
        # own stack of open spans (created lazily by the tracer).
        self.span_parent = None
        self._span_stack: Optional[list] = None

    @property
    def result(self) -> Any:
        if not self.done:
            raise SimulationError(f"process {self.name!r} still running")
        if self._error is not None:
            self._error_observed = True
            raise self._error
        return self._result

    @property
    def error(self) -> Optional[BaseException]:
        self._error_observed = True
        return self._error

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process at its current yield point.

        Raises :class:`Interrupt` inside the generator.  Interrupting a
        finished process is a no-op.
        """
        if self.done:
            return
        if self._pending_cancel is None:
            raise SimulationError(
                f"cannot interrupt process {self.name!r}: not suspended"
            )
        self._pending_cancel()
        self._pending_cancel = None
        self._waiting_on = None
        self.engine._schedule_resume(self, exception=Interrupt(cause))

    def __repr__(self) -> str:
        state = "done" if self.done else f"waiting:{self._waiting_on}"
        return f"<Process {self.name} {state}>"


class _NullFaults:
    """No-op fault hook: instrumented sites see a fault-free system.

    Defined here (not in :mod:`repro.faults`) because the real
    :class:`~repro.faults.injector.FaultInjector` imports this module;
    mirroring the ``NULL_TRACER`` pattern keeps the dependency one-way.
    """

    enabled = False

    def check(self, site: str, target: str = ""):
        return None


NULL_FAULTS = _NullFaults()


class Engine:
    """The discrete-event simulator: clock, heap and process scheduler."""

    def __init__(self):
        self._now = 0.0
        self._heap: list[tuple[float, int, Timer]] = []
        self._sequence = itertools.count()
        self._active: int = 0  # number of live (unfinished) processes
        #: the process whose generator is currently being stepped (tracing
        #: context; resumes always go through the heap, so steps never nest)
        self.current_process: Optional[Process] = None
        #: tracer hook; replace with :class:`repro.sim.tracing.Tracer`
        self.trace = NULL_TRACER
        #: fault hook; replace with :class:`repro.faults.FaultInjector`
        self.faults = NULL_FAULTS

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def is_idle(self) -> bool:
        """No live processes and no pending timers: the engine has drained.

        The chaos-campaign "no deadlock" invariant checks this after a
        full ``run()``; a stuck process (live but unscheduled) keeps
        ``_active`` positive with an empty heap.
        """
        if self._active != 0:
            return False
        return not any(not timer.cancelled for _t, _s, timer in self._heap)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callable[[], None]) -> Timer:
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule in the past: {time} < {self._now}"
            )
        timer = Timer(max(time, self._now), callback)
        heapq.heappush(self._heap, (timer.time, next(self._sequence), timer))
        return timer

    def call_later(self, delay: float, callback: Callable[[], None]) -> Timer:
        return self.call_at(self._now + delay, callback)

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process; it first runs at the current simulated time."""
        process = Process(self, generator, name)
        parent = self.trace.active_span()
        if parent is not None:
            process.span_parent = parent
        self._active += 1
        self._schedule_resume(process, value=None, first=True)
        return process

    def run(self, until: Optional[float] = None) -> None:
        """Run scheduled events, optionally stopping at simulated time ``until``."""
        while self._heap:
            time, _seq, timer = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = time
            timer.callback()
        if until is not None and self._now < until:
            self._now = until

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Spawn ``generator`` and run the simulation until it completes.

        Stops as soon as the process finishes — background processes keep
        their pending events queued for later ``run``/``run_process`` calls.
        Returns the process's return value, re-raises its exception, and
        raises :class:`SimulationError` on deadlock (event exhaustion while
        the process is still suspended).
        """
        process = self.spawn(generator, name)
        while not process.done and self._heap:
            time, _seq, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = time
            timer.callback()
        if not process.done:
            raise SimulationError(
                f"deadlock: process {process.name!r} never completed "
                f"(waiting on {process._waiting_on})"
            )
        return process.result

    # ------------------------------------------------------------------
    # Internal: resuming processes and interpreting effects
    # ------------------------------------------------------------------
    def _schedule_resume(
        self,
        process: Process,
        value: Any = None,
        exception: Optional[BaseException] = None,
        first: bool = False,
    ) -> None:
        def resume() -> None:
            self._step(process, value, exception)

        self.call_at(self._now, resume)
        if not first:
            process._pending_cancel = None

    def _step(
        self,
        process: Process,
        value: Any,
        exception: Optional[BaseException],
    ) -> None:
        generator = process._generator
        process._pending_cancel = None
        process._waiting_on = None
        previous = self.current_process
        self.current_process = process
        try:
            try:
                if exception is not None:
                    effect = generator.throw(exception)
                else:
                    effect = generator.send(value)
            except StopIteration as stop:
                self._finish(process, result=stop.value)
                return
            except Exception as error:  # noqa: BLE001 - propagate via joiners
                self._finish(process, error=error)
                return
            self._apply_effect(process, effect)
        finally:
            self.current_process = previous

    def _apply_effect(self, process: Process, effect: Any) -> None:
        if isinstance(effect, Delay):
            timer = self.call_later(
                effect.seconds, lambda: self._step(process, None, None)
            )
            process._pending_cancel = timer.cancel
            process._waiting_on = f"delay({effect.seconds:.3f}s)"
        elif isinstance(effect, Wait):
            event = effect.event
            event._add_waiter(process)
            process._pending_cancel = lambda: event._remove_waiter(process)
            process._waiting_on = f"event({event.name})"
        elif isinstance(effect, Spawn):
            child = self.spawn(effect.generator, effect.name)
            self._schedule_resume(process, value=child)
        elif isinstance(effect, Join):
            self._join(process, effect.process)
        elif isinstance(effect, AllOf):
            self._join_all(process, effect.processes)
        elif isinstance(effect, FirstOf):
            self._join_first(process, effect.processes)
        elif isinstance(effect, Acquire):
            effect.resource._enqueue(process, effect.priority)
        else:
            self._finish(
                process,
                error=SimulationError(
                    f"process {process.name!r} yielded non-effect {effect!r}"
                ),
            )

    def _join(self, waiter: Process, target: Process) -> None:
        if target.done:
            if target._error is not None:
                target._error_observed = True
                self._schedule_resume(waiter, exception=target._error)
            else:
                self._schedule_resume(waiter, value=target._result)
        else:
            target._completion_waiters.append(waiter)
            waiter._pending_cancel = (
                lambda: target._completion_waiters.remove(waiter)
                if waiter in target._completion_waiters
                else None
            )
            waiter._waiting_on = f"join({target.name})"

    def _join_all(self, waiter: Process, targets: list[Process]) -> None:
        def collector() -> Generator:
            results = []
            for target in targets:
                results.append((yield Join(target)))
            return results

        self._join(waiter, self.spawn(collector(), name="allof"))

    def _join_first(self, waiter: Process, targets: list[Process]) -> None:
        finish_line = self.event("firstof")

        def forwarder(index: int, target: Process) -> Generator:
            try:
                result = yield Join(target)
            except BaseException as error:  # noqa: BLE001
                if not finish_line.fired:
                    finish_line.fail(error)
                return
            if not finish_line.fired:
                finish_line.succeed((index, result))

        def racer() -> Generator:
            for index, target in enumerate(targets):
                yield Spawn(forwarder(index, target), name=f"race-{index}")
            winner = yield Wait(finish_line)
            return winner

        self._join(waiter, self.spawn(racer(), name="firstof"))

    def _finish(
        self,
        process: Process,
        result: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        process.done = True
        process._result = result
        process._error = error
        self._active -= 1
        waiters, process._completion_waiters = process._completion_waiters, []
        for waiter in waiters:
            if error is not None:
                process._error_observed = True
                self._schedule_resume(waiter, exception=error)
            else:
                self._schedule_resume(waiter, value=result)
