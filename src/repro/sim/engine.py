"""Core discrete-event engine: clock, timers, processes and effects.

The engine owns a single simulated clock (seconds, float) and an event heap.
Simulation *processes* are Python generators that yield effect objects; the
engine interprets each effect, suspends the process and resumes it with the
effect's result once the effect completes.

Supported effects
-----------------
``Delay(seconds)``
    Suspend the process for a fixed amount of simulated time.
``Wait(event)``
    Suspend until ``event.succeed(value)`` is called; resumes with ``value``.
``Spawn(generator)``
    Start a child process running concurrently; resumes immediately with the
    child's :class:`Process` handle.
``Join(process)``
    Suspend until the given process finishes; resumes with its return value,
    or re-raises the exception that killed it.
``AllOf(processes)``
    Suspend until every process in the list finishes; resumes with the list
    of their return values (raises the first failure).
``Acquire(resource, priority=0)``
    Queue on a :class:`repro.sim.resources.Resource`; resumes with a
    :class:`repro.sim.resources.Grant` once capacity is available.

Processes may also be interrupted (:meth:`Process.interrupt`), which raises
:class:`Interrupt` inside the generator at its current yield point.

Scheduling fast path
--------------------
Most events in a run are *same-time resumes*: a process finished an effect
at the current instant and must continue (spawns, ``Delay(0)``, event
``succeed``, joins, resource grants).  Pushing each of those through the
heap costs two ``heapq`` operations plus a closure allocation per step.
Instead the engine keeps a FIFO *run queue* (a deque of
``(sequence, process, value, exception)`` tuples) for same-time resumes and
reserves the heap for genuinely future timers — only ``Delay`` and explicit
``call_at``/``call_later`` callbacks ever touch it.  Run-queue entries and
heap entries draw sequence numbers from the same counter, and the main
loops merge the two sources in global ``(time, sequence)`` order — so
observable event ordering is exactly what a single heap would produce (the
same-time FIFO contract is pinned by a property test in
``tests/test_sim_engine.py``).

Three further allocations are shaved off the per-event path: a ``Delay``
pushes its ``(time, sequence, process)`` heap entry directly — no
:class:`Timer` object at all; the entry is live iff the process's
``_suspension`` slot still holds that exact tuple (valued resumes only
ever travel via the run queue, so heap entries carry no payload) — a
suspended process records *what* it is waiting on as a plain object
reference in ``_suspension`` (no per-suspension cancel closure;
:meth:`Process.interrupt` dispatches on the object's type), and cancelled
timers are counted so :attr:`Engine.is_idle` is O(1) and the heap is
compacted once more than half of it is dead.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.tracing import NULL_TRACER

#: Compact the heap only above this size (tiny heaps aren't worth it).
_COMPACT_MIN_HEAP = 64


class SimulationError(RuntimeError):
    """Raised for engine-level failures (deadlock, misuse of effects)."""


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Effect:
    """Base class for objects a process may yield to the engine."""

    __slots__ = ()


class Delay(Effect):
    """Suspend the yielding process for ``seconds`` of simulated time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError(f"negative delay: {seconds!r}")
        self.seconds = float(seconds)

    def __repr__(self) -> str:
        return f"Delay({self.seconds!r})"


class Wait(Effect):
    """Suspend the yielding process until the event fires."""

    __slots__ = ("event",)

    def __init__(self, event: "SimEvent"):
        self.event = event


class Spawn(Effect):
    """Start a child process; the yield resumes immediately with its handle."""

    __slots__ = ("generator", "name")

    def __init__(self, generator: Generator, name: str = ""):
        self.generator = generator
        self.name = name


class Join(Effect):
    """Suspend until ``process`` completes; resumes with its return value."""

    __slots__ = ("process",)

    def __init__(self, process: "Process"):
        self.process = process


class AllOf(Effect):
    """Suspend until every process in ``processes`` completes."""

    __slots__ = ("processes",)

    def __init__(self, processes: Iterable["Process"]):
        self.processes = list(processes)


class FirstOf(Effect):
    """Suspend until the *first* of several processes completes.

    Resumes with ``(index, result)`` of the winner; a losing process keeps
    running (interrupt it explicitly if its work is moot).  If the winner
    failed, its exception is re-raised in the waiter.
    """

    __slots__ = ("processes",)

    def __init__(self, processes: Iterable["Process"]):
        self.processes = list(processes)
        if not self.processes:
            raise ValueError("FirstOf needs at least one process")


class Acquire(Effect):
    """Queue on a resource; resumes with a Grant when capacity is free."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource, priority: int = 0):
        self.resource = resource
        self.priority = priority


class Park(Effect):
    """Base for effects that park the yielding process *on themselves*.

    A :class:`Wait` costs a :class:`SimEvent` allocation plus waiter-list
    bookkeeping per use; models that create one single-waiter event per
    operation (the bandwidth model's per-transfer completion) can instead
    yield a ``Park`` subclass that stores the waiter in a slot of its own.
    Contract: ``_attach(process)`` records the waiter; ``_detach(process)``
    (called by :meth:`Process.interrupt`) forgets it; the owner resumes the
    waiter later via ``engine._schedule_resume`` — or a fused inline
    equivalent — exactly once, skipping it if detached.
    """

    __slots__ = ()

    def _attach(self, process: "Process") -> None:  # pragma: no cover
        raise NotImplementedError

    def _detach(self, process: "Process") -> None:  # pragma: no cover
        raise NotImplementedError


class Timer:
    """Handle for a scheduled callback; may be cancelled before it fires.

    Timers exist only for explicit ``call_at``/``call_later`` callbacks;
    ``Delay`` suspensions skip the object entirely and push a bare
    ``(time, sequence, process)`` tuple on the heap (the entry is live
    iff the process's ``_suspension`` slot still holds that exact tuple).
    """

    __slots__ = ("engine", "time", "callback", "cancelled")

    def __init__(self, engine: "Engine", time: float,
                 callback: Callable[[], None]):
        self.engine = engine
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        # The run loops set ``cancelled`` just before invoking a firing
        # timer's callback, so cancel-after-fire is a no-op and the
        # live/dead counters stay exact.
        if self.cancelled:
            return
        self.cancelled = True
        engine = self.engine
        engine._live_timers -= 1
        engine._dead_timers += 1
        # Amortized heap hygiene: once the heap is mostly corpses, rebuild
        # it without them.  Keeps long flow-churn runs bounded in memory.
        if (
            engine._dead_timers * 2 > len(engine._heap)
            and len(engine._heap) > _COMPACT_MIN_HEAP
        ):
            engine._compact_heap()


class Alarm:
    """Re-armable heap callback: one object, arbitrarily many arms.

    A :class:`Timer` is a one-shot handle — every ``call_later`` allocates a
    fresh object and every reschedule pays a ``cancel``.  Components that
    re-arm the *same* logical deadline on every event (the bandwidth model
    re-times its next-completion on each flow arrival) instead keep one
    Alarm and call :meth:`arm` with the new absolute time.  Liveness uses
    the ``Delay`` protocol: the pushed ``(time, sequence, alarm)`` entry is
    live iff ``_suspension`` still holds that exact tuple, so re-arming or
    :meth:`disarm` just replaces/clears the slot — no allocation, no flag.
    """

    __slots__ = ("engine", "callback", "_suspension")

    def __init__(self, engine: "Engine", callback: Callable[[], None]):
        self.engine = engine
        self.callback = callback
        self._suspension: Any = None

    @property
    def armed(self) -> bool:
        return self._suspension is not None

    def arm(self, time: float) -> None:
        """(Re-)schedule the callback at absolute simulated ``time``."""
        engine = self.engine
        heap = engine._heap
        if self._suspension is None:
            engine._live_timers += 1
        else:
            # Re-arm: old entry goes dead, new one live — net live count
            # unchanged.
            engine._dead_timers += 1
        entry = (time, engine._seq_next(), self)
        heapq.heappush(heap, entry)
        self._suspension = entry
        if (
            engine._dead_timers * 2 > len(heap)
            and len(heap) > _COMPACT_MIN_HEAP
        ):
            engine._compact_heap()

    def disarm(self) -> None:
        if self._suspension is None:
            return
        self._suspension = None
        engine = self.engine
        engine._live_timers -= 1
        engine._dead_timers += 1
        if (
            engine._dead_timers * 2 > len(engine._heap)
            and len(engine._heap) > _COMPACT_MIN_HEAP
        ):
            engine._compact_heap()


class SimEvent:
    """One-shot event that processes can wait on.

    ``succeed(value)`` wakes every waiter with ``value``; ``fail(exc)``
    raises ``exc`` in every waiter.  Waiters that arrive after the event has
    fired resume immediately.
    """

    __slots__ = ("engine", "name", "_fired", "_value", "_exception", "_waiters")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._fired = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._waiters: list["Process"] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"event {self.name!r} has not fired")
        return self._value

    def succeed(self, value: Any = None) -> None:
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        engine = self.engine
        runq = engine._runq
        seq_next = engine._seq_next
        for process in waiters:
            runq.append((seq_next(), process, value, None))
            process._suspension = None

    def fail(self, exception: BaseException) -> None:
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._exception = exception
        waiters, self._waiters = self._waiters, []
        engine = self.engine
        runq = engine._runq
        seq_next = engine._seq_next
        for process in waiters:
            runq.append((seq_next(), process, None, exception))
            process._suspension = None

    def _add_waiter(self, process: "Process") -> None:
        if self._fired:
            if self._exception is not None:
                self.engine._schedule_resume(process, exception=self._exception)
            else:
                self.engine._schedule_resume(process, value=self._value)
        else:
            self._waiters.append(process)

    def _remove_waiter(self, process: "Process") -> None:
        if process in self._waiters:
            self._waiters.remove(process)


class Process:
    """A running simulation process wrapping a generator.

    The engine resumes the generator each time its pending effect completes.
    ``done``, ``result`` and ``error`` expose the terminal state; other
    processes can wait for completion via the :class:`Join` effect.
    """

    __slots__ = (
        "engine",
        "name",
        "_generator",
        "done",
        "_result",
        "_error",
        "_error_observed",
        "_completion_waiters",
        "_suspension",
        "span_parent",
        "_span_stack",
    )

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        self.engine = engine
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self.done = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._error_observed = False
        self._completion_waiters: list[Process] = []
        # What this process is suspended on: the (time, seq, process)
        # heap entry (Delay), a Timer (callback delays), SimEvent (Wait),
        # Process (Join), an object with ``_detach(process)`` (resource
        # queues), or None when runnable/scheduled.  interrupt()
        # dispatches on the type; waiting_on() renders it for humans.
        self._suspension: Any = None
        # Tracing context: the span that was active when this process was
        # spawned (background work attaches under it), and this process's
        # own stack of open spans (created lazily by the tracer).
        self.span_parent = None
        self._span_stack: Optional[list] = None

    @property
    def result(self) -> Any:
        if not self.done:
            raise SimulationError(f"process {self.name!r} still running")
        if self._error is not None:
            self._error_observed = True
            raise self._error
        return self._result

    @property
    def error(self) -> Optional[BaseException]:
        self._error_observed = True
        return self._error

    def waiting_on(self) -> Optional[str]:
        """Human-readable description of the pending effect (or ``None``)."""
        suspension = self._suspension
        if suspension is None or isinstance(suspension, str):
            return suspension
        kind = type(suspension)
        if kind is tuple:
            return f"delay(until t={suspension[0]:.3f}s)"
        if kind is Timer:
            return f"delay(until t={suspension.time:.3f}s)"
        if kind is SimEvent:
            return f"event({suspension.name})"
        if kind is Process:
            return f"join({suspension.name})"
        return (
            f"{kind.__name__.lower()}({getattr(suspension, 'name', '')})"
        )

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process at its current yield point.

        Raises :class:`Interrupt` inside the generator.  Interrupting a
        finished process is a no-op.
        """
        if self.done:
            return
        suspension = self._suspension
        if suspension is None:
            raise SimulationError(
                f"cannot interrupt process {self.name!r}: not suspended"
            )
        # Clear the slot *before* any heap compaction: a Delay heap entry
        # is live iff this slot still holds it, so clearing is the cancel.
        self._suspension = None
        kind = type(suspension)
        if kind is tuple:
            engine = self.engine
            engine._live_timers -= 1
            engine._dead_timers += 1
            if (
                engine._dead_timers * 2 > len(engine._heap)
                and len(engine._heap) > _COMPACT_MIN_HEAP
            ):
                engine._compact_heap()
        elif kind is Timer:
            suspension.cancel()
        elif kind is SimEvent:
            suspension._remove_waiter(self)
        elif kind is Process:
            if self in suspension._completion_waiters:
                suspension._completion_waiters.remove(self)
        else:
            suspension._detach(self)
        self.engine._schedule_resume(self, exception=Interrupt(cause))

    def __repr__(self) -> str:
        state = "done" if self.done else f"waiting:{self.waiting_on()}"
        return f"<Process {self.name} {state}>"


class _NullFaults:
    """No-op fault hook: instrumented sites see a fault-free system.

    Defined here (not in :mod:`repro.faults`) because the real
    :class:`~repro.faults.injector.FaultInjector` imports this module;
    mirroring the ``NULL_TRACER`` pattern keeps the dependency one-way.
    """

    enabled = False

    def check(self, site: str, target: str = ""):
        return None


NULL_FAULTS = _NullFaults()


class _NullRecorder:
    """No-op flight recorder: instrumented sites journal into the void.

    Defined here (not in :mod:`repro.obs`) for the same reason as
    :class:`_NullFaults` — the real
    :class:`~repro.obs.recorder.FlightRecorder` imports this module, so
    keeping the null object on the engine side leaves the dependency
    one-way and the ``engine.recorder.record(...)`` call sites free
    when monitoring is off.
    """

    enabled = False

    def record(self, kind: str, **fields) -> None:
        return None


NULL_RECORDER = _NullRecorder()


class Engine:
    """The discrete-event simulator: clock, run queue, heap and scheduler."""

    def __init__(self):
        self._now = 0.0
        #: heap entries are (time, sequence, Timer | Process): a Timer for
        #: callback scheduling, the suspended Process itself for Delays
        self._heap: list[tuple[float, int, Any]] = []
        #: FIFO of same-time resumes: (sequence, process, value, exception)
        self._runq: deque[tuple[int, "Process", Any,
                                Optional[BaseException]]] = deque()
        self._sequence = itertools.count()
        self._seq_next = self._sequence.__next__
        self._active: int = 0  # number of live (unfinished) processes
        self._live_timers: int = 0  # non-cancelled timers still in the heap
        self._dead_timers: int = 0  # cancelled timers still in the heap
        #: the process whose generator is currently being stepped (tracing
        #: context; resumes always go through the scheduler, never nested)
        self.current_process: Optional[Process] = None
        #: tracer hook; replace with :class:`repro.sim.tracing.Tracer`
        self.trace = NULL_TRACER
        #: fault hook; replace with :class:`repro.faults.FaultInjector`
        self.faults = NULL_FAULTS
        #: flight-recorder hook; replace with
        #: :class:`repro.obs.recorder.FlightRecorder`
        self.recorder = NULL_RECORDER

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def is_idle(self) -> bool:
        """No live processes, queued resumes or pending timers: drained.

        The chaos-campaign "no deadlock" invariant checks this after a
        full ``run()``; a stuck process (live but unscheduled) keeps
        ``_active`` positive with nothing scheduled.  O(1): live timers
        are counted as they are scheduled/cancelled/fired, never by
        scanning the heap.
        """
        return (
            self._active == 0
            and self._live_timers == 0
            and not self._runq
        )

    @property
    def pending_timers(self) -> int:
        """Number of scheduled, not-yet-cancelled timers (O(1))."""
        return self._live_timers

    @property
    def events_issued(self) -> int:
        """Sequence numbers drawn so far — a cheap proxy for event volume.

        Every scheduled occurrence (run-queue resume, Delay, timer, alarm
        arm) draws exactly one number, so this tracks engine work without
        a per-event counter increment on the hot path.
        """
        # itertools.count pickles as (count, (next_value,)): a
        # non-consuming peek at the counter.
        return self._sequence.__reduce__()[1][0]

    def next_event_time(self) -> Optional[float]:
        """Earliest pending occurrence time, or ``None`` when drained.

        Queued same-time resumes report the current clock.  Dead heap
        entries encountered while peeking are popped (with the usual
        accounting), so repeated peeks stay amortized O(log n).  Used by
        the sharded engine's conservative window merge.
        """
        if self._runq:
            return self._now
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            entry = heap[0]
            owner = entry[2]
            if owner.__class__ is Timer:
                if owner.cancelled:
                    heappop(heap)
                    self._dead_timers -= 1
                    continue
            elif owner._suspension is not entry:
                heappop(heap)
                self._dead_timers -= 1
                continue
            return entry[0]
        return None

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callable[[], None]) -> Timer:
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule in the past: {time} < {self._now}"
            )
        if time < self._now:
            time = self._now
        timer = Timer(self, time, callback)
        heapq.heappush(self._heap, (time, self._seq_next(), timer))
        self._live_timers += 1
        return timer

    def call_later(self, delay: float, callback: Callable[[], None]) -> Timer:
        return self.call_at(self._now + delay, callback)

    def _compact_heap(self) -> None:
        """Drop cancelled entries and re-heapify (same (time, seq) order).

        Compacts *in place*: ``run()``/``run_process()`` cache a ``heap``
        alias at loop entry, and compaction can trigger mid-run (a timer
        cancelled from a callback, ``Process.interrupt``), so rebinding
        ``self._heap`` would strand the running loop on a stale list.
        """
        alive = []
        for entry in self._heap:
            owner = entry[2]
            if owner.__class__ is Timer:
                if not owner.cancelled:
                    alive.append(entry)
            elif owner._suspension is entry:
                alive.append(entry)
        heapq.heapify(alive)
        self._heap[:] = alive
        self._dead_timers = 0

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process; it first runs at the current simulated time."""
        process = Process(self, generator, name)
        if self.trace.enabled:
            parent = self.trace.active_span()
            if parent is not None:
                process.span_parent = parent
        self._active += 1
        self._runq.append((self._seq_next(), process, None, None))
        return process

    def run(self, until: Optional[float] = None) -> None:
        """Run scheduled events, optionally stopping at simulated time ``until``."""
        heap = self._heap
        runq = self._runq
        heappop = heapq.heappop
        step = self._step
        while True:
            if runq:
                # Merge rule: a heap entry at the current instant runs
                # before a queued resume iff it was scheduled earlier.
                if heap:
                    entry = heap[0]
                    owner = entry[2]
                    if owner.__class__ is Timer:
                        if owner.cancelled:
                            heappop(heap)
                            self._dead_timers -= 1
                            continue
                        if entry[0] <= self._now and entry[1] < runq[0][0]:
                            heappop(heap)
                            self._live_timers -= 1
                            owner.cancelled = True  # consumed: see Timer.cancel
                            owner.callback()
                            continue
                    else:
                        if owner._suspension is not entry:
                            heappop(heap)
                            self._dead_timers -= 1
                            continue
                        if entry[0] <= self._now and entry[1] < runq[0][0]:
                            heappop(heap)
                            self._live_timers -= 1
                            owner._suspension = None
                            if owner.__class__ is Process:
                                step(owner, None, None)
                            else:
                                owner.callback()
                            continue
                _seq, process, value, exception = runq.popleft()
                step(process, value, exception)
                continue
            if not heap:
                break
            entry = heap[0]
            owner = entry[2]
            if owner.__class__ is Timer:
                if owner.cancelled:
                    heappop(heap)
                    self._dead_timers -= 1
                    continue
                if until is not None and entry[0] > until:
                    break
                heappop(heap)
                self._live_timers -= 1
                self._now = entry[0]
                owner.cancelled = True  # consumed: see Timer.cancel
                owner.callback()
            else:
                if owner._suspension is not entry:
                    heappop(heap)
                    self._dead_timers -= 1
                    continue
                if until is not None and entry[0] > until:
                    break
                heappop(heap)
                self._live_timers -= 1
                self._now = entry[0]
                owner._suspension = None
                if owner.__class__ is Process:
                    step(owner, None, None)
                else:
                    owner.callback()
        if until is not None and self._now < until:
            self._now = until

    def run_below(self, limit: float) -> None:
        """Run every pending occurrence strictly below time ``limit``.

        The conservative time-window primitive for
        :class:`repro.sim.shard.ShardedEngine`: same (time, sequence)
        merge discipline as :meth:`run`, but events *at* ``limit`` stay
        pending and the clock is left at the last processed occurrence —
        never advanced to ``limit`` — so a cross-shard delivery at
        ``limit`` can still interleave ahead of same-time local events.
        Queued same-time resumes count as occurrences at the current
        clock.
        """
        if self._now >= limit:
            return
        heap = self._heap
        runq = self._runq
        heappop = heapq.heappop
        step = self._step
        while True:
            if runq:
                if heap:
                    entry = heap[0]
                    owner = entry[2]
                    if owner.__class__ is Timer:
                        if owner.cancelled:
                            heappop(heap)
                            self._dead_timers -= 1
                            continue
                        if entry[0] <= self._now and entry[1] < runq[0][0]:
                            heappop(heap)
                            self._live_timers -= 1
                            owner.cancelled = True  # consumed: see Timer.cancel
                            owner.callback()
                            continue
                    else:
                        if owner._suspension is not entry:
                            heappop(heap)
                            self._dead_timers -= 1
                            continue
                        if entry[0] <= self._now and entry[1] < runq[0][0]:
                            heappop(heap)
                            self._live_timers -= 1
                            owner._suspension = None
                            if owner.__class__ is Process:
                                step(owner, None, None)
                            else:
                                owner.callback()
                            continue
                _seq, process, value, exception = runq.popleft()
                step(process, value, exception)
                continue
            if not heap:
                break
            entry = heap[0]
            owner = entry[2]
            if owner.__class__ is Timer:
                if owner.cancelled:
                    heappop(heap)
                    self._dead_timers -= 1
                    continue
                if entry[0] >= limit:
                    break
                heappop(heap)
                self._live_timers -= 1
                self._now = entry[0]
                owner.cancelled = True  # consumed: see Timer.cancel
                owner.callback()
            else:
                if owner._suspension is not entry:
                    heappop(heap)
                    self._dead_timers -= 1
                    continue
                if entry[0] >= limit:
                    break
                heappop(heap)
                self._live_timers -= 1
                self._now = entry[0]
                owner._suspension = None
                if owner.__class__ is Process:
                    step(owner, None, None)
                else:
                    owner.callback()

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Spawn ``generator`` and run the simulation until it completes.

        Stops as soon as the process finishes — background processes keep
        their pending events queued for later ``run``/``run_process`` calls.
        Returns the process's return value, re-raises its exception, and
        raises :class:`SimulationError` on deadlock (event exhaustion while
        the process is still suspended).
        """
        target = self.spawn(generator, name)
        heap = self._heap
        runq = self._runq
        heappop = heapq.heappop
        step = self._step
        while not target.done:
            if runq:
                if heap:
                    entry = heap[0]
                    owner = entry[2]
                    if owner.__class__ is Timer:
                        if owner.cancelled:
                            heappop(heap)
                            self._dead_timers -= 1
                            continue
                        if entry[0] <= self._now and entry[1] < runq[0][0]:
                            heappop(heap)
                            self._live_timers -= 1
                            owner.cancelled = True  # consumed: see Timer.cancel
                            owner.callback()
                            continue
                    else:
                        if owner._suspension is not entry:
                            heappop(heap)
                            self._dead_timers -= 1
                            continue
                        if entry[0] <= self._now and entry[1] < runq[0][0]:
                            heappop(heap)
                            self._live_timers -= 1
                            owner._suspension = None
                            if owner.__class__ is Process:
                                step(owner, None, None)
                            else:
                                owner.callback()
                            continue
                _seq, process, value, exception = runq.popleft()
                step(process, value, exception)
                continue
            if not heap:
                break
            entry = heappop(heap)
            owner = entry[2]
            if owner.__class__ is Timer:
                if owner.cancelled:
                    self._dead_timers -= 1
                    continue
                self._live_timers -= 1
                self._now = entry[0]
                owner.cancelled = True  # consumed: see Timer.cancel
                owner.callback()
            else:
                if owner._suspension is not entry:
                    self._dead_timers -= 1
                    continue
                self._live_timers -= 1
                self._now = entry[0]
                owner._suspension = None
                if owner.__class__ is Process:
                    step(owner, None, None)
                else:
                    owner.callback()
        if not target.done:
            raise SimulationError(
                f"deadlock: process {target.name!r} never completed "
                f"(waiting on {target.waiting_on()})"
            )
        return target.result

    # ------------------------------------------------------------------
    # Internal: resuming processes and interpreting effects
    # ------------------------------------------------------------------
    def _schedule_resume(
        self,
        process: Process,
        value: Any = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        self._runq.append((self._seq_next(), process, value, exception))
        process._suspension = None

    def _step(
        self,
        process: Process,
        value: Any,
        exception: Optional[BaseException],
    ) -> None:
        # Invariant: process._suspension is None here — every resume site
        # (run-queue enqueue or heap pop) clears it before calling _step.
        generator = process._generator
        previous = self.current_process
        self.current_process = process
        try:
            if exception is not None:
                effect = generator.throw(exception)
            else:
                effect = generator.send(value)
        except StopIteration as stop:
            self.current_process = previous
            self._finish(process, result=stop.value)
            return
        except Exception as error:  # noqa: BLE001 - propagate via joiners
            self.current_process = previous
            self._finish(process, error=error)
            return
        # Exact-type dispatch, inline: effects are closed, slotted
        # classes, so `is` checks cover every real yield without
        # isinstance walks or an extra call frame.  current_process stays
        # set through dispatch (Spawn's span parenting reads it); the
        # finally restores it even if a handler (resource._enqueue, a
        # custom Effect) raises, so span parenting can't inherit a stale
        # process.
        try:
            cls = effect.__class__
            if cls is Delay:
                entry = (self._now + effect.seconds, self._seq_next(), process)
                heapq.heappush(self._heap, entry)
                self._live_timers += 1
                process._suspension = entry
            elif cls is Wait:
                event = effect.event
                event._add_waiter(process)
                if not event._fired:
                    process._suspension = event
            elif cls is Spawn:
                child = self.spawn(effect.generator, effect.name)
                self._runq.append((self._seq_next(), process, child, None))
            elif cls is Join:
                self._join(process, effect.process)
            elif cls is AllOf:
                self._join_all(process, effect.processes)
            elif cls is FirstOf:
                self._join_first(process, effect.processes)
            elif cls is Acquire:
                effect.resource._enqueue(process, effect.priority)
            elif isinstance(effect, Park):
                effect._attach(process)
                process._suspension = effect
            elif isinstance(effect, Effect):  # subclassed effect: slow path
                self._apply_effect_slow(process, effect)
            else:
                self._finish(
                    process,
                    error=SimulationError(
                        f"process {process.name!r} yielded non-effect "
                        f"{effect!r}"
                    ),
                )
        finally:
            self.current_process = previous

    def _apply_effect_slow(self, process: Process, effect: Effect) -> None:
        """isinstance dispatch for Effect subclasses (cold path)."""
        if isinstance(effect, Delay):
            entry = (self._now + effect.seconds, self._seq_next(), process)
            heapq.heappush(self._heap, entry)
            self._live_timers += 1
            process._suspension = entry
        elif isinstance(effect, Wait):
            event = effect.event
            event._add_waiter(process)
            if not event._fired:
                process._suspension = event
        elif isinstance(effect, Spawn):
            child = self.spawn(effect.generator, effect.name)
            self._schedule_resume(process, value=child)
        elif isinstance(effect, Join):
            self._join(process, effect.process)
        elif isinstance(effect, AllOf):
            self._join_all(process, effect.processes)
        elif isinstance(effect, FirstOf):
            self._join_first(process, effect.processes)
        elif isinstance(effect, Acquire):
            effect.resource._enqueue(process, effect.priority)
        elif isinstance(effect, Park):
            effect._attach(process)
            process._suspension = effect
        else:
            self._finish(
                process,
                error=SimulationError(
                    f"process {process.name!r} yielded non-effect {effect!r}"
                ),
            )

    def _join(self, waiter: Process, target: Process) -> None:
        if target.done:
            if target._error is not None:
                target._error_observed = True
                self._schedule_resume(waiter, exception=target._error)
            else:
                self._schedule_resume(waiter, value=target._result)
        else:
            target._completion_waiters.append(waiter)
            waiter._suspension = target

    def _join_all(self, waiter: Process, targets: list[Process]) -> None:
        def collector() -> Generator:
            results = []
            for target in targets:
                results.append((yield Join(target)))
            return results

        self._join(waiter, self.spawn(collector(), name="allof"))

    def _join_first(self, waiter: Process, targets: list[Process]) -> None:
        finish_line = self.event("firstof")

        def forwarder(index: int, target: Process) -> Generator:
            try:
                result = yield Join(target)
            except BaseException as error:  # noqa: BLE001
                if not finish_line.fired:
                    finish_line.fail(error)
                return
            if not finish_line.fired:
                finish_line.succeed((index, result))

        def racer() -> Generator:
            for index, target in enumerate(targets):
                yield Spawn(forwarder(index, target), name=f"race-{index}")
            winner = yield Wait(finish_line)
            return winner

        self._join(waiter, self.spawn(racer(), name="firstof"))

    def _finish(
        self,
        process: Process,
        result: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        process.done = True
        process._result = result
        process._error = error
        self._active -= 1
        waiters, process._completion_waiters = process._completion_waiters, []
        if waiters:
            runq = self._runq
            seq_next = self._seq_next
            if error is not None:
                process._error_observed = True
                for waiter in waiters:
                    runq.append((seq_next(), waiter, None, error))
                    waiter._suspension = None
            else:
                for waiter in waiters:
                    runq.append((seq_next(), waiter, result, None))
                    waiter._suspension = None
