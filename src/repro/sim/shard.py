"""Sharded deterministic event loop: conservative time-window merge.

Classic parallel-DES structure (Chandy/Misra/Bryant conservative
synchronization, specialized to a fixed minimum link latency): the
simulation is partitioned into *groups* (a rack, a site — any unit whose
processes share state only with each other), groups are assigned to
*shards*, and each shard owns a private :class:`~repro.sim.engine.Engine`
with its own clock, heap and run queue.  Interactions **between** groups
must cross a :class:`ShardedEngine` mailbox with a delivery delay of at
least the engine's ``lookahead`` — the minimum cross-group latency, i.e.
the WAN/link RTT floor of the modeled topology.

The window merge
----------------
``run()`` repeatedly:

1. finds ``t_next``, the globally earliest pending occurrence (any
   shard's next event or any mailbox head);
2. sets ``horizon = t_next + lookahead``;
3. advances every shard independently through ``[t_next, horizon)``,
   delivering that shard's mailbox entries as their times come up.

Step 3 is safe *because* of the lookahead bound: any message sent during
this window is stamped at the sender's clock ``s >= t_next`` and delivered
at ``s + delay >= t_next + lookahead = horizon`` — never inside the region
another shard has already advanced through.  Shards therefore never need
to wait on each other mid-window, and (in a future wall-clock-parallel
backend) could run step 3 concurrently; today's implementation advances
them sequentially, which makes the guarantee easy to audit and keeps the
win purely architectural: per-shard heaps stay small and the merged
ordering is *defined* rather than emergent.

Why replay is byte-exact
------------------------
Determinism needs every tie broken identically on every run **and for
every shard count**:

* mailbox entries are drained in ``(time, src_group, src_sequence)``
  order — the stamp names the logical *group*, not the physical shard,
  and each group numbers its own sends, so the drain order is a pure
  function of the workload (the same in 1-shard and N-shard layouts);
* deliveries at time ``T`` run *before* the destination shard executes
  its own events at ``T`` (``Engine.run_below`` stops strictly below
  ``T``), so a delivery's consequences interleave with same-time local
  events by the engine's ordinary sequence-number merge — again
  identically for any layout;
* groups may not share mutable state except through the mailbox, so
  co-locating two groups on one shard changes how their event streams
  interleave in wall clock but not any value either group computes.

Single-shard mode keeps the full mailbox discipline on one ordinary
:class:`Engine` — it *is* today's engine plus a message queue — which is
what makes ``shards=1`` vs ``shards=N`` byte-comparison a meaningful
standing oracle (see ``tests/test_shard.py`` and the chaos-replay
acceptance gate).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional, Sequence

from repro.sim.engine import Engine, SimulationError, Wait


class ShardedEngine:
    """Per-group engines advanced under a conservative time window.

    ``groups`` is the ordered list of logical partition names; each is
    pinned to shard ``index % shards`` (deterministic for a given order).
    ``lookahead`` is the minimum cross-group delivery latency in seconds
    and must be positive — it is both the correctness bound of the window
    merge and the floor every :meth:`send`/:meth:`call` delay must meet.
    """

    def __init__(
        self,
        groups: Sequence[str],
        shards: int = 1,
        lookahead: float = 0.001,
    ):
        groups = list(groups)
        if not groups:
            raise ValueError("need at least one group")
        if len(set(groups)) != len(groups):
            raise ValueError("group names must be unique")
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if lookahead <= 0:
            raise ValueError(
                f"lookahead must be positive, got {lookahead}"
            )
        self.groups = groups
        self.shards = min(int(shards), len(groups))
        self.lookahead = float(lookahead)
        self.engines = [Engine() for _ in range(self.shards)]
        self._group_index = {name: i for i, name in enumerate(groups)}
        self._shard_of = {
            name: i % self.shards for i, name in enumerate(groups)
        }
        #: per-shard mailbox heaps of (time, src_group_idx, seq, fn)
        self._mail: list[list[tuple[float, int, int, Callable[[], None]]]] = [
            [] for _ in range(self.shards)
        ]
        #: per-*group* send counters — stamps must not depend on layout
        self._send_seq = [0] * len(groups)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def shard_of(self, group: str) -> int:
        return self._shard_of[group]

    def engine_for(self, group: str) -> Engine:
        return self.engines[self._shard_of[group]]

    def spawn(self, group: str, generator: Generator, name: str = ""):
        return self.engine_for(group).spawn(generator, name)

    # ------------------------------------------------------------------
    # Cross-shard messaging
    # ------------------------------------------------------------------
    def send(
        self,
        src_group: str,
        dst_group: str,
        delay: float,
        fn: Callable[[], None],
    ) -> None:
        """Deliver ``fn()`` on ``dst_group``'s shard after ``delay`` seconds.

        ``delay`` is measured from the *sender's* clock and must be at
        least ``lookahead`` — the window merge is only correct under that
        bound, so violating it is an error, not a quiet reordering.
        """
        if delay < self.lookahead:
            raise SimulationError(
                f"cross-shard delay {delay} below lookahead "
                f"{self.lookahead} ({src_group} -> {dst_group})"
            )
        src_index = self._group_index[src_group]
        when = self.engines[self._shard_of[src_group]]._now + delay
        seq = self._send_seq[src_index]
        self._send_seq[src_index] = seq + 1
        heapq.heappush(
            self._mail[self._shard_of[dst_group]],
            (when, src_index, seq, fn),
        )

    def call(
        self,
        src_group: str,
        dst_group: str,
        factory: Callable[[], Generator],
        name: str = "xshard-call",
    ) -> Generator:
        """Generator effect: run ``factory()`` on the destination shard.

        The remote generator is spawned after one ``lookahead`` (the
        request hop) and its result — or exception — travels back after
        another (the response hop); the caller resumes with the result,
        so a round trip costs at least ``2 * lookahead`` plus the remote
        work.  Use as ``value = yield from sharded.call(src, dst, fn)``.
        """
        done = self.engine_for(src_group).event(name)
        lookahead = self.lookahead

        def runner() -> Generator:
            try:
                value = yield from factory()
            except Exception as error:  # noqa: BLE001 - relayed to caller
                self.send(
                    dst_group, src_group, lookahead,
                    lambda error=error: done.fail(error),
                )
            else:
                self.send(
                    dst_group, src_group, lookahead,
                    lambda value=value: done.succeed(value),
                )

        def deliver() -> None:
            self.engine_for(dst_group).spawn(runner(), name=name)

        self.send(src_group, dst_group, lookahead, deliver)
        result = yield Wait(done)
        return result

    # ------------------------------------------------------------------
    # The conservative window merge
    # ------------------------------------------------------------------
    def _next_occurrence(self) -> Optional[float]:
        t_next: Optional[float] = None
        for engine in self.engines:
            t = engine.next_event_time()
            if t is not None and (t_next is None or t < t_next):
                t_next = t
        for mail in self._mail:
            if mail and (t_next is None or mail[0][0] < t_next):
                t_next = mail[0][0]
        return t_next

    def _advance_shard(self, index: int, horizon: float) -> None:
        engine = self.engines[index]
        mail = self._mail[index]
        while mail and mail[0][0] < horizon:
            when = mail[0][0]
            # Local events strictly before the delivery time first; then
            # the delivery itself, *before* local events at `when` run —
            # its consequences merge with them by sequence number.
            engine.run_below(when)
            if engine._now < when:
                engine._now = when
            fn = heapq.heappop(mail)[3]
            fn()
        engine.run_below(horizon)

    def run(self) -> None:
        """Advance every shard until all engines and mailboxes drain."""
        while True:
            t_next = self._next_occurrence()
            if t_next is None:
                return
            horizon = t_next + self.lookahead
            for index in range(self.shards):
                self._advance_shard(index, horizon)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Latest shard clock (shards advance independently inside windows)."""
        return max(engine._now for engine in self.engines)

    @property
    def is_idle(self) -> bool:
        return all(engine.is_idle for engine in self.engines) and not any(
            self._mail
        )

    @property
    def events_issued(self) -> int:
        return sum(engine.events_issued for engine in self.engines)

    def health(self) -> dict[str, Any]:
        return {
            "shards": self.shards,
            "groups": len(self.groups),
            "lookahead_s": self.lookahead,
            "clocks": [round(e._now, 9) for e in self.engines],
            "events_issued": self.events_issued,
            "idle": self.is_idle,
        }
