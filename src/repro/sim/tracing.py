"""Span-based tracing and metrics on the simulated clock.

The paper's whole evaluation is latency decomposition — Table 1's read-path
breakdown, Figure 7's per-op averages, Table 3's mechanical phases — so the
reproduction carries a cross-layer tracer: every instrumented operation
(POSIX call, FTM fetch, MC arbitration, PLC instruction, roller/arm motion,
drive phase) opens a :class:`Span` on the simulated clock, and nested
operations become child spans.  A cold read from the roller therefore yields
one span tree covering cache miss -> fetch -> mechanical load -> drive
mount/read, with per-phase durations that sum to the end-to-end latency.

Context propagation follows the engine's process model: each
:class:`~repro.sim.engine.Process` carries its own span stack, and a process
spawned while a span is open inherits that span as its parent — so
background work (cache fills, burn tasks) attaches under the operation that
started it even though the engine interleaves processes arbitrarily.

Span ids are drawn from a :class:`~repro.sim.rng.DeterministicRNG`
sub-stream, so identically-seeded runs export byte-identical traces (the
determinism regression test locks this in).  Tracing is disabled by default:
every engine starts with the shared :data:`NULL_TRACER`, whose ``span()``
returns a no-op context manager.

Alongside spans, :class:`MetricsRegistry` offers counters, gauges and
fixed-bound histograms for whole-run aggregates (cache hit rates, per-phase
latency distributions, stream-scheduler traffic).

Exporters: :func:`to_chrome_trace` emits Chrome trace-event JSON (load it
in ``chrome://tracing`` / Perfetto), :func:`to_flat_json` a flat span list.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import numpy as np

from repro.sim.rng import DeterministicRNG


@dataclass
class Span:
    """One timed operation: identity, interval, tags and tree linkage."""

    span_id: str
    parent_id: Optional[str]
    name: str
    category: str
    start: float
    end: Optional[float] = None
    tags: dict = field(default_factory=dict)
    #: name of the simulation process the span ran in ("" = outside any)
    process: str = ""
    #: True for zero-duration point events (cache hits, interrupts)
    instant: bool = False

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds of simulated time; open spans report 0 so far."""
        return (self.end - self.start) if self.end is not None else 0.0

    def tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.finished else "open"
        return f"<Span {self.name} {state}>"


class _SpanScope:
    """Context manager that closes its span and pops the right stack."""

    __slots__ = ("_tracer", "span", "_stack")

    def __init__(self, tracer: "Tracer", span: Span, stack: list):
        self._tracer = tracer
        self.span = span
        self._stack = stack

    def tag(self, key: str, value: Any) -> "_SpanScope":
        self.span.tag(key, value)
        return self

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.span.tags.setdefault("error", type(exc).__name__)
        if self._stack and self._stack[-1] is self.span:
            self._stack.pop()
        else:  # misnested close: drop by identity, keep the rest intact
            for index, open_span in enumerate(self._stack):
                if open_span is self.span:
                    del self._stack[index]
                    break
        self.span.end = self._tracer.engine.now
        return False


class _NullSpan:
    """Shared no-op span: absorbs tags, nests, never records anything."""

    __slots__ = ()

    @property
    def tags(self) -> dict:
        return {}

    def tag(self, key: str, value: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: the default on every engine (zero overhead)."""

    __slots__ = ()
    enabled = False

    def span(self, name, category="", tags=None):
        return _NULL_SPAN

    def event(self, name, category="", tags=None):
        return None

    def active_span(self):
        return None


#: The shared disabled tracer every :class:`~repro.sim.engine.Engine` starts with.
NULL_TRACER = NullTracer()


class Tracer:
    """Records spans against an engine's simulated clock.

    Install with ``engine.trace = Tracer(engine)`` (or pass
    ``tracing=True`` to :class:`~repro.olfs.filesystem.OLFS`); every
    instrumented layer reads ``engine.trace``.
    """

    enabled = True

    def __init__(self, engine, seed: int = 0x7ACE):
        self.engine = engine
        self.seed = int(seed)
        self.spans: list[Span] = []
        self._rng = DeterministicRNG(seed).child("span-ids")
        #: span stack for code running outside any simulation process
        self._global_stack: list[Span] = []

    # ------------------------------------------------------------------
    # Context
    # ------------------------------------------------------------------
    def _context(self) -> tuple[list, Optional[object]]:
        process = self.engine.current_process
        if process is None:
            return self._global_stack, None
        if process._span_stack is None:
            process._span_stack = []
        return process._span_stack, process

    def active_span(self) -> Optional[Span]:
        """The span new work should attach under, honouring process context."""
        stack, process = self._context()
        if stack:
            return stack[-1]
        if process is not None:
            return process.span_parent
        return None

    def _new_id(self) -> str:
        return f"{self._rng.integers(0, 1 << 62):016x}"

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        category: str = "",
        tags: Optional[dict] = None,
    ) -> _SpanScope:
        """Open a span; use as ``with tracer.span("drive.read") as sp:``."""
        stack, process = self._context()
        parent = self.active_span()
        span = Span(
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            category=category,
            start=self.engine.now,
            tags=dict(tags) if tags else {},
            process=getattr(process, "name", ""),
        )
        self.spans.append(span)
        stack.append(span)
        return _SpanScope(self, span, stack)

    def event(
        self,
        name: str,
        category: str = "",
        tags: Optional[dict] = None,
    ) -> Span:
        """Record a zero-duration point event under the active span."""
        _, process = self._context()
        parent = self.active_span()
        now = self.engine.now
        span = Span(
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            category=category,
            start=now,
            end=now,
            tags=dict(tags) if tags else {},
            process=getattr(process, "name", ""),
            instant=True,
        )
        self.spans.append(span)
        return span

    def clear(self) -> None:
        """Drop recorded spans (open scopes keep closing harmlessly)."""
        self.spans = []

    # ------------------------------------------------------------------
    # Tree queries
    # ------------------------------------------------------------------
    def find(
        self, name: Optional[str] = None, category: Optional[str] = None
    ) -> list[Span]:
        return [
            span
            for span in self.spans
            if (name is None or span.name == name)
            and (category is None or span.category == category)
        ]

    def roots(self) -> list[Span]:
        ids = {span.span_id for span in self.spans}
        return [
            span
            for span in self.spans
            if span.parent_id is None or span.parent_id not in ids
        ]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def subtree(self, span: Span) -> list[Span]:
        """``span`` plus every descendant, depth-first in start order."""
        out = [span]
        for child in self.children_of(span):
            out.extend(self.subtree(child))
        return out

    def render_tree(self, span: Span, indent: int = 0) -> str:
        """Human-readable indented tree (the CLI's trace summary)."""
        line = (
            f"{'  ' * indent}{span.name:<28s} "
            f"{span.duration:>12.6f} s"
        )
        if span.tags:
            pairs = ", ".join(
                f"{key}={value}" for key, value in sorted(span.tags.items())
            )
            line += f"  [{pairs}]"
        lines = [line]
        for child in self.children_of(span):
            lines.append(self.render_tree(child, indent + 1))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _span_rows(spans: Iterable[Span]) -> list[dict]:
    return [
        {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "category": span.category,
            "start": span.start,
            "end": span.end,
            "duration": span.duration,
            "process": span.process,
            "instant": span.instant,
            "tags": span.tags,
        }
        for span in spans
    ]


def to_flat_json(tracer: Tracer) -> str:
    """Flat span list as deterministic JSON (one object per span)."""
    return json.dumps(
        _span_rows(tracer.spans), sort_keys=True, separators=(",", ":")
    )


def to_chrome_trace(tracer: Tracer) -> str:
    """Chrome trace-event JSON (``chrome://tracing`` / Perfetto).

    Finished spans become complete ("X") events, instants become "i"
    events; open spans export with zero duration and an ``unfinished``
    arg.  Timestamps are microseconds of simulated time.
    """
    tids: dict[str, int] = {}
    events = []
    for span in tracer.spans:
        tid = tids.setdefault(span.process or "main", len(tids))
        args = dict(span.tags)
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        if not span.finished and not span.instant:
            args["unfinished"] = True
        event = {
            "name": span.name,
            "cat": span.category or "sim",
            "ts": round(span.start * 1e6, 3),
            "pid": 0,
            "tid": tid,
            "id": span.span_id,
            "args": args,
        }
        if span.instant:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = round(span.duration * 1e6, 3)
        events.append(event)
    for process_name, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": process_name},
            }
        )
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"},
        sort_keys=True,
        separators=(",", ":"),
    )


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value (queue depth, buffer occupancy)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bound histogram with Prometheus-style ``le`` buckets.

    ``observe(v)`` lands in the first bucket whose bound satisfies
    ``v <= bound``; values above every bound land in the overflow bucket.

    Bucket counts live in a preallocated ``int64`` ndarray so bulk
    recording (:meth:`record_many`) is one ``searchsorted`` + ``bincount``
    per batch instead of a Python-level scan per value — the accounting
    path million-client ``aggregate`` fleets ride.  ``record_many`` is
    exactly equivalent to calling :meth:`observe` once per value, in
    order, including the float ``total`` (accumulated sequentially, never
    via pairwise ``np.sum``, so the running sum rounds identically); the
    equivalence — overflow saturation and quantile interpolation included
    — is pinned by property tests.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Iterable[float]):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left(bounds, v) is the first index with v <= bounds[i] —
        # the same bucket the classic first-bound-that-fits scan picks,
        # with values above every bound landing at len(bounds): overflow.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def record_many(self, values) -> None:
        """Record a batch of observations; ≡ ``observe`` per value, in order."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        indices = np.searchsorted(self.bounds, arr, side="left")
        self.counts += np.bincount(indices, minlength=self.counts.size)
        # Sequential adds on Python floats: bit-identical to n× observe
        # (np.sum's pairwise reduction would round differently).
        total = self.total
        for value in arr.tolist():
            total += value
        self.total = total
        self.count += arr.size

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation in buckets.

        Prometheus-style ``histogram_quantile``: find the bucket the
        target rank falls in and interpolate linearly between its edges
        (the first finite bucket's lower edge is 0 when its bound is
        positive).  Edge cases: an empty histogram reports 0.0, and a
        rank landing in the overflow (+Inf) bucket reports the highest
        finite bound — the estimate saturates rather than invents a tail.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        counts = self.counts
        for index, bound in enumerate(self.bounds):
            in_bucket = int(counts[index])
            if in_bucket and cumulative + in_bucket >= rank:
                if index == 0:
                    lower = 0.0 if bound > 0 else bound
                else:
                    lower = self.bounds[index - 1]
                fraction = (rank - cumulative) / in_bucket
                return lower + (bound - lower) * fraction
            cumulative += in_bucket
        return self.bounds[-1]

    def buckets(self) -> dict[str, int]:
        counts = self.counts
        out = {
            f"le_{bound:g}": int(counts[index])
            for index, bound in enumerate(self.bounds)
        }
        out["inf"] = int(counts[-1])
        return out


class MetricsRegistry:
    """Named counters/gauges/histograms with get-or-create semantics."""

    def __init__(self):
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: Iterable[float]) -> Histogram:
        histogram = self._get(name, Histogram, lambda: Histogram(name, bounds))
        if histogram.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return histogram

    def snapshot(self) -> dict:
        """Deterministic dict of every metric's current state."""
        out: dict = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "mean": metric.mean,
                    "buckets": metric.buckets(),
                }
            else:
                out[name] = metric.value
        return out
