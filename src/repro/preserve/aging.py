"""Accelerated media aging: decades of decay on a simulation clock.

A :class:`AgingClock` maps simulated seconds onto disc-age years for one
rack.  Every burned disc is *born* the first time the clock sees it
carrying tracks; its age is then ``(now - birth) * years_per_second``
plus the rack's accumulated ``shock_years`` (environmental excursions
injected by the ``media.accelerated_aging`` fault).  :meth:`tick`
advances every disc to its current age through the pure
:meth:`~repro.media.errors_model.SectorErrorModel.age_to` form, so the
damage a run accumulates is a deterministic function of (model seed,
birth times, tick times) — replaying a seed replays the decay exactly.
"""

from __future__ import annotations

from repro.media.errors_model import SectorErrorModel
from repro.sim.engine import Engine

#: Default compression: 600 simulated seconds cover 30 media years.
DEFAULT_YEARS_PER_SECOND = 0.05


class AgingClock:
    """Per-rack accelerated-aging clock over one error model."""

    def __init__(
        self,
        ros,
        model: SectorErrorModel,
        years_per_second: float = DEFAULT_YEARS_PER_SECOND,
    ):
        if years_per_second < 0:
            raise ValueError("years_per_second must be non-negative")
        self.ros = ros
        self.engine: Engine = ros.engine
        self.model = model
        self.years_per_second = years_per_second
        #: extra years every disc carries (accelerated-aging shocks)
        self.shock_years = 0.0
        #: disc_id -> simulated time the disc was first seen burned
        self._birth: dict[str, float] = {}
        self.ticks = 0
        self.shocks = 0
        self.newly_bad_total = 0
        #: once set, ages stop accruing (campaign horizon reached)
        self._frozen_at: float | None = None

    # ------------------------------------------------------------------
    def _burned_discs(self) -> dict:
        """Every disc currently carrying tracks, wherever it sits."""
        discs: dict[str, object] = {}
        mech = self.ros.mech
        for roller in mech.rollers:
            for tray in roller.trays.values():
                for disc in tray.discs():
                    if disc.tracks:
                        discs[disc.disc_id] = disc
        for drive_set in mech.drive_sets:
            for drive in drive_set.drives:
                disc = drive.disc
                if disc is not None and disc.tracks:
                    discs[disc.disc_id] = disc
        return discs

    def age_of(self, disc_id: str) -> float:
        """Current age in years of a known disc (0-aged if unseen)."""
        now = self.engine.now
        if self._frozen_at is not None:
            now = min(now, self._frozen_at)
        birth = self._birth.get(disc_id)
        elapsed = 0.0 if birth is None else max(0.0, now - birth)
        return elapsed * self.years_per_second + self.shock_years

    def freeze(self) -> None:
        """Stop the clock: ages no longer accrue past this instant.

        The campaign freezes every clock at the horizon so the decay
        dose is a function of the horizon alone — the post-horizon tail
        (in-flight scrubs, final audit, verdict reads) takes different
        simulated time under different configurations and must not age
        the media further.
        """
        self._frozen_at = self.engine.now

    # ------------------------------------------------------------------
    def tick(self) -> int:
        """Advance every burned disc to its current age.

        Registers births for newly burned discs, then applies each
        disc's (pure, monotone) corruption set.  Returns the number of
        newly bad sectors across the rack.
        """
        discs = self._burned_discs()
        now = self.engine.now
        newly = 0
        for disc_id in sorted(discs):
            if disc_id not in self._birth:
                self._birth[disc_id] = now
            newly += self.model.age_to(discs[disc_id], self.age_of(disc_id))
        self.ticks += 1
        self.newly_bad_total += newly
        return newly

    def shock(self, years: float) -> int:
        """An environmental excursion: age everything ``years`` extra.

        Applies synchronously (the fault injector calls this from its
        driver process) and returns the newly bad sector count.
        """
        if years < 0:
            raise ValueError("shock years must be non-negative")
        self.shock_years += float(years)
        self.shocks += 1
        return self.tick()

    # ------------------------------------------------------------------
    def max_age(self) -> float:
        """Oldest tracked disc's age in years (0.0 before any birth)."""
        if not self._birth:
            return self.shock_years
        return max(self.age_of(disc_id) for disc_id in self._birth)

    def health(self) -> dict:
        return {
            "discs_tracked": len(self._birth),
            "ticks": self.ticks,
            "shocks": self.shocks,
            "shock_years": round(self.shock_years, 6),
            "max_age_years": round(self.max_age(), 6),
            "newly_bad_total": self.newly_bad_total,
        }
