"""Preservation-grade integrity: scrubbing, anti-entropy, aging (§4.7).

The pieces a 50-year archive needs beyond writing bytes once:

* :class:`~repro.preserve.aging.AgingClock` — accelerated media aging
  on the simulation clock (decades per run);
* :class:`~repro.preserve.scrubber.BackgroundScrubber` — budgeted,
  checksum-verifying patrol scrubs under live traffic;
* :class:`~repro.preserve.audit.AntiEntropyAuditor` — LOCKSS-style
  replica comparison, voting and minority repair across racks;
* :func:`~repro.preserve.campaign.run_preserve` — the campaign harness
  reducing a seeded decades-scale run to the headline metric,
  bytes lost per exabyte-decade.
"""

from repro.preserve.aging import AgingClock
from repro.preserve.audit import AntiEntropyAuditor
from repro.preserve.campaign import report_to_json, run_preserve
from repro.preserve.scrubber import BackgroundScrubber

__all__ = [
    "AgingClock",
    "AntiEntropyAuditor",
    "BackgroundScrubber",
    "report_to_json",
    "run_preserve",
]
