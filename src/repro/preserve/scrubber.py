"""The background scrubber: budgeted patrol reads under live traffic.

"Disc sector-error checking can be scheduled at idle times and can
periodically scan all the burned disc arrays to check sector errors"
(§4.7).  :class:`BackgroundScrubber` walks every USED array in address
order, ages the media through the rack's :class:`AgingClock` first (so
patrols find what time actually broke), and runs the Maintenance
Interface scrub — which now verifies each track against the checksum
stored at burn time, catching silent corruption as well as unreadable
sectors.

Scrub I/O is *budgeted*, two ways:

* standalone — a private :class:`~repro.serve.tenancy.TokenBucket`
  (bytes/second) paces passes; the scrubber waits, event-driven, until
  the bucket covers the next array's estimated bytes;
* under a serving workload — the scrubber is admitted through the
  :class:`~repro.serve.tenancy.AdmissionController` as its own tenant,
  so the same SFQ weights and token buckets that protect the gold
  tenant's p99 also gate scrub I/O.  Backpressure or a deadline simply
  defers the array to the next pass — patrols yield to paying traffic.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro import units
from repro.errors import (
    AdmissionRejectedError,
    AdmissionTimeoutError,
    ROSError,
)
from repro.olfs.mechanical import ArrayState
from repro.serve.tenancy import AdmissionController, TokenBucket
from repro.sim.engine import Delay

#: span emitted around each array scrub (PRESERVE_SLOS watches it)
SCRUB_SPAN = "preserve.scrub_array"

#: default standalone budget: 4 MB/s of patrol reads
DEFAULT_RATE_BYTES = 4 * units.MB

#: idle sleep when no array is scrubbable yet
IDLE_SLEEP_SECONDS = 5.0

#: backoff after an admission rejection/timeout before retrying
DEFER_SECONDS = 10.0


class BackgroundScrubber:
    """Budgeted, checksum-verifying patrol scrubs over one rack."""

    def __init__(
        self,
        ros,
        rate_bytes: float = DEFAULT_RATE_BYTES,
        burst_bytes: Optional[float] = None,
        clock=None,
        admission: Optional[AdmissionController] = None,
        tenant: str = "scrub",
        migrate_after_years: Optional[float] = None,
    ):
        self.ros = ros
        self.engine = ros.engine
        self.clock = clock
        self.admission = admission
        self.tenant = tenant
        self.migrate_after_years = migrate_after_years
        self.bucket: Optional[TokenBucket] = None
        if admission is None:
            self.bucket = TokenBucket(
                self.engine, rate_bytes, burst_bytes or 4.0 * rate_bytes
            )
        self.stats = {
            "passes": 0,
            "arrays_scrubbed": 0,
            "bytes_scrubbed": 0,
            "errors_found": 0,
            "checksum_mismatches": 0,
            "images_repaired": 0,
            "images_migrated": 0,
            "images_lost": 0,
            "deferred": 0,
            "skipped": 0,
            "recoveries": 0,
            "rate_changes": 0,
        }

    # ------------------------------------------------------------------
    def set_rate(
        self, rate_bytes: float, burst_bytes: Optional[float] = None
    ) -> bool:
        """Re-budget the standalone patrol (bytes/second), in place.

        The fleet supervisor's "scrub error spike -> raise scrub budget"
        remediation.  Accrued tokens are refilled at the *old* rate up
        to now, then the bucket switches over; ``granted`` accounting is
        preserved.  Returns False (no-op) when the scrubber is admitted
        through an AdmissionController — its budget is the tenant spec's,
        not ours to change.
        """
        if self.bucket is None:
            return False
        if rate_bytes <= 0:
            raise ValueError("rate must be positive")
        self.bucket._refill()
        self.bucket.rate = float(rate_bytes)
        self.bucket.burst = float(burst_bytes or 4.0 * rate_bytes)
        self.bucket.tokens = min(self.bucket.tokens, self.bucket.burst)
        self.stats["rate_changes"] += 1
        return True

    # ------------------------------------------------------------------
    def _used_arrays(self) -> list:
        return [
            key
            for key in sorted(self.ros.mc.da_index)
            if self.ros.mc.da_index[key] is ArrayState.USED
        ]

    def _array_bytes(self, roller: int, address) -> int:
        tray = self.ros.mech.rollers[roller].tray_at(address)
        return sum(
            disc.tracks[0].logical_size
            for disc in tray.discs()
            if disc.tracks
        )

    def _should_migrate(self, roller: int, address) -> bool:
        if self.clock is None or self.migrate_after_years is None:
            return False
        tray = self.ros.mech.rollers[roller].tray_at(address)
        ages = [
            self.clock.age_of(disc.disc_id)
            for disc in tray.discs()
            if disc.tracks
        ]
        return bool(ages) and max(ages) >= self.migrate_after_years

    # ------------------------------------------------------------------
    def scrub_one(self, roller: int, address) -> Optional[dict]:
        """Generator: budget-gate then scrub one array; returns report."""
        est = float(max(1, self._array_bytes(roller, address)))
        grant = None
        if self.admission is not None:
            try:
                grant = yield from self.admission.admit(self.tenant, est)
            except (AdmissionRejectedError, AdmissionTimeoutError):
                self.stats["deferred"] += 1
                yield Delay(DEFER_SECONDS)
                return None
        else:
            while not self.bucket.try_take(est):
                yield Delay(max(self.bucket.seconds_until(est), 1e-6))
        try:
            if self.clock is not None:
                self.clock.tick()
            migrate = self._should_migrate(roller, address)
            with self.engine.trace.span(
                SCRUB_SPAN,
                "preserve",
                {
                    "roller": roller,
                    "layer": address.layer,
                    "slot": address.slot,
                    "bytes": est,
                    "migrate": migrate,
                },
            ):
                try:
                    report = yield from self.ros.mi.scrub_array(
                        roller, address, migrate=migrate
                    )
                except ROSError:
                    # The array changed state under us, or a fault hit
                    # the mechanics mid-scrub.  Run the PLC recovery
                    # routine before giving up on the array: a drive set
                    # wedged by an aborted load (discs in the drives, no
                    # home tray recorded) blocks *every* future scrub on
                    # this rack until someone resets it.
                    self.stats["skipped"] += 1
                    yield from self._recover()
                    return None
            self.stats["arrays_scrubbed"] += 1
            self.stats["bytes_scrubbed"] += int(est)
            self.stats["errors_found"] += report["errors"]
            self.stats["checksum_mismatches"] += report[
                "checksum_mismatches"
            ]
            self.stats["images_repaired"] += len(report["repaired"])
            self.stats["images_migrated"] += len(report["migrated"])
            self.stats["images_lost"] += len(report["lost"])
            return report
        finally:
            if grant is not None:
                grant.release()

    def _recover(self) -> Generator:
        """Best-effort mechanics recovery after a failed scrub."""
        try:
            yield from self.ros.mech.reset_after_fault()
        except ROSError:
            return  # recovery itself blocked; retry on the next skip
        self.stats["recoveries"] += 1

    def scrub_pass(self, until: Optional[float] = None) -> Generator:
        """One full patrol over every USED array (address order)."""
        self.stats["passes"] += 1
        for roller, address in self._used_arrays():
            if until is not None and self.engine.now >= until:
                return
            if self.ros.mc.da_index.get((roller, address)) is not (
                ArrayState.USED
            ):
                continue  # retired by an earlier scrub in this pass
            yield from self.scrub_one(roller, address)

    def run(self, until: float) -> Generator:
        """Patrol until the horizon: repeated passes, idling when empty."""
        while self.engine.now < until:
            if not self._used_arrays():
                yield Delay(IDLE_SLEEP_SECONDS)
                continue
            yield from self.scrub_pass(until)
            if self.engine.now < until:
                yield Delay(IDLE_SLEEP_SECONDS)

    # ------------------------------------------------------------------
    def health(self) -> dict:
        snapshot = dict(self.stats)
        if self.bucket is not None:
            snapshot["budget_granted_bytes"] = int(self.bucket.granted)
        return snapshot
