"""LOCKSS-style anti-entropy audit between replica holders.

"Lots Of Copies Keep Stuff Safe" — but only if the copies are actually
compared.  For every path, the :class:`AntiEntropyAuditor` asks each
alive replica holder (rendezvous placement, same order on every rack)
to read its copy and produce *sector-range checksums*: one SHA-256 per
``RANGE_BYTES`` slice.  The digest vectors cross the simulated 10GbE
link (a few dozen bytes per range — the content itself never moves
unless a repair is needed), the holders vote, and any minority copy is
repaired by rewriting the majority's bytes onto the losing rack.

Votes are majority-by-digest-vector; ties break toward the group
containing the lowest holder index, so the outcome is deterministic.
A holder that cannot read at all (media loss, drives down, link flap)
abstains — it is an availability event for the verdict to count, not a
vote for its absent bytes — and is repaired from the majority when it
still stores a divergent readable copy later.
"""

from __future__ import annotations

import hashlib
from typing import Generator, Optional

from repro.errors import ROSError
from repro.serve.network import NetworkLink

#: granularity of the exchanged sector-range checksums
RANGE_BYTES = 16 * 1024

#: wire bytes per range digest (32-byte SHA-256 + framing)
DIGEST_WIRE_BYTES = 48.0

#: span emitted around each audit round (PRESERVE_SLOS watches it)
AUDIT_SPAN = "preserve.audit_round"


def range_digests(data: bytes) -> tuple:
    """The digest vector holders exchange: one SHA-256 per range."""
    if not data:
        return (hashlib.sha256(b"").hexdigest(),)
    return tuple(
        hashlib.sha256(data[offset : offset + RANGE_BYTES]).hexdigest()
        for offset in range(0, len(data), RANGE_BYTES)
    )


class AntiEntropyAuditor:
    """Cross-rack replica comparison, voting and minority repair."""

    def __init__(self, cluster, link: Optional[NetworkLink] = None):
        self.cluster = cluster
        self.engine = cluster.engine
        self.link = link
        self.stats = {
            "rounds": 0,
            "paths_audited": 0,
            "disagreements": 0,
            "repairs": 0,
            "unreadable": 0,
            "unrecoverable": 0,
            "digest_bytes_on_wire": 0,
            "repair_bytes_on_wire": 0,
        }

    # ------------------------------------------------------------------
    def _read_copy(self, rack_index: int, path: str) -> Generator:
        """One holder's copy (bytes) or None if it cannot serve it."""
        try:
            result = yield from self.cluster.racks[rack_index].pi.read_file(
                path
            )
        except ROSError:
            return None
        return result.data

    def _wire(self, nbytes: float, counter: str) -> Generator:
        """Charge the digest/repair exchange to the rack link, if any."""
        if self.link is not None:
            try:
                yield from self.link.request(nbytes)
            except ROSError:
                pass  # a flapping link delays audits, never corrupts them
        self.stats[counter] += int(nbytes)

    # ------------------------------------------------------------------
    def audit_path(self, path: str) -> Generator:
        """Audit one path across its alive holders; repair the minority.

        Returns a JSON-safe outcome dict.
        """
        holders = self.cluster._alive(self.cluster.placement(path))
        outcome = {
            "path": path,
            "holders": list(holders),
            "agree": True,
            "repaired": [],
            "unreadable": [],
        }
        if len(holders) < 2:
            return outcome
        copies: dict[int, Optional[bytes]] = {}
        for index in holders:
            copies[index] = yield from self._read_copy(index, path)
            if copies[index] is None:
                outcome["unreadable"].append(index)
                self.stats["unreadable"] += 1
        readable = [index for index in holders if copies[index] is not None]
        if not readable:
            self.stats["unrecoverable"] += 1
            return outcome
        # Exchange digest vectors (never the content) over the link.
        groups: dict[tuple, list[int]] = {}
        for index in readable:
            digests = range_digests(copies[index])
            yield from self._wire(
                DIGEST_WIRE_BYTES * len(digests), "digest_bytes_on_wire"
            )
            groups.setdefault(digests, []).append(index)
        if len(groups) > 1:
            outcome["agree"] = False
            self.stats["disagreements"] += 1
        # Vote: biggest group wins; ties break toward the group holding
        # the lowest rack index, so every replay picks the same winner.
        winner_group = max(
            groups.values(), key=lambda members: (len(members), -min(members))
        )
        winner_bytes = copies[winner_group[0]]
        # Repair the minority — divergent readable copies AND holders
        # that could not serve their copy at all (that is the LOCKSS
        # point: a dead copy is restored from the surviving majority
        # before the second copy dies too).
        for index in holders:
            if index in winner_group:
                continue
            # The replacement payload does cross the wire.
            yield from self._wire(
                float(len(winner_bytes)), "repair_bytes_on_wire"
            )
            try:
                yield from self.cluster.racks[index].pi.write_file(
                    path, winner_bytes, len(winner_bytes)
                )
            except ROSError:
                continue  # holder too broken to accept; next round
            outcome["repaired"].append(index)
            self.stats["repairs"] += 1
        return outcome

    def audit_round(self, paths) -> Generator:
        """One full round over ``paths`` (sorted); returns the summary."""
        paths = sorted(paths)
        self.stats["rounds"] += 1
        summary = {
            "paths": len(paths),
            "disagreements": 0,
            "repairs": 0,
            "unreadable": 0,
        }
        with self.engine.trace.span(
            AUDIT_SPAN, "preserve", {"paths": len(paths)}
        ):
            for path in paths:
                outcome = yield from self.audit_path(path)
                self.stats["paths_audited"] += 1
                if not outcome["agree"]:
                    summary["disagreements"] += 1
                summary["repairs"] += len(outcome["repaired"])
                summary["unreadable"] += len(outcome["unreadable"])
        return summary

    def run(self, paths, until: float, period: float) -> Generator:
        """Periodic rounds until the horizon (campaign driver)."""
        from repro.sim.engine import Delay

        while True:
            remaining = until - self.engine.now
            if remaining <= 0:
                return
            yield Delay(min(period, remaining))
            if self.engine.now >= until:
                return
            yield from self.audit_round(paths)

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return dict(self.stats)
