"""Decades-scale preservation campaigns and the loss-rate verdict.

``run_preserve(seed, ...)`` compresses a preservation decade-scale
timeline into one simulated run: a two-rack replicated cluster is
populated with a seeded archive, every disc then ages on an accelerated
clock (optionally with a chaos fault storm and an accelerated-aging
shock on top), while — when enabled — the background scrubber patrols
each rack, the anti-entropy auditor compares and repairs replicas
across racks, and old arrays are migrated onto fresh media.  The final
verdict evicts every cache and reads each archived file back from
media, counting what survived, and reduces the damage to the headline
preservation metric: **bytes lost per exabyte-decade**.

Everything derives from the one seed, so a campaign is a pure function
of its arguments and its JSON report is byte-reproducible; the CLI
(``python -m repro preserve``) runs each configuration twice and fails
on any byte difference.
"""

from __future__ import annotations

import json

from repro import units
from repro.errors import ROSError
from repro.faults.invariants import (
    check_audit_convergence,
    check_engine_drained,
    check_metadata_consistency,
    check_spans,
)
from repro.faults.plan import FaultPlan
from repro.media.errors_model import SectorErrorModel
from repro.olfs.config import OLFSConfig
from repro.preserve.aging import AgingClock
from repro.preserve.audit import AntiEntropyAuditor
from repro.preserve.scrubber import BackgroundScrubber
from repro.sim.engine import Delay
from repro.sim.rng import DeterministicRNG
from repro.sim.tracing import Tracer

#: campaign clock: this many simulated seconds cover ``years``
CAMPAIGN_SECONDS = 600.0

#: aging ticker period (decay lands in steps, not one cliff)
TICK_PERIOD = 30.0

#: anti-entropy round period during the campaign window
AUDIT_PERIOD = 150.0

#: year-zero sector hazard of campaign media (elevated so that a
#: simulation-scale archive actually decays within ``years``; the
#: paper-rate reliability math lives in repro.reliability).  Tuned so an
#: unattended archive loses data within three decades while the damage
#: accumulating between patrol scrubs stays within one array's parity.
CAMPAIGN_SECTOR_ERROR_RATE = 1.8e-4

#: hazard growth per year of disc age (media degrade faster when old)
CAMPAIGN_GROWTH_PER_YEAR = 0.35

#: arrays whose oldest disc passes this age are migrated to fresh media
MIGRATE_AFTER_YEARS = 18.0


def _build_cluster(seed: int):
    """The campaign cluster: two chaos-sized racks, one replica."""
    from repro.cluster import RackCluster

    config = OLFSConfig(
        data_discs_per_array=3,
        parity_discs_per_array=1,
        open_buckets=2,
        read_cache_images=2,
    ).scaled_for_tests(bucket_capacity=64 * 1024)
    cluster = RackCluster(
        rack_count=2,
        replicas=1,
        config=config,
        roller_count=1,
        buffer_volume_capacity=200 * units.MB,
    )
    tracer = Tracer(cluster.engine, seed=seed)
    cluster.engine.trace = tracer
    for rack in cluster.racks:
        rack.tracer = tracer
    return cluster, tracer


def _populate(cluster, rng, files: int) -> dict:
    """Seeded archive: ``files`` files written through the namespace."""
    acked: dict[str, bytes] = {}
    for index in range(files):
        path = f"/archive/f{index:04d}.bin"
        size = 6000 + rng.integers(0, 18000)
        pattern = rng.bytes(16)
        data = (pattern * (size // len(pattern) + 1))[:size]
        try:
            cluster.write(path, data)
        except ROSError:
            continue
        acked[path] = data
    try:
        cluster.flush()
    except ROSError:
        pass
    for rack in cluster.racks:
        rack.settle()
    return acked


def _repair_rack(rack) -> None:
    """Post-storm administration (no scrubbing — that is the feature
    under test, not part of the baseline repair)."""
    from repro.plc import Calibrate

    for index in range(len(rack.mech.plc.suites)):
        rack.run(
            rack.mech.channel.send(Calibrate(index)), "preserve-calibrate"
        )
    rack.run(rack.mech.reset_after_fault(), "preserve-mech-reset")
    rack.btm._claimed.clear()
    try:
        rack.flush(wait=False)
    except ROSError:
        pass
    rack.settle()


def _evict_everything(rack) -> None:
    """Drop every cached/buffered copy so the verdict reads real media."""
    for image_id in list(rack.cache.cached_ids):
        try:
            rack.cache.evict(image_id)
        except ROSError:
            # A cached image superseded mid-campaign (scrub migration
            # marked it lost); its MV entries point elsewhere already.
            pass
    file_cache = getattr(rack.ftm, "file_cache", None)
    if file_cache is not None:
        from repro.olfs.prefetch import FileGrainCache

        rack.ftm.file_cache = FileGrainCache(file_cache.capacity_bytes)
    for image_id in sorted(rack.dim.records):
        record = rack.dim.records[image_id]
        if record.state == "burned" and record.image is not None:
            rack.dim.evict_content(image_id)


def _verdict(cluster, acked: dict, years: float) -> dict:
    """Read every archived file back from media; reduce to the metric.

    Plain per-holder reads — no scrub, no parity rescue, no repair: the
    verdict measures what the *campaign* preserved, not what a heroic
    recovery could still salvage afterwards.
    """
    stored_bytes = sum(len(data) for data in acked.values())
    copies = cluster.replicas + 1
    bytes_lost = 0
    files_lost = []
    copy_losses = 0
    copies_checked = 0
    for path in sorted(acked):
        expected = acked[path]
        survivors = 0
        for index in cluster._alive(cluster.placement(path)):
            copies_checked += 1
            try:
                data = cluster.racks[index].read(path).data
            except ROSError:
                copy_losses += 1
                continue
            if data != expected:
                copy_losses += 1
                continue
            survivors += 1
        if survivors == 0:
            bytes_lost += len(expected)
            files_lost.append(path)
    for rack in cluster.racks:
        rack.settle()
    decades = years / 10.0
    per_exabyte_decade = (
        0.0
        if stored_bytes == 0 or decades == 0
        else bytes_lost / stored_bytes * 1e18 / decades
    )
    return {
        "files": len(acked),
        "stored_bytes": stored_bytes,
        "copies": copies,
        "copies_checked": copies_checked,
        "copy_losses": copy_losses,
        "files_lost": files_lost,
        "bytes_lost": bytes_lost,
        "bytes_lost_per_exabyte_decade": round(per_exabyte_decade, 6),
    }


def run_preserve(
    seed: int,
    files: int = 12,
    years: float = 30.0,
    intensity: float = 1.0,
    scrub: bool = True,
    audit: bool = True,
    migrate: bool = True,
    faults: bool = True,
    scrub_rate_bytes: float = 4 * units.MB,
) -> dict:
    """One preservation campaign; returns the (JSON-safe) report dict."""
    rng = DeterministicRNG(seed).child("preserve")
    plan = None
    if faults:
        # Drawn over [0, CAMPAIGN_SECONDS] relative time, then shifted
        # onto the campaign window once populate has finished — the
        # storm tests preservation under load, not archive ingestion.
        plan = FaultPlan.randomized(
            rng.child("plan"),
            CAMPAIGN_SECONDS,
            intensity=intensity,
            preserve=True,
        )

    cluster, tracer = _build_cluster(seed)
    engine = cluster.engine

    models = [
        SectorErrorModel(
            rng.child(f"media-{index}"),
            sector_error_rate=CAMPAIGN_SECTOR_ERROR_RATE,
            growth_per_year=CAMPAIGN_GROWTH_PER_YEAR,
        )
        for index in range(len(cluster.racks))
    ]
    clocks = [
        AgingClock(rack, model, years_per_second=years / CAMPAIGN_SECONDS)
        for rack, model in zip(cluster.racks, models)
    ]

    acked = _populate(cluster, rng.child("workload"), files)
    paths = sorted(acked)

    # The campaign window starts once the archive is burned; the aging
    # clocks then cover exactly ``years`` over CAMPAIGN_SECONDS.
    t0 = engine.now
    horizon = t0 + CAMPAIGN_SECONDS

    injector = None
    if plan is not None:
        from repro.faults.injector import FaultInjector

        plan = plan.shifted(t0)
        injector = (
            FaultInjector(engine, plan, seed=seed)
            .bind(cluster.racks[0])
            .install()
        )
        for clock in clocks:
            injector.bind_aging(clock)
        injector.start()
    for clock in clocks:
        clock.tick()  # register every disc's birth at t0

    def ticker():
        while engine.now < horizon:
            yield Delay(min(TICK_PERIOD, horizon - engine.now))
            for clock in clocks:
                clock.tick()

    engine.spawn(ticker(), name="preserve-aging-ticker")

    scrubbers = []
    if scrub:
        for index, rack in enumerate(cluster.racks):
            scrubber = BackgroundScrubber(
                rack,
                rate_bytes=scrub_rate_bytes,
                clock=clocks[index],
                migrate_after_years=(
                    MIGRATE_AFTER_YEARS if migrate else None
                ),
            )
            scrubbers.append(scrubber)
            engine.spawn(
                scrubber.run(horizon), name=f"preserve-scrubber-{index}"
            )

    auditor = None
    if audit:
        auditor = AntiEntropyAuditor(cluster)
        engine.spawn(
            auditor.run(paths, horizon, AUDIT_PERIOD),
            name="preserve-auditor",
        )

    engine.run(until=horizon)
    # Apply the last slice of decay, then freeze the clocks: the
    # post-horizon tail must not age the media further, so every
    # configuration accumulates the exact same dose.
    for clock in clocks:
        clock.tick()
        clock.freeze()
    if injector is not None:
        injector.stop()
    # Let in-flight scrubs/audits finish and the fault tail drain.
    for rack in cluster.racks:
        rack.settle()
    for rack in cluster.racks:
        _repair_rack(rack)

    # The campaign ends as it ran: one last patrol (parity-repairs the
    # final decay slice) and one last anti-entropy round (restores any
    # copy a whole rack lost), when those features are on.  The clocks
    # are frozen, so neither adds damage.
    if scrubbers:
        for index, scrubber in enumerate(scrubbers):
            engine.run_process(
                scrubber.scrub_pass(), f"preserve-final-scrub-{index}"
            )
        for rack in cluster.racks:
            rack.settle()
    final_audit = None
    if auditor is not None:
        final_audit = engine.run_process(
            auditor.audit_round(paths), "preserve-final-audit"
        )
        for rack in cluster.racks:
            rack.settle()

    invariants = [
        check_engine_drained(cluster.racks[0]),
        check_spans(cluster.racks[0]),
    ]
    for rack in cluster.racks:
        invariants.append(check_metadata_consistency(rack))
    if auditor is not None:
        invariants.append(check_audit_convergence(cluster, paths))

    for rack in cluster.racks:
        _evict_everything(rack)
    verdict = _verdict(cluster, acked, years)

    from repro.obs.slo import PRESERVE_SLOS, evaluate

    slo_violations = evaluate(PRESERVE_SLOS, tracer.spans)

    ok = all(inv["ok"] for inv in invariants)
    report = {
        "seed": seed,
        "files": files,
        "years": years,
        "intensity": intensity,
        "config": {
            "scrub": scrub,
            "audit": audit,
            "migrate": migrate,
            "faults": faults,
        },
        "horizon": round(horizon, 6),
        "campaign_start": round(t0, 6),
        "final_time": round(engine.now, 6),
        "plan": [spec.to_dict() for spec in plan] if plan else [],
        "fault_events": injector.log if injector is not None else [],
        "aging": [clock.health() for clock in clocks],
        "scrub": [scrubber.health() for scrubber in scrubbers],
        "audit": auditor.health() if auditor is not None else None,
        "final_audit": final_audit,
        "invariants": invariants,
        "slo_violations": slo_violations,
        "verdict": verdict,
        "ok": ok,
    }
    return report


def report_to_json(report: dict) -> str:
    """Canonical serialization — byte-comparable across identical runs."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))
