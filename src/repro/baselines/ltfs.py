"""LTFS baseline: POSIX on a single linear tape (§2.2, §6).

IBM's Linear Tape File System makes one tape's files directly accessible
through POSIX — the closest prior art to OLFS's inline accessibility — but
"LTFS is built on a single tape and its performance is limited by linear
seek latency of the tape media" (§6), and there is no global namespace
across cartridges.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LTFSTapeModel:
    """An LTO-6-class cartridge under LTFS."""

    capacity: float = 2.5e12  # 2.5 TB native
    mount_seconds: float = 15.0  # load + thread + index read
    full_wind_seconds: float = 114.0  # end-to-end wrap traversal
    streaming_rate: float = 160e6  # bytes/s sustained

    def seek_seconds(self, position_fraction: float) -> float:
        """Linear seek to a file at ``position_fraction`` of the tape."""
        if not 0.0 <= position_fraction <= 1.0:
            raise ValueError("position fraction must be in [0, 1]")
        return self.full_wind_seconds * position_fraction

    def mean_seek_seconds(self) -> float:
        return self.full_wind_seconds / 2.0

    def read_latency(
        self, nbytes: float, position_fraction: float = 0.5, mounted: bool = False
    ) -> float:
        """Open + read one file at a tape position."""
        latency = 0.0 if mounted else self.mount_seconds
        latency += self.seek_seconds(position_fraction)
        latency += nbytes / self.streaming_rate
        return latency

    def namespace_scope(self) -> str:
        """LTFS namespaces stop at the cartridge boundary (§6)."""
        return "single-medium"
