"""Conventional backup/archival system baseline (§2.2).

"Current tape and optical libraries generally rely on a dedicated backup
system running on a front host to manage all data on media in an off-line
mode": datasets are collected, cataloged, transformed into media format and
copied out; restores reverse the pipeline.  Crucially, files on media are
*not* directly readable — every access goes through the backup software's
staging, giving minutes-level restore latency even for one small file.

This model quantifies that access path so benches can contrast it with
OLFS's inline accessibility (60 ms-class reads that hit disks).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ConventionalArchivalSystem:
    """Latency/throughput model of a backup-system-fronted library."""

    catalog_lookup: float = 2.0  # query the backup catalog DB
    job_scheduling: float = 30.0  # restore job queued + dispatched
    media_mount: float = 70.0  # library fetches + mounts the medium
    media_locate_mean: float = 25.0  # wind/seek to the saveset
    staging_rate: float = 120e6  # bytes/s copying saveset to staging
    format_transform_rate: float = 200e6  # unpack backup format

    def restore_latency(self, nbytes: float) -> float:
        """Seconds until a restored file is readable by the application."""
        staging = nbytes / self.staging_rate
        transform = nbytes / self.format_transform_rate
        return (
            self.catalog_lookup
            + self.job_scheduling
            + self.media_mount
            + self.media_locate_mean
            + staging
            + transform
        )

    def first_byte_latency(self) -> float:
        """No partial delivery: the whole saveset stages first."""
        return self.restore_latency(0.0)

    def ingest_latency(self, nbytes: float) -> float:
        """Backup-side: collect, transform, write out (per batch)."""
        return (
            self.job_scheduling
            + nbytes / self.format_transform_rate
            + nbytes / self.staging_rate
        )

    def is_inline_accessible(self) -> bool:
        """Applications cannot open archived files directly (§2.2)."""
        return False
