"""Baselines the paper compares against (§2.2, §3.2, §6).

* :mod:`repro.baselines.magazine` — a magazine-based optical library
  (Panasonic LB-DH8 style: fixed slots, 3-D robot, magazine cassettes);
* :mod:`repro.baselines.archival` — a conventional backup/archival system
  fronting a media library (offline catalog, staged restores);
* :mod:`repro.baselines.ltfs` — IBM LTFS: POSIX directly on a single
  linear tape.
"""

from repro.baselines.archival import ConventionalArchivalSystem
from repro.baselines.ltfs import LTFSTapeModel
from repro.baselines.magazine import MagazineLibraryModel

__all__ = [
    "ConventionalArchivalSystem",
    "LTFSTapeModel",
    "MagazineLibraryModel",
]
