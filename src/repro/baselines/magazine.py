"""Magazine-based optical library baseline (§3.2's design comparison).

Traditional libraries (Panasonic LB-DH8 class) keep discs in cassette
*magazines* parked in fixed slots.  Serving an array means: eject the whole
magazine from its slot, carry it with a robot that must move in **three
dimensions**, dock it at the drive block, then separate the discs.  The
paper's §3.2 argues this costs mechanical complexity, motion time and
placement density; this model quantifies all three so the ablation bench
can compare against the ROS roller + 1-D arm.

Density anchor: an LB-DH8-style 42U rack holds ~6500 discs — "half the
capacity of our design" (§6) — versus ROS's 12,240.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MagazineLibraryModel:
    """Timing/density model of a magazine library in a 42U rack."""

    discs_per_magazine: int = 12
    discs_per_rack: int = 6500  # §6: half of ROS's 12,240
    # Motion phases (seconds), calibrated to DH8-class mechanisms:
    magazine_eject: float = 3.0  # unlatch + slide the cassette out
    robot_xyz_travel_mean: float = 9.0  # 3-D gantry move, slot->drives
    magazine_dock: float = 3.0  # align + latch at the drive block
    separate_all: float = 75.0  # per-disc separation is slower: the
    #   gripper works inside the cassette shell
    collect_all: float = 88.0
    robot_return_mean: float = 9.0

    #: degrees of freedom the robot needs (ROS: roller spin + 1 vertical)
    motion_axes: int = 3

    def load_seconds(self) -> float:
        """Slot -> drives for one magazine (mean over slot positions)."""
        return (
            self.magazine_eject
            + self.robot_xyz_travel_mean
            + self.magazine_dock
            + self.separate_all
        )

    def unload_seconds(self) -> float:
        return (
            self.collect_all
            + self.magazine_dock
            + self.robot_xyz_travel_mean
            + self.magazine_eject
        )

    def swap_seconds(self) -> float:
        return self.load_seconds() + self.unload_seconds()

    def density_ratio_vs_ros(self, ros_discs_per_rack: int = 12240) -> float:
        """Disc placement density relative to the ROS roller design."""
        return self.discs_per_rack / ros_discs_per_rack

    def motion_phases_per_load(self) -> int:
        """Distinct controlled motions per load (complexity proxy)."""
        # eject + 3 axis moves + dock + 12 separations
        return 1 + self.motion_axes + 1 + self.discs_per_magazine
