"""Stack composition: the five Figure-6 configurations.

``FilesystemStack`` composes layers with the §5.3 rules (additive
synchronous reads, min-rate pipelined writes, per-op overheads) and can
drive a filebench-style singlestream through the simulation clock.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro import units
from repro.frontend.layers import (
    EXT4,
    FUSE,
    FUSE_4K,
    OLFS_LAYER,
    SAMBA,
    Layer,
)
from repro.sim.engine import Delay, Engine

_FUSE_NAMES = ("fuse", "fuse-4k", "olfs")


class FilesystemStack:
    """An ordered pile of layers, bottom (ext4) first."""

    def __init__(self, name: str, layers: list[Layer]):
        if not layers:
            raise ValueError("a stack needs at least one layer")
        self.name = name
        self.layers = list(layers)

    # ------------------------------------------------------------------
    # Composition rules
    # ------------------------------------------------------------------
    def _has_fuse_below(self, upper: Layer) -> bool:
        index = self.layers.index(upper)
        return any(
            layer.name in _FUSE_NAMES for layer in self.layers[:index]
        )

    def read_seconds_per_byte(self) -> float:
        total = 0.0
        for layer in self.layers:
            total += layer.read_seconds_per_byte
            if (
                layer.fuse_interaction_read_seconds_per_byte
                and self._has_fuse_below(layer)
            ):
                total += layer.fuse_interaction_read_seconds_per_byte
        return total

    def read_throughput(self) -> float:
        """Sustained sequential read rate, bytes/second."""
        return 1.0 / self.read_seconds_per_byte()

    def write_throughput(self) -> float:
        """Sustained sequential write rate, bytes/second (pipelined)."""
        return min(layer.write_rate_cap for layer in self.layers)

    def per_op_seconds(self) -> float:
        return sum(layer.per_op_seconds for layer in self.layers)

    def extra_write_stats(self) -> int:
        return sum(layer.extra_write_stats for layer in self.layers)

    def normalized(self, baseline: "FilesystemStack") -> tuple[float, float]:
        """(read, write) throughput normalized to ``baseline`` (Figure 6)."""
        return (
            self.read_throughput() / baseline.read_throughput(),
            self.write_throughput() / baseline.write_throughput(),
        )

    # ------------------------------------------------------------------
    # Simulation integration
    # ------------------------------------------------------------------
    def attach(self, posix_interface) -> None:
        """Configure a POSIX interface with this stack's per-op costs."""
        posix_interface.frontend_per_op_seconds = self.per_op_seconds()
        posix_interface.frontend_extra_write_stats = self.extra_write_stats()

    def shared_pipes(self, engine: Engine) -> dict:
        """Contended transfer pipes at this stack's sustained rates.

        Concurrent clients share them processor-style — the multi-client
        NAS scenario (§3.3: "providing more than 1 GB/s external
        throughput ... suitable for datacenter environments").
        """
        from repro.sim.bandwidth import SharedBandwidth

        return {
            "read": SharedBandwidth(
                engine, self.read_throughput(), name=f"{self.name}-read"
            ),
            "write": SharedBandwidth(
                engine, self.write_throughput(), name=f"{self.name}-write"
            ),
        }

    def singlestream(
        self,
        engine: Engine,
        total_bytes: float,
        io_size: float = 1 * units.MB,
        direction: str = "read",
    ) -> Generator:
        """Run a filebench singlestream workload (timed); returns MB/s."""
        if direction not in ("read", "write"):
            raise ValueError(f"bad direction {direction!r}")
        start = engine.now
        requests = max(1, int(total_bytes / io_size))
        if direction == "read":
            per_request = io_size * self.read_seconds_per_byte()
        else:
            per_request = io_size / self.write_throughput()
        # Metadata-op overhead applies at file open/close, not per chunk
        # of an already-open stream.
        yield Delay(self.per_op_seconds())
        for _ in range(requests):
            yield Delay(per_request)
        elapsed = engine.now - start
        return total_bytes / elapsed / units.MB


def make_stack(name: str) -> FilesystemStack:
    """One of the five §5.3 configurations (plus ablation variants)."""
    if name not in CONFIGURATIONS:
        raise KeyError(
            f"unknown configuration {name!r}; pick from {sorted(CONFIGURATIONS)}"
        )
    return FilesystemStack(name, CONFIGURATIONS[name])


CONFIGURATIONS: dict[str, list[Layer]] = {
    "ext4": [EXT4],
    "ext4+FUSE": [EXT4, FUSE],
    "ext4+OLFS": [EXT4, FUSE, OLFS_LAYER],
    "samba": [EXT4, SAMBA],
    "samba+FUSE": [EXT4, FUSE, SAMBA],
    "samba+OLFS": [EXT4, FUSE, OLFS_LAYER, SAMBA],
    # Ablation variants (§4.8)
    "ext4+FUSE-4k": [EXT4, FUSE_4K],
    "ext4+OLFS-4k": [EXT4, FUSE_4K, OLFS_LAYER],
}
