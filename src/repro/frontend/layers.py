"""Per-layer cost models for the frontend stack (§5.3 calibration).

Reads and writes compose differently (this is the crux of Figure 6):

* the **read path is synchronous** — each layer's per-byte handling time
  adds to the previous one's (a read request travels down and the data
  travels back up before the client continues), so per-MB costs are
  *additive*;
* the **write path pipelines** — every layer buffers asynchronously, so
  the stream runs at the *minimum* of the layers' write rates.

Layer constants below are calibrated from the paper's own component
measurements (ext4 1.2 GB/s R / 1.0 GB/s W on the RAID-5 volume; FUSE
24.1 % R / 51.8 % W loss; OLFS a further 28.9 % R / 10.1 % W; Samba
68.9 % R / 68.0 % W of ext4).  The Samba-over-FUSE read interaction term
reproduces the extra attribute traffic the paper observed (its seven
extra ``stat`` calls on the write path are modelled per-op).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units


@dataclass(frozen=True)
class Layer:
    """One stack layer's calibrated costs."""

    name: str
    #: additive per-byte read handling cost (seconds per byte)
    read_seconds_per_byte: float = 0.0
    #: write-rate ceiling for the pipelined write path (bytes/s)
    write_rate_cap: float = float("inf")
    #: fixed per-metadata-op overhead this layer adds (seconds)
    per_op_seconds: float = 0.0
    #: extra stat calls this layer issues around a file creation (§5.3)
    extra_write_stats: int = 0
    #: additive read cost applied only when stacked above FUSE (the
    #: Samba-oplock/attribute interaction term)
    fuse_interaction_read_seconds_per_byte: float = 0.0

    def read_ms_per_mb(self) -> float:
        return self.read_seconds_per_byte * units.MB * 1e3


def _per_mb(ms: float) -> float:
    """ms/MB -> seconds/byte."""
    return ms * 1e-3 / units.MB


#: ext4 on one RAID-5 buffer volume: 1.2 GB/s read, 1.0 GB/s write (§5.3).
EXT4 = Layer(
    name="ext4",
    read_seconds_per_byte=1.0 / (1.2 * units.GB),
    write_rate_cap=1.0 * units.GB,
)

#: FUSE with big_writes (128 KB flushes): 24.1 % read / 51.8 % write loss.
FUSE = Layer(
    name="fuse",
    read_seconds_per_byte=_per_mb(0.265),
    write_rate_cap=0.482 * units.GB,
    per_op_seconds=0.0,  # the switch cost sits in the OLFS op constants
)

#: FUSE at the 4 KB default flush granularity (the §4.8 ablation): 32x the
#: switches per MB on the write path, 4x-ish read-ahead degradation.
FUSE_4K = Layer(
    name="fuse-4k",
    read_seconds_per_byte=_per_mb(1.06),
    write_rate_cap=0.482 * units.GB / 6.0,
)

#: OLFS itself (bucket/UDF handling above FUSE): further 28.9 % R / 10.1 % W.
OLFS_LAYER = Layer(
    name="olfs",
    read_seconds_per_byte=_per_mb(0.449),
    write_rate_cap=0.433 * units.GB,
)

#: Samba/CIFS over 10GbE: 68.9 % read / 68.0 % write loss vs ext4, plus
#: seven extra stats around creation and extra attribute traffic on FUSE.
SAMBA = Layer(
    name="samba",
    read_seconds_per_byte=_per_mb(1.845),
    write_rate_cap=0.320 * units.GB,
    per_op_seconds=0.0017,
    extra_write_stats=7,
    fuse_interaction_read_seconds_per_byte=_per_mb(0.85),
)

#: The raw 10GbE link (an upper bound the NAS path cannot exceed).
NETWORK_10GBE = Layer(
    name="10gbe",
    read_seconds_per_byte=1.0 / (1.25 * units.GB),
    write_rate_cap=1.25 * units.GB,
)
