"""Frontend stacks: ext4, FUSE, Samba and the 10GbE NAS path.

OLFS reaches clients through a stack of software layers (§4.8, §5.3):
ext4 on the RAID-5 buffer underneath, FUSE carrying OLFS into the kernel's
VFS, and Samba/CIFS exporting it over 10GbE.  This package models each
layer's cost and composes the five Figure-6 configurations.
"""

from repro.frontend.layers import Layer
from repro.frontend.stack import (
    CONFIGURATIONS,
    FilesystemStack,
    make_stack,
)

__all__ = ["CONFIGURATIONS", "FilesystemStack", "Layer", "make_stack"]
