"""Exception hierarchy for the ROS reproduction.

Every subsystem raises a subclass of :class:`ROSError`; POSIX-visible
failures carry an ``errno``-style name so the OLFS interface layer can
translate them the way a FUSE daemon would.
"""

from __future__ import annotations


class ROSError(Exception):
    """Base class for every error raised by the repro package."""


# ----------------------------------------------------------------------
# Media / drives / mechanics
# ----------------------------------------------------------------------
class MediaError(ROSError):
    """Problems with optical discs themselves."""


class WormViolationError(MediaError):
    """Attempt to rewrite a burned region of a write-once disc."""


class DiscFullError(MediaError):
    """Burn would exceed the disc's capacity."""


class SectorError(MediaError):
    """An unrecoverable sector read error (bit rot / scratch)."""

    def __init__(self, disc_id: str, sector: int):
        super().__init__(f"unreadable sector {sector} on disc {disc_id}")
        self.disc_id = disc_id
        self.sector = sector


class DriveError(ROSError):
    """Optical-drive state machine violations (no disc, busy, ...)."""


class MechanicsError(ROSError):
    """Robotic arm / roller / PLC faults."""


class PLCFaultError(MechanicsError):
    """A PLC instruction failed its sensor feedback check."""


# ----------------------------------------------------------------------
# Storage tier
# ----------------------------------------------------------------------
class StorageError(ROSError):
    """Block device and RAID failures."""


class DeviceFailedError(StorageError):
    """I/O against a failed block device."""


class RaidDegradedError(StorageError):
    """Too many member failures for the RAID level to recover."""


# ----------------------------------------------------------------------
# File systems
# ----------------------------------------------------------------------
class FilesystemError(ROSError):
    """Base for UDF/OLFS file system errors; carries a POSIX errno name."""

    errno_name = "EIO"


class FileNotFoundOLFSError(FilesystemError):
    errno_name = "ENOENT"


class FileExistsOLFSError(FilesystemError):
    errno_name = "EEXIST"


class NotADirectoryOLFSError(FilesystemError):
    errno_name = "ENOTDIR"


class IsADirectoryOLFSError(FilesystemError):
    errno_name = "EISDIR"


class DirectoryNotEmptyOLFSError(FilesystemError):
    errno_name = "ENOTEMPTY"


class NoSpaceOLFSError(FilesystemError):
    errno_name = "ENOSPC"


class ReadOnlyOLFSError(FilesystemError):
    errno_name = "EROFS"


class InvalidPathError(FilesystemError):
    errno_name = "EINVAL"


class TimeoutOLFSError(FilesystemError):
    """A read could not be served before the client-visible timeout."""

    errno_name = "ETIMEDOUT"


# ----------------------------------------------------------------------
# Serving layer (repro.serve)
# ----------------------------------------------------------------------
class ServeError(ROSError):
    """Base for failures in the multi-tenant serving layer."""


class AdmissionRejectedError(ServeError):
    """Backpressure: the tenant's admission queue (or the rack) is full."""


class AdmissionTimeoutError(ServeError):
    """A queued request outlived its admission deadline."""


class LinkDownError(ServeError):
    """The 10GbE link is flapped down; the request never reached the rack."""


class SessionDisconnectedError(ServeError):
    """The client session dropped before the operation could be issued."""


# ----------------------------------------------------------------------
# Fleet layer (repro.fleet)
# ----------------------------------------------------------------------
class FleetError(ROSError):
    """Base for failures in the geo-distributed fleet layer."""


class RackLostError(FleetError):
    """The targeted shard rack is down (or destroyed); the shard op failed."""


class ShardUnavailableError(FleetError):
    """The requested shard is not present on the rack that should hold it."""


class ObjectUnrecoverableError(FleetError):
    """Fewer than ``k`` shards of an erasure-coded object survive."""
