"""S3-style object storage over OLFS (§4.2 extension).

Buckets and objects map onto the global namespace:

    s3://<bucket>/<object/key>  ->  /objects/<bucket>/<object/key>

Object user metadata rides in a JSON sidecar so it survives the §4.4
bare-discs recovery path (the sidecar is a plain file inside the same
disc images).  Listings support prefixes and delimiter grouping like the
S3 ListObjects API.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.errors import (
    FileExistsOLFSError,
    FileNotFoundOLFSError,
)

_META_SUFFIX = ".rosmeta"


class NoSuchBucket(KeyError):
    pass


class NoSuchKey(KeyError):
    pass


@dataclass
class ObjectInfo:
    key: str
    size: int
    mtime: float
    metadata: dict


class ObjectStoreInterface:
    """Buckets / objects / metadata on a ROS rack."""

    def __init__(self, ros, root: str = "/objects"):
        self.ros = ros
        self.root = root.rstrip("/")

    # ------------------------------------------------------------------
    # Buckets
    # ------------------------------------------------------------------
    def create_bucket(self, bucket: str) -> None:
        self._check_name(bucket)
        try:
            self.ros.mkdir(f"{self.root}/{bucket}")
        except FileExistsOLFSError:
            pass  # idempotent, like S3 with matching owner

    def list_buckets(self) -> list[str]:
        try:
            return self.ros.readdir(self.root)
        except FileNotFoundOLFSError:
            return []

    def _bucket_path(self, bucket: str) -> str:
        self._check_name(bucket)
        path = f"{self.root}/{bucket}"
        try:
            self.ros.readdir(path)
        except FileNotFoundOLFSError:
            raise NoSuchBucket(bucket) from None
        return path

    @staticmethod
    def _check_name(name: str) -> None:
        if not name or "/" in name:
            raise ValueError(f"invalid bucket name {name!r}")

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------
    def _object_path(self, bucket: str, key: str) -> str:
        if not key or key.endswith("/"):
            raise ValueError(f"invalid object key {key!r}")
        return f"{self._bucket_path(bucket)}/{key}"

    def put_object(
        self,
        bucket: str,
        key: str,
        data: bytes,
        metadata: Optional[dict] = None,
    ) -> None:
        path = self._object_path(bucket, key)
        self.ros.write(path, data)
        if metadata:
            sidecar = json.dumps(metadata, sort_keys=True).encode()
            self.ros.write(path + _META_SUFFIX, sidecar)

    def get_object(self, bucket: str, key: str) -> bytes:
        try:
            return self.ros.read(self._object_path(bucket, key)).data
        except FileNotFoundOLFSError:
            raise NoSuchKey(f"{bucket}/{key}") from None

    def head_object(self, bucket: str, key: str) -> ObjectInfo:
        path = self._object_path(bucket, key)
        try:
            info = self.ros.stat(path)
        except FileNotFoundOLFSError:
            raise NoSuchKey(f"{bucket}/{key}") from None
        metadata = {}
        try:
            metadata = json.loads(self.ros.read(path + _META_SUFFIX).data)
        except FileNotFoundOLFSError:
            pass
        return ObjectInfo(
            key=key, size=info["size"], mtime=info["mtime"], metadata=metadata
        )

    def delete_object(self, bucket: str, key: str) -> None:
        path = self._object_path(bucket, key)
        try:
            self.ros.unlink(path)
        except FileNotFoundOLFSError:
            raise NoSuchKey(f"{bucket}/{key}") from None
        try:
            self.ros.unlink(path + _META_SUFFIX)
        except FileNotFoundOLFSError:
            pass

    # ------------------------------------------------------------------
    # Listing (prefix + delimiter, S3 style)
    # ------------------------------------------------------------------
    def list_objects(
        self,
        bucket: str,
        prefix: str = "",
        delimiter: Optional[str] = None,
    ) -> tuple[list[str], list[str]]:
        """Returns ``(keys, common_prefixes)``."""
        base = self._bucket_path(bucket)
        keys: list[str] = []

        def recurse(rel: str) -> None:
            directory = f"{base}/{rel}".rstrip("/")
            for name in self.ros.readdir(directory):
                child_rel = f"{rel}{name}" if not rel else f"{rel}{name}"
                full = f"{directory}/{name}"
                try:
                    info = self.ros.stat(full)
                except FileNotFoundOLFSError:
                    continue
                if info.get("type") == "dir":
                    recurse(child_rel + "/")
                elif not name.endswith(_META_SUFFIX):
                    keys.append(child_rel)

        recurse("")
        keys = sorted(k for k in keys if k.startswith(prefix))
        if delimiter is None:
            return keys, []
        plain: list[str] = []
        prefixes: list[str] = []
        for key in keys:
            remainder = key[len(prefix) :]
            if delimiter in remainder:
                group = prefix + remainder.split(delimiter, 1)[0] + delimiter
                if group not in prefixes:
                    prefixes.append(group)
            else:
                plain.append(key)
        return plain, prefixes
