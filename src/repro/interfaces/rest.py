"""REST gateway over the object store (§4.2's third interface).

A minimal HTTP-shaped facade: requests are dicts, responses carry status
codes, bodies and headers — the way an embedded REST endpoint on the SC
would behave.  Routes:

    PUT    /v1/<bucket>/<key>       store an object (headers -> metadata)
    GET    /v1/<bucket>/<key>       fetch an object
    HEAD   /v1/<bucket>/<key>       metadata only
    DELETE /v1/<bucket>/<key>       remove an object
    GET    /v1/<bucket>?prefix=..   list keys
    PUT    /v1/<bucket>             create bucket
    GET    /v1                      list buckets
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.interfaces.objectstore import (
    NoSuchBucket,
    NoSuchKey,
    ObjectStoreInterface,
)

_META_PREFIX = "x-ros-meta-"


@dataclass
class Response:
    status: int
    body: bytes = b""
    headers: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class RestGateway:
    """Dispatches REST verbs onto a ROS-backed object store."""

    def __init__(self, ros, root: str = "/objects"):
        self.store = ObjectStoreInterface(ros, root)

    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[dict] = None,
        query: Optional[dict] = None,
    ) -> Response:
        headers = headers or {}
        query = query or {}
        parts = [part for part in path.split("/") if part]
        if not parts or parts[0] != "v1":
            return Response(404, b"unknown API version")
        parts = parts[1:]
        try:
            if not parts:
                return self._collection(method)
            if len(parts) == 1:
                return self._bucket(method, parts[0], query)
            bucket, key = parts[0], "/".join(parts[1:])
            return self._object(method, bucket, key, body, headers)
        except NoSuchBucket:
            return Response(404, b"no such bucket")
        except NoSuchKey:
            return Response(404, b"no such key")
        except ValueError as error:
            return Response(400, str(error).encode())

    # ------------------------------------------------------------------
    def _collection(self, method: str) -> Response:
        if method != "GET":
            return Response(405)
        names = "\n".join(self.store.list_buckets()).encode()
        return Response(200, names)

    def _bucket(self, method: str, bucket: str, query: dict) -> Response:
        if method == "PUT":
            self.store.create_bucket(bucket)
            return Response(201)
        if method == "GET":
            keys, prefixes = self.store.list_objects(
                bucket,
                prefix=query.get("prefix", ""),
                delimiter=query.get("delimiter"),
            )
            body = "\n".join(keys).encode()
            return Response(
                200, body, headers={"x-common-prefixes": ",".join(prefixes)}
            )
        return Response(405)

    def _object(
        self, method: str, bucket: str, key: str, body: bytes, headers: dict
    ) -> Response:
        if method == "PUT":
            metadata = {
                name[len(_META_PREFIX) :]: value
                for name, value in headers.items()
                if name.lower().startswith(_META_PREFIX)
            }
            self.store.put_object(bucket, key, body, metadata or None)
            return Response(201)
        if method == "GET":
            data = self.store.get_object(bucket, key)
            info = self.store.head_object(bucket, key)
            return Response(200, data, headers=self._headers_of(info))
        if method == "HEAD":
            info = self.store.head_object(bucket, key)
            return Response(200, headers=self._headers_of(info))
        if method == "DELETE":
            self.store.delete_object(bucket, key)
            return Response(204)
        return Response(405)

    @staticmethod
    def _headers_of(info) -> dict:
        headers = {
            "content-length": str(info.size),
            "last-modified": f"{info.mtime:.3f}",
        }
        for name, value in info.metadata.items():
            headers[f"{_META_PREFIX}{name}"] = str(value)
        return headers
