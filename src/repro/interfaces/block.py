"""Block-level (iSCSI-style) interface over OLFS (§4.2 extension).

A LUN is a fixed-size virtual disk chunked into extents; each extent is
one OLFS file, so the LUN inherits tiering, burning and redundancy.
Random 512-byte-sector reads/writes translate into extent reads and
read-modify-write updates — coarse but faithful to how an archival iSCSI
gateway over WORM media must behave (updates regenerate extents, old
extent versions remain for provenance).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FileNotFoundOLFSError

SECTOR = 512


class BlockDeviceInterface:
    """One exported LUN backed by OLFS extent files."""

    def __init__(
        self,
        ros,
        lun_name: str,
        size: int,
        extent_size: int = 256 * 1024,
        root: str = "/luns",
    ):
        if size <= 0 or extent_size <= 0:
            raise ValueError("size and extent size must be positive")
        if extent_size % SECTOR:
            raise ValueError("extent size must be sector-aligned")
        self.ros = ros
        self.lun_name = lun_name
        self.size = int(size)
        self.extent_size = int(extent_size)
        self.root = f"{root.rstrip('/')}/{lun_name}"
        self.reads = 0
        self.writes = 0

    @property
    def extent_count(self) -> int:
        return -(-self.size // self.extent_size)

    def _extent_path(self, index: int) -> str:
        return f"{self.root}/extent-{index:08d}.bin"

    def _read_extent(self, index: int) -> bytes:
        try:
            data = self.ros.read(self._extent_path(index)).data
        except FileNotFoundOLFSError:
            data = b""
        if len(data) < self.extent_size:
            data = data + b"\x00" * (self.extent_size - len(data))
        return data

    # ------------------------------------------------------------------
    # SCSI-ish verbs
    # ------------------------------------------------------------------
    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise ValueError("negative offset/length")
        if offset % SECTOR or length % SECTOR:
            raise ValueError("I/O must be 512-byte-sector aligned")
        if offset + length > self.size:
            raise ValueError(
                f"I/O [{offset}, {offset + length}) beyond LUN size {self.size}"
            )

    def read(self, offset: int, length: int) -> bytes:
        self._check_range(offset, length)
        self.reads += 1
        chunks = []
        cursor = offset
        end = offset + length
        while cursor < end:
            index, within = divmod(cursor, self.extent_size)
            take = min(self.extent_size - within, end - cursor)
            chunks.append(self._read_extent(index)[within : within + take])
            cursor += take
        return b"".join(chunks)

    def write(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        self.writes += 1
        cursor = offset
        view = memoryview(data)
        consumed = 0
        while consumed < len(data):
            index, within = divmod(cursor, self.extent_size)
            take = min(self.extent_size - within, len(data) - consumed)
            extent = bytearray(self._read_extent(index))
            extent[within : within + take] = view[consumed : consumed + take]
            self.ros.write(self._extent_path(index), bytes(extent))
            cursor += take
            consumed += take

    def flush(self) -> None:
        """SYNCHRONIZE CACHE: push extents toward optical."""
        self.ros.flush()

    def capacity_report(self) -> dict:
        """READ CAPACITY-ish summary."""
        return {
            "lun": self.lun_name,
            "size": self.size,
            "sector": SECTOR,
            "sectors": self.size // SECTOR,
            "extent_size": self.extent_size,
            "extents": self.extent_count,
        }
