"""Key-value interface over OLFS (§4.2 extension).

Keys map deterministically onto the global namespace: a key hashes into a
two-level directory fan-out (so millions of keys do not pile into one
directory) and the key itself is preserved in the file name for
recovery-friendliness — a bare-discs namespace rebuild restores the store.

    PUT  k -> /kv/<shard>/<quoted-key>
    GET  k -> read the same path
    versions, deletes and cold reads behave exactly like files.
"""

from __future__ import annotations

import hashlib
import urllib.parse
from typing import Iterator, Optional

from repro.errors import FileNotFoundOLFSError


class KeyValueInterface:
    """A durable KV store on a ROS rack."""

    def __init__(self, ros, root: str = "/kv", shards: int = 64):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.ros = ros
        self.root = root.rstrip("/")
        self.shards = shards

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        if not key:
            raise KeyError("empty key")
        digest = hashlib.sha256(key.encode()).hexdigest()
        shard = int(digest[:8], 16) % self.shards
        # The "k-" prefix keeps quoted keys like "." or ".." from ever
        # forming relative path components.
        quoted = urllib.parse.quote(key, safe="")
        return f"{self.root}/s{shard:03d}/k-{quoted}"

    @staticmethod
    def _key_of(name: str) -> str:
        return urllib.parse.unquote(name[2:] if name.startswith("k-") else name)

    # ------------------------------------------------------------------
    def put(self, key: str, value: bytes) -> None:
        self.ros.write(self._path(key), value)

    def get(self, key: str) -> bytes:
        try:
            return self.ros.read(self._path(key)).data
        except FileNotFoundOLFSError:
            raise KeyError(key) from None

    def get_version(self, key: str, version: int) -> bytes:
        try:
            return self.ros.read(self._path(key), version=version).data
        except FileNotFoundOLFSError:
            raise KeyError(key) from None

    def delete(self, key: str) -> None:
        try:
            self.ros.unlink(self._path(key))
        except FileNotFoundOLFSError:
            raise KeyError(key) from None

    def exists(self, key: str) -> bool:
        try:
            self.ros.stat(self._path(key))
            return True
        except FileNotFoundOLFSError:
            return False

    def versions(self, key: str) -> list[int]:
        try:
            return self.ros.versions(self._path(key))
        except FileNotFoundOLFSError:
            raise KeyError(key) from None

    def keys(self) -> Iterator[str]:
        """Enumerate all keys (scans the shard directories)."""
        try:
            shards = self.ros.readdir(self.root)
        except Exception:  # root not created yet
            return
        for shard in shards:
            for name in self.ros.readdir(f"{self.root}/{shard}"):
                yield self._key_of(name)

    def __contains__(self, key: str) -> bool:
        return self.exists(key)
