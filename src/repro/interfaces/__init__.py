"""Alternative access interfaces over the OLFS namespace (§4.2).

"This namespace mapping mechanism can also be extended to support other
mainstream access interfaces such as key-value, objected storage, and
REST.  OLFS can also provide a block-level interface via the iSCSI
protocol."  These adapters implement that extension: each maps its
protocol's namespace onto OLFS's global file namespace, inheriting the
tiering, burning, redundancy and recovery machinery for free.
"""

from repro.interfaces.kv import KeyValueInterface
from repro.interfaces.objectstore import ObjectStoreInterface
from repro.interfaces.block import BlockDeviceInterface
from repro.interfaces.rest import Response, RestGateway

__all__ = [
    "BlockDeviceInterface",
    "KeyValueInterface",
    "ObjectStoreInterface",
    "Response",
    "RestGateway",
]
