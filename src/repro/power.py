"""Power and energy accounting (§5.1: idle 185 W, peak 652 W).

The rack's draw decomposes into the always-on baseline (controller,
fans, idle electronics) plus activity-proportional components.  The
composition below reproduces the paper's two measured corner points:

    idle:  185 W
    peak:  185 (base) + 192 (24 drives x 8 W) + 84 (14 HDDs active)
           + 141 (SC CPUs under load) + 50 (roller motor)
         = 652 W

Energy for a simulated run integrates each component's busy time, which
the substrates already track (drive ``busy_seconds``, roller
``rotation_seconds``, arm ``travel_seconds``, volume byte counters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units

#: Measured corner points (§5.1).
IDLE_POWER_W = 185.0
PEAK_POWER_W = 652.0

#: Component draws composing the peak.
DRIVE_ACTIVE_W = 8.0  # per optical drive (§5.1)
HDD_ACTIVE_W = 6.0  # per buffer disk under I/O
SC_LOAD_W = 141.0  # the Xeon pair under full load
ROLLER_MOTOR_W = 50.0  # §3.2: "less than 50 watts"
ARM_MOTOR_W = 60.0

_HDD_COUNT = 14
_DRIVE_COUNT = 24


@dataclass
class EnergyReport:
    """Joules by component over a simulated interval."""

    elapsed_seconds: float
    baseline_j: float
    drives_j: float
    mechanics_j: float
    disk_tier_j: float
    cpu_j: float

    @property
    def total_j(self) -> float:
        return (
            self.baseline_j
            + self.drives_j
            + self.mechanics_j
            + self.disk_tier_j
            + self.cpu_j
        )

    @property
    def total_kwh(self) -> float:
        return self.total_j / 3.6e6

    @property
    def average_power_w(self) -> float:
        if self.elapsed_seconds <= 0:
            return IDLE_POWER_W
        return self.total_j / self.elapsed_seconds

    def breakdown(self) -> dict[str, float]:
        return {
            "baseline": self.baseline_j,
            "drives": self.drives_j,
            "mechanics": self.mechanics_j,
            "disk_tier": self.disk_tier_j,
            "cpu": self.cpu_j,
        }


class PowerModel:
    """Energy accounting for one ROS instance's simulated activity."""

    def __init__(self, ros):
        self.ros = ros

    # -- corner points ---------------------------------------------------
    @staticmethod
    def idle_power_w() -> float:
        return IDLE_POWER_W

    @staticmethod
    def peak_power_w() -> float:
        """Everything at once: all drives, disks, CPUs and the roller."""
        return (
            IDLE_POWER_W
            + _DRIVE_COUNT * DRIVE_ACTIVE_W
            + _HDD_COUNT * HDD_ACTIVE_W
            + SC_LOAD_W
            + ROLLER_MOTOR_W
        )

    # -- integration -------------------------------------------------------
    def report(self) -> EnergyReport:
        ros = self.ros
        elapsed = ros.now
        drive_busy = sum(
            drive.busy_seconds
            for drive_set in ros.mech.drive_sets
            for drive in drive_set.drives
        )
        rotation = sum(
            roller.rotation_seconds for roller in ros.mech.rollers
        )
        travel = sum(arm.travel_seconds for arm in ros.mech.arms)
        # Disk-tier activity: bytes moved at the tier's effective rates.
        disk_seconds = 0.0
        for volume in [ros.mv_volume, *ros.buffer_volumes]:
            disk_seconds += volume.read_bytes_total / volume.effective_read_rate()
            disk_seconds += (
                volume.write_bytes_total / volume.effective_write_rate()
            )
        # CPU: charged per POSIX op at the calibrated ~2.5 ms each.
        op_count = ros.mv.lookups + ros.mv.updates
        cpu_seconds = op_count * 0.0025
        return EnergyReport(
            elapsed_seconds=elapsed,
            baseline_j=IDLE_POWER_W * elapsed,
            drives_j=DRIVE_ACTIVE_W * drive_busy,
            mechanics_j=ROLLER_MOTOR_W * rotation + ARM_MOTOR_W * travel,
            disk_tier_j=HDD_ACTIVE_W * _HDD_COUNT * disk_seconds,
            cpu_j=SC_LOAD_W * cpu_seconds,
        )

    def energy_per_tb_ingested(self) -> float:
        """Joules per TB written so far (the archival-efficiency metric)."""
        written = sum(v.write_bytes_total for v in self.ros.buffer_volumes)
        if written <= 0:
            return float("inf")
        return self.report().total_j / (written / units.TB)
