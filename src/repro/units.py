"""Shared unit constants and conversions.

Optical-media sizes follow the industry convention of decimal units
(a "25 GB" Blu-ray holds 25 * 10^9 bytes); RAM-ish quantities use binary
units where noted.  All times are seconds, all rates bytes/second.
"""

from __future__ import annotations

# Decimal (SI) units — used for media and network rates.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000
PB = 1_000_000_000_000_000

# Binary units — used for filesystem block math.
KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30

#: Base ("1X") Blu-ray transfer rate, bytes/second (4.49 MB/s, §2.1).
BLU_RAY_1X = 4.49 * MB

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
YEAR = 365.25 * DAY


def bd_speed(multiple: float) -> float:
    """Blu-ray speed multiple -> bytes/second (e.g. ``bd_speed(12)`` = 12X)."""
    return multiple * BLU_RAY_1X


def as_mb_per_s(rate_bytes_per_s: float) -> float:
    """Bytes/second -> MB/s (decimal), for reporting."""
    return rate_bytes_per_s / MB


def fmt_bytes(n: float) -> str:
    """Human-readable decimal byte count for reports."""
    for unit, scale in (("PB", PB), ("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_seconds(t: float) -> str:
    """Human-readable duration for reports."""
    if t < 1e-3:
        return f"{t * 1e6:.0f} us"
    if t < 1.0:
        return f"{t * 1e3:.1f} ms"
    if t < 120.0:
        return f"{t:.1f} s"
    if t < 2 * HOUR:
        return f"{t / MINUTE:.1f} min"
    return f"{t / HOUR:.2f} h"
