"""Chaos campaigns: randomized workloads under randomized fault plans.

``run_campaign(seed, ops)`` builds a small rack with a seeded
:class:`~repro.faults.plan.FaultPlan`, drives a randomized
write/read/flush workload against it while the injector fires drive,
disc, PLC, cache and crash faults, then repairs what an administrator
would repair (recalibrate, reset mechanics, re-flush, scrub) and checks
the four :mod:`repro.faults.invariants`.

Everything is derived from the one seed — the workload stream, the fault
plan, the injector's hazard draws and the tracer — so a campaign is a
pure function of ``(seed, ops, intensity)`` and its JSON report is
byte-reproducible.  The CLI (``python -m repro chaos``) runs the same
campaign twice and fails if the two reports differ.
"""

from __future__ import annotations

import json

from repro import units
from repro.errors import ROSError
from repro.faults.invariants import check_all
from repro.faults.plan import FaultPlan
from repro.olfs.mechanical import ArrayState
from repro.sim.rng import DeterministicRNG

#: Mean think time between workload operations (simulated seconds).
THINK_MEAN_SECONDS = 2.0


def build_ros(seed: int, plan: FaultPlan, monitor: bool = False):
    """The campaign rack: the scaled-for-tests rig with tracing + faults."""
    from repro import OLFSConfig, ROS

    config = OLFSConfig(
        data_discs_per_array=3,
        parity_discs_per_array=1,
        open_buckets=2,
        read_cache_images=2,
    ).scaled_for_tests(bucket_capacity=64 * 1024)
    return ROS(
        config=config,
        roller_count=1,
        buffer_volume_capacity=200 * units.MB,
        tracing=True,
        trace_seed=seed,
        fault_plan=plan,
        fault_seed=seed,
        monitoring=monitor,
    )


def _run_workload(ros, rng, ops: int, acked: dict) -> tuple[dict, list]:
    """Drive ``ops`` randomized operations; return (counters, violations).

    A write only enters ``acked`` once the POSIX layer returned — exactly
    the set of writes invariant I1 may hold the system to.  Reads verify
    against ``acked`` as they go; mismatches are violations immediately
    (an error return is merely an availability event, not data loss).
    """
    counters = {
        "writes": 0,
        "write_errors": 0,
        "reads": 0,
        "read_errors": 0,
        "read_mismatches": 0,
        "flushes": 0,
        "flush_errors": 0,
    }
    violations = []
    for op_index in range(ops):
        ros.engine.run(until=ros.now + rng.exponential(THINK_MEAN_SECONDS))
        roll = rng.uniform()
        if roll < 0.55 or not acked:
            path = f"/chaos/f{op_index:04d}.bin"
            size = 4000 + rng.integers(0, 28000)
            pattern = rng.bytes(16)
            data = (pattern * (size // len(pattern) + 1))[:size]
            counters["writes"] += 1
            try:
                ros.write(path, data)
                acked[path] = data
            except ROSError:
                counters["write_errors"] += 1
        elif roll < 0.90:
            path = rng.choice(sorted(acked))
            counters["reads"] += 1
            try:
                result = ros.read(path)
                if result.data != acked[path]:
                    counters["read_mismatches"] += 1
                    violations.append(
                        {"path": path, "problem": "mid-campaign mismatch"}
                    )
            except ROSError:
                counters["read_errors"] += 1
        else:
            counters["flushes"] += 1
            try:
                ros.flush(wait=False)
            except ROSError:
                counters["flush_errors"] += 1
    return counters, violations


def _start_serving(ros, rng, ops: int):
    """Attach a serving workload to the campaign rack (``--serve``).

    Two tenants' closed-loop sessions issue a *fixed* number of ops each
    (so they terminate regardless of the horizon) through the 10GbE link
    and the admission controller, while the baseline workload and the
    fault storm run underneath.  Returns everything the finish/audit
    phase needs.
    """
    from repro.serve.network import NetworkLink
    from repro.serve.session import ClientSession, OLFSBackend, ServeOp
    from repro.serve.tenancy import AdmissionController, TenantSpec
    from repro.sim.engine import Delay
    from repro.sim.tracing import MetricsRegistry

    engine = ros.engine
    link = NetworkLink(engine)
    admission = AdmissionController(
        engine,
        [
            TenantSpec(
                "interactive",
                rate_ops=20.0,
                rate_bytes=8 * units.MB,
                weight=4.0,
                deadline_s=10.0,
            ),
            TenantSpec("batch", weight=1.0, max_queue=32),
        ],
        max_inflight=4,
    )
    metrics = MetricsRegistry()
    backend = OLFSBackend(ros)
    ops_per_session = max(5, ops // 4)
    sessions = []
    processes = []

    def session_loop(session, session_rng):
        from repro.errors import SessionDisconnectedError

        written = []
        for op_index in range(ops_per_session):
            yield Delay(session_rng.exponential(THINK_MEAN_SECONDS))
            if written and session_rng.uniform() < 0.5:
                path, size = written[
                    session_rng.integers(0, len(written))
                ]
                op = ServeOp("read", path, float(size))
            else:
                size = 2000 + session_rng.integers(0, 14000)
                data = session_rng.bytes(16)
                data = (data * (size // len(data) + 1))[:size]
                path = (
                    f"/srv/{session.session_id}/f{op_index:04d}.bin"
                )
                op = ServeOp(
                    "write", path, float(size), data=data,
                    logical_size=size,
                )
            try:
                outcome = yield from session.perform(op)
            except SessionDisconnectedError:
                return
            if op.kind == "write" and outcome.status == "ok":
                written.append((op.path, size))

    for tenant, client in (
        ("interactive", 0), ("interactive", 1), ("batch", 0), ("batch", 1)
    ):
        session_id = f"{tenant}-{client}"
        session = ClientSession(
            engine, session_id, tenant, link, admission, backend, metrics
        )
        sessions.append(session)
        processes.append(
            engine.spawn(
                session_loop(session, rng.child(f"session-{session_id}")),
                name=f"serve-{session_id}",
            )
        )
    return {
        "link": link,
        "admission": admission,
        "sessions": sessions,
        "processes": processes,
    }


def _finish_serving(ros, serving: dict) -> dict:
    """Join the serving sessions and close admission; returns the summary."""
    from repro.sim.engine import AllOf

    pending = [
        process for process in serving["processes"] if not process.done
    ]
    if pending:
        def _join():
            yield AllOf(pending)

        ros.run(_join(), "serve-join")
    serving["admission"].close()
    outcomes: dict[str, int] = {}
    for session in serving["sessions"]:
        for status, count in session.outcomes.items():
            outcomes[status] = outcomes.get(status, 0) + count
    return {
        "ops": sum(outcomes.values()),
        "outcomes": {k: outcomes[k] for k in sorted(outcomes)},
        "link": {
            "requests": serving["link"].requests,
            "responses": serving["link"].responses,
            "drops": serving["link"].drops,
        },
        "admission": {
            name: {
                key: round(value, 3) if isinstance(value, float) else value
                for key, value in sorted(stats.items())
            }
            for name, stats in sorted(
                serving["admission"].stats.items()
            )
        },
    }


def _repair(ros) -> None:
    """What the administrator does after the storm (§4.7 maintenance).

    Recalibrate every sensor suite, un-wedge the mechanics, re-burn
    whatever failed tasks left on the buffer, and scrub any array whose
    discs took sector damage so parity repair runs before the audit.
    """
    from repro.plc import Calibrate

    for index in range(len(ros.mech.plc.suites)):
        ros.run(ros.mech.channel.send(Calibrate(index)), "chaos-calibrate")
    ros.run(ros.mech.reset_after_fault(), "chaos-mech-reset")
    # Failed burn tasks keep their tray claims; release and retry them.
    ros.btm._claimed.clear()
    try:
        ros.flush(wait=False)
    except ROSError:
        pass
    ros.settle()
    for key in sorted(ros.mc.da_index):
        if ros.mc.da_index[key] is not ArrayState.USED:
            continue
        roller, address = key
        tray = ros.mech.rollers[roller].tray_at(address)
        if any(disc.bad_sectors for disc in tray.discs()):
            try:
                ros.run(ros.mi.scrub_array(roller, address), "chaos-scrub")
            except ROSError:
                pass
    ros.settle()


def _start_fleet(ros, rng):
    """Attach a small fleet rig to the campaign (``fleet=True``).

    A 3-site × 2-rack :class:`~repro.fleet.store.FleetStore` (2+2
    layout, so a whole-site loss costs at most the 2 parity shards)
    shares the campaign engine; the injector's ``rack.loss`` /
    ``site.loss`` specs reach it via ``bind_fleet`` and the
    :class:`~repro.fleet.recovery.RecoveryManager` rebuilds what they
    destroy while the baseline storm runs.  Returns what the audit
    phase needs.
    """
    from repro.fleet.recovery import RecoveryManager
    from repro.fleet.store import FleetStore
    from repro.fleet.topology import FleetTopology, Layout

    store = FleetStore(
        ros.engine,
        FleetTopology(sites=3, racks_per_site=2),
        Layout(k=2, m=2),
    )
    ros.fault_injector.bind_fleet(store)

    def populate():
        for index in range(6):
            size = 3000 + rng.integers(0, 20000)
            payload = rng.bytes(min(size, 4096))
            yield from store.put(f"/fleet/c{index:03d}.img", payload, size)

    ros.engine.run_process(populate(), "chaos-fleet-populate")
    manager = RecoveryManager(store)
    ros.engine.spawn(manager.run(), name="chaos-fleet-recovery")
    return {"store": store, "manager": manager}


def run_campaign(
    seed: int,
    ops: int,
    intensity: float = 1.0,
    monitor: bool = False,
    flight_out: str | None = None,
    serve: bool = False,
    fleet: bool = False,
) -> dict:
    """One full chaos campaign; returns the (JSON-safe) report dict.

    ``monitor=True`` attaches the :mod:`repro.obs` run monitoring — a
    flight recorder plus the periodic health sampler — and extends the
    report with ``monitor`` / ``flight_recorder`` sections.  When an
    invariant fails under monitoring, the flight recorder dumps its ring
    to ``flight_out`` (default ``chaos-flight-<seed>.jsonl``) so the
    events leading up to the failure survive the process.  The default
    (``monitor=False``) leaves both the run and the report byte-identical
    to an unmonitored build.

    ``serve=True`` runs the campaign *under a serving workload*: the
    plan gains the serving fault kinds (link flap, client disconnect),
    four client sessions push ops through the 10GbE link and the
    admission controller while the storm rages, and the audit adds the
    fifth invariant ("no admitted request lost").  The default
    (``serve=False``) run and report stay byte-identical to a build
    without the serving layer — the serve plan specs are drawn after
    every baseline draw and the serve report section is simply absent.

    ``fleet=True`` additionally co-hosts a small multi-site fleet store
    on the campaign engine: the plan gains ``rack.loss`` and
    ``site.loss`` (drawn after *every* other spec, so ``fleet=False``
    plans keep their exact byte sequence), the recovery manager rebuilds
    destroyed shards mid-storm, and the audit adds invariant I8
    ("fleet_recoverable").
    """
    horizon = max(600.0, ops * 5.0)
    rng = DeterministicRNG(seed).child("chaos")
    plan = FaultPlan.randomized(
        rng.child("plan"), horizon, intensity=intensity, serve=serve,
        fleet=fleet,
    )
    ros = build_ros(seed, plan, monitor=monitor)
    injector = ros.fault_injector

    fleet_rig = _start_fleet(ros, rng.child("fleet")) if fleet else None
    serving = _start_serving(ros, rng.child("serve"), ops) if serve else None

    acked: dict = {}
    counters, violations = _run_workload(
        ros, rng.child("workload"), ops, acked
    )
    # Let the tail of the fault schedule play out, then silence it so the
    # repair phase and the audit run on a quiet rack.
    if horizon > ros.now:
        ros.engine.run(until=horizon)
    injector.stop()
    serve_summary = (
        _finish_serving(ros, serving) if serving is not None else None
    )
    if fleet_rig is not None:
        # Let in-flight rebuild campaigns finish, then park the manager
        # so the I2 drain audit sees a quiet engine.
        ros.settle()
        fleet_rig["manager"].stop()
        ros.settle()
    _repair(ros)

    # Finish the monitor *before* the invariant audit: I2 demands a fully
    # drained engine, which the (perpetual) health sampler would deny.
    monitor_summary = ros.monitor.finish() if ros.monitor is not None else None

    invariants = check_all(ros, acked)
    if serving is not None:
        from repro.faults.invariants import check_no_admitted_request_lost

        invariants.append(
            check_no_admitted_request_lost(serving["admission"])
        )
    if fleet_rig is not None:
        from repro.faults.invariants import check_fleet_recoverable

        invariants.append(check_fleet_recoverable(fleet_rig["store"]))
    ok = not violations and all(inv["ok"] for inv in invariants)
    report = {
        "seed": seed,
        "ops": ops,
        "intensity": intensity,
        "horizon": horizon,
        "final_time": round(ros.now, 6),
        "plan": [spec.to_dict() for spec in plan],
        "fault_events": injector.log,
        "acked_files": len(acked),
        "workload": counters,
        "workload_violations": violations,
        "invariants": invariants,
        "ok": ok,
    }
    if serve_summary is not None:
        report["serve"] = serve_summary
    if fleet_rig is not None:
        report["fleet"] = {
            "store": fleet_rig["store"].health(),
            "recovery": fleet_rig["manager"].health(),
        }
    if monitor_summary is not None:
        report["monitor"] = monitor_summary
        report["flight_recorder"] = {
            "events": len(ros.recorder),
            "recorded": ros.recorder.recorded,
            "dropped": ros.recorder.dropped,
        }
        if not ok:
            dump_path = flight_out or f"chaos-flight-{seed}.jsonl"
            ros.recorder.dump(dump_path)
            report["flight_dump"] = dump_path
    return report


def report_to_json(report: dict) -> str:
    """Canonical serialization — byte-comparable across identical runs."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))
