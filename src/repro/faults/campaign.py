"""Chaos campaigns: randomized workloads under randomized fault plans.

``run_campaign(seed, ops)`` builds a small rack with a seeded
:class:`~repro.faults.plan.FaultPlan`, drives a randomized
write/read/flush workload against it while the injector fires drive,
disc, PLC, cache and crash faults, then repairs what an administrator
would repair (recalibrate, reset mechanics, re-flush, scrub) and checks
the four :mod:`repro.faults.invariants`.

Everything is derived from the one seed — the workload stream, the fault
plan, the injector's hazard draws and the tracer — so a campaign is a
pure function of ``(seed, ops, intensity)`` and its JSON report is
byte-reproducible.  The CLI (``python -m repro chaos``) runs the same
campaign twice and fails if the two reports differ.
"""

from __future__ import annotations

import json

from repro import units
from repro.errors import ROSError
from repro.faults.invariants import check_all
from repro.faults.plan import FaultPlan
from repro.olfs.mechanical import ArrayState
from repro.sim.rng import DeterministicRNG

#: Mean think time between workload operations (simulated seconds).
THINK_MEAN_SECONDS = 2.0


def build_ros(seed: int, plan: FaultPlan, monitor: bool = False):
    """The campaign rack: the scaled-for-tests rig with tracing + faults."""
    from repro import OLFSConfig, ROS

    config = OLFSConfig(
        data_discs_per_array=3,
        parity_discs_per_array=1,
        open_buckets=2,
        read_cache_images=2,
    ).scaled_for_tests(bucket_capacity=64 * 1024)
    return ROS(
        config=config,
        roller_count=1,
        buffer_volume_capacity=200 * units.MB,
        tracing=True,
        trace_seed=seed,
        fault_plan=plan,
        fault_seed=seed,
        monitoring=monitor,
    )


def _run_workload(ros, rng, ops: int, acked: dict) -> tuple[dict, list]:
    """Drive ``ops`` randomized operations; return (counters, violations).

    A write only enters ``acked`` once the POSIX layer returned — exactly
    the set of writes invariant I1 may hold the system to.  Reads verify
    against ``acked`` as they go; mismatches are violations immediately
    (an error return is merely an availability event, not data loss).
    """
    counters = {
        "writes": 0,
        "write_errors": 0,
        "reads": 0,
        "read_errors": 0,
        "read_mismatches": 0,
        "flushes": 0,
        "flush_errors": 0,
    }
    violations = []
    for op_index in range(ops):
        ros.engine.run(until=ros.now + rng.exponential(THINK_MEAN_SECONDS))
        roll = rng.uniform()
        if roll < 0.55 or not acked:
            path = f"/chaos/f{op_index:04d}.bin"
            size = 4000 + rng.integers(0, 28000)
            pattern = rng.bytes(16)
            data = (pattern * (size // len(pattern) + 1))[:size]
            counters["writes"] += 1
            try:
                ros.write(path, data)
                acked[path] = data
            except ROSError:
                counters["write_errors"] += 1
        elif roll < 0.90:
            path = rng.choice(sorted(acked))
            counters["reads"] += 1
            try:
                result = ros.read(path)
                if result.data != acked[path]:
                    counters["read_mismatches"] += 1
                    violations.append(
                        {"path": path, "problem": "mid-campaign mismatch"}
                    )
            except ROSError:
                counters["read_errors"] += 1
        else:
            counters["flushes"] += 1
            try:
                ros.flush(wait=False)
            except ROSError:
                counters["flush_errors"] += 1
    return counters, violations


def _repair(ros) -> None:
    """What the administrator does after the storm (§4.7 maintenance).

    Recalibrate every sensor suite, un-wedge the mechanics, re-burn
    whatever failed tasks left on the buffer, and scrub any array whose
    discs took sector damage so parity repair runs before the audit.
    """
    from repro.plc import Calibrate

    for index in range(len(ros.mech.plc.suites)):
        ros.run(ros.mech.channel.send(Calibrate(index)), "chaos-calibrate")
    ros.run(ros.mech.reset_after_fault(), "chaos-mech-reset")
    # Failed burn tasks keep their tray claims; release and retry them.
    ros.btm._claimed.clear()
    try:
        ros.flush(wait=False)
    except ROSError:
        pass
    ros.settle()
    for key in sorted(ros.mc.da_index):
        if ros.mc.da_index[key] is not ArrayState.USED:
            continue
        roller, address = key
        tray = ros.mech.rollers[roller].tray_at(address)
        if any(disc.bad_sectors for disc in tray.discs()):
            try:
                ros.run(ros.mi.scrub_array(roller, address), "chaos-scrub")
            except ROSError:
                pass
    ros.settle()


def run_campaign(
    seed: int,
    ops: int,
    intensity: float = 1.0,
    monitor: bool = False,
    flight_out: str | None = None,
) -> dict:
    """One full chaos campaign; returns the (JSON-safe) report dict.

    ``monitor=True`` attaches the :mod:`repro.obs` run monitoring — a
    flight recorder plus the periodic health sampler — and extends the
    report with ``monitor`` / ``flight_recorder`` sections.  When an
    invariant fails under monitoring, the flight recorder dumps its ring
    to ``flight_out`` (default ``chaos-flight-<seed>.jsonl``) so the
    events leading up to the failure survive the process.  The default
    (``monitor=False``) leaves both the run and the report byte-identical
    to an unmonitored build.
    """
    horizon = max(600.0, ops * 5.0)
    rng = DeterministicRNG(seed).child("chaos")
    plan = FaultPlan.randomized(rng.child("plan"), horizon, intensity=intensity)
    ros = build_ros(seed, plan, monitor=monitor)
    injector = ros.fault_injector

    acked: dict = {}
    counters, violations = _run_workload(
        ros, rng.child("workload"), ops, acked
    )
    # Let the tail of the fault schedule play out, then silence it so the
    # repair phase and the audit run on a quiet rack.
    if horizon > ros.now:
        ros.engine.run(until=horizon)
    injector.stop()
    _repair(ros)

    # Finish the monitor *before* the invariant audit: I2 demands a fully
    # drained engine, which the (perpetual) health sampler would deny.
    monitor_summary = ros.monitor.finish() if ros.monitor is not None else None

    invariants = check_all(ros, acked)
    ok = not violations and all(inv["ok"] for inv in invariants)
    report = {
        "seed": seed,
        "ops": ops,
        "intensity": intensity,
        "horizon": horizon,
        "final_time": round(ros.now, 6),
        "plan": [spec.to_dict() for spec in plan],
        "fault_events": injector.log,
        "acked_files": len(acked),
        "workload": counters,
        "workload_violations": violations,
        "invariants": invariants,
        "ok": ok,
    }
    if monitor_summary is not None:
        report["monitor"] = monitor_summary
        report["flight_recorder"] = {
            "events": len(ros.recorder),
            "recorded": ros.recorder.recorded,
            "dropped": ros.recorder.dropped,
        }
        if not ok:
            dump_path = flight_out or f"chaos-flight-{seed}.jsonl"
            ros.recorder.dump(dump_path)
            report["flight_dump"] = dump_path
    return report


def report_to_json(report: dict) -> str:
    """Canonical serialization — byte-comparable across identical runs."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))
