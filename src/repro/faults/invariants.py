"""Campaign invariants: what must hold after any fault schedule.

A chaos campaign (:mod:`repro.faults.campaign`) throws randomized faults
at a randomized workload and then asserts the four properties the paper's
design promises regardless of what broke along the way:

I1. **No acknowledged write is lost.**  Every write the POSIX interface
    acknowledged reads back byte-identical — possibly after a scrub +
    parity repair (§4.7), never silently corrupted or missing.
I2. **The engine drains.**  No process is deadlocked: once the campaign
    settles, the simulation heap is empty and nothing is runnable.
I3. **Trace spans are well-formed.**  Every span closed, every parent
    reference resolves, and children start within their parent's life.
I4. **Metadata matches the discs.**  Every record the DIM claims is
    burned has its disc, a track carrying its image, and a consistent
    DAindex entry (§4.2/§4.6).

Serving campaigns (``--serve``) add a fifth:

I5. **No admitted request lost.**  Every request the admission
    controller admitted released its grant (none stranded inflight),
    every submitted ticket is accounted admitted/rejected/timed-out,
    and nothing is left queued after the system drains.

Preservation campaigns (``python -m repro preserve``) add:

I7. **The audit converges.**  After the final anti-entropy round, every
    replica holder of every audited path serves byte-identical content
    (holders that cannot serve at all are availability events, not
    divergence — a surviving minority copy must still match the
    majority it was repaired from).

Fleet campaigns (``python -m repro fleet``, ``chaos`` with a bound
fleet store) add:

I8. **No durable image is unrecoverable while surviving shards ≥ k.**
    For every acked object in the fleet catalog: if at least ``k`` of
    its shards physically survive (racks may be down — bytes outlive an
    outage, not a destruction), the erasure decode of any ``k``
    survivors reproduces the original bytes exactly.  Objects below
    ``k`` survivors are *reported* as lost, never silently dropped.

Monitored fleet campaigns (``python -m repro fleet-monitor``) add:

I9. **Remediation converges.**  After the closed-loop supervisor has
    run its course, no acked write has been lost (every acked object
    decodes byte-identically — I8's check, zero lost bytes demanded
    outright) and the fleet has settled into a healthy steady state:
    no shard is still missing (the rebuilds the supervisor kicked have
    re-homed everything the chaos corpus destroyed).  Remediation may
    drain racks and move data, but it must never make durability
    *worse* than doing nothing.

Each check returns ``{"invariant": name, "ok": bool, "detail": {...}}``
with JSON-safe details, so reports serialize deterministically.
"""

from __future__ import annotations

from repro.errors import MediaError, ROSError
from repro.olfs.mechanical import ArrayState


def _result(name: str, ok: bool, detail: dict) -> dict:
    return {"invariant": name, "ok": ok, "detail": detail}


# ----------------------------------------------------------------------
# I1: no acknowledged write lost
# ----------------------------------------------------------------------
def _read_with_repair(ros, path: str) -> bytes:
    """Read ``path``; on a media error, scrub its array and retry once.

    Sector errors are an *expected* outcome of a campaign — the invariant
    is that the §4.7 parity path recovers the bytes, not that no sector
    ever failed.
    """
    try:
        return ros.read(path).data
    except MediaError:
        image_id = ros.stat(path)["locations"][0]
        record = ros.dim.record(image_id)
        if record.array_address is not None:
            roller, address = record.array_address
            ros.run(ros.mi.scrub_array(roller, address), "invariant-scrub")
            ros.settle()
        return ros.read(path).data


def check_no_data_loss(ros, acked: dict) -> dict:
    """I1: every acknowledged write reads back byte-identical."""
    failures = []
    for path in sorted(acked):
        try:
            data = _read_with_repair(ros, path)
        except ROSError as error:
            failures.append({"path": path, "error": type(error).__name__})
            continue
        if data != acked[path]:
            failures.append({"path": path, "error": "mismatch"})
    return _result(
        "no_acked_write_lost",
        not failures,
        {"checked": len(acked), "failures": failures},
    )


# ----------------------------------------------------------------------
# I2: the engine drains (no deadlock)
# ----------------------------------------------------------------------
def check_engine_drained(ros) -> dict:
    """I2: after settling, nothing is scheduled and nothing is runnable.

    Settles first so the background work the I1 read-backs spawned
    (cache fills, resumed burns) doesn't read as a false deadlock; a
    process parked on an event nobody will fire still shows up.
    """
    ros.settle()
    idle = ros.engine.is_idle
    return _result(
        "engine_drained",
        idle,
        {"final_time": round(ros.engine.now, 6)},
    )


# ----------------------------------------------------------------------
# I3: trace spans well-formed
# ----------------------------------------------------------------------
def check_spans(ros) -> dict:
    """I3: spans all closed, parents resolve, children nest in time."""
    tracer = ros.tracer
    if tracer is None:
        return _result("spans_well_formed", True, {"checked": 0})
    by_id = {span.span_id: span for span in tracer.spans}
    problems = []
    for span in tracer.spans:
        if not span.finished:
            problems.append({"span": span.name, "problem": "unfinished"})
            continue
        if span.parent_id is not None:
            parent = by_id.get(span.parent_id)
            if parent is None:
                problems.append(
                    {"span": span.name, "problem": "dangling parent"}
                )
            elif span.start < parent.start - 1e-9:
                problems.append(
                    {"span": span.name, "problem": "starts before parent"}
                )
    return _result(
        "spans_well_formed",
        not problems,
        {"checked": len(tracer.spans), "problems": problems[:10]},
    )


# ----------------------------------------------------------------------
# I4: metadata consistent with disc contents
# ----------------------------------------------------------------------
def check_metadata_consistency(ros) -> dict:
    """I4: DIM burned records, DAindex and the physical discs agree."""
    from repro.faults.injector import FaultInjector

    problems = []
    checked = 0
    for image_id in sorted(ros.dim.records):
        record = ros.dim.records[image_id]
        if record.state != "burned":
            continue
        checked += 1
        if record.disc_id is None or record.array_address is None:
            problems.append({"image_id": image_id, "problem": "no location"})
            continue
        disc = FaultInjector._find_disc(ros, record.disc_id)
        if disc is None:
            problems.append(
                {"image_id": image_id, "problem": "disc missing"}
            )
            continue
        labels = [track.label for track in disc.tracks]
        if not any(
            label == image_id or label.startswith(image_id + ".")
            for label in labels
        ):
            problems.append(
                {"image_id": image_id, "problem": "track missing"}
            )
        state = ros.mc.da_index.get(record.array_address)
        if state is not ArrayState.USED:
            problems.append(
                {
                    "image_id": image_id,
                    "problem": f"array state {state.value if state else None}",
                }
            )
        if image_id not in ros.mc.array_images.get(record.array_address, []):
            problems.append(
                {"image_id": image_id, "problem": "not in DAindex images"}
            )
    # Reverse direction: everything the DAindex claims exists in the DIM.
    for key in sorted(ros.mc.array_images):
        for image_id in ros.mc.array_images[key]:
            if image_id not in ros.dim.records:
                problems.append(
                    {"image_id": image_id, "problem": "unknown to DIM"}
                )
    return _result(
        "metadata_consistent",
        not problems,
        {"checked": checked, "problems": problems[:10]},
    )


# ----------------------------------------------------------------------
# I5: no admitted request lost (serving campaigns)
# ----------------------------------------------------------------------
def check_no_admitted_request_lost(admission) -> dict:
    """I5: admission accounting balances once the campaign settles."""
    ok, note = admission.audit()
    submitted = sum(
        int(stats["submitted"]) for stats in admission.stats.values()
    )
    return _result(
        "no_admitted_request_lost",
        ok,
        {"checked": submitted, "note": note},
    )


# ----------------------------------------------------------------------
# I7: anti-entropy audit converges (preservation campaigns)
# ----------------------------------------------------------------------
def check_audit_convergence(cluster, paths) -> dict:
    """I7: post-repair, every reachable holder serves identical bytes."""
    checked = 0
    problems = []
    for path in sorted(paths):
        holders = cluster._alive(cluster.placement(path))
        blobs = []
        for index in holders:
            try:
                blobs.append(cluster.racks[index].read(path).data)
            except ROSError:
                # Unreadable copies are loss/availability events counted
                # by the verdict, not divergence between live copies.
                continue
        checked += 1
        if len({blob for blob in blobs}) > 1:
            problems.append({"path": path, "problem": "holders diverge"})
    return _result(
        "audit_converges",
        not problems,
        {"checked": checked, "problems": problems[:10]},
    )


# ----------------------------------------------------------------------
# I8: fleet recoverability (fleet campaigns)
# ----------------------------------------------------------------------
def check_fleet_recoverable(store) -> dict:
    """I8: every catalog object with ≥ k surviving shards decodes back
    byte-identically; the rest are counted as lost, not hidden."""
    problems = []
    lost = []
    checked = 0
    for path in sorted(store.catalog):
        record = store.catalog[path]
        if not record.acked:
            continue
        checked += 1
        survivors = store.surviving_shards(path)
        if len(survivors) < record.k:
            lost.append(
                {
                    "path": path,
                    "survivors": len(survivors),
                    "k": record.k,
                    "bytes": record.size,
                }
            )
            continue
        try:
            store.decode_now(path)
        except ROSError as error:
            problems.append(
                {"path": path, "problem": type(error).__name__}
            )
    return _result(
        "fleet_recoverable",
        not problems,
        {
            "checked": checked,
            "problems": problems[:10],
            "lost_objects": len(lost),
            "lost_bytes": sum(entry["bytes"] for entry in lost),
        },
    )


# ----------------------------------------------------------------------
# I9: closed-loop remediation converges (monitored fleet campaigns)
# ----------------------------------------------------------------------
def check_remediation_converges(store, supervisor) -> dict:
    """I9: after remediation, acked objects decode AND the fleet is
    healthy — zero lost bytes, zero still-missing shards."""
    base = check_fleet_recoverable(store)
    lost_shards = store.lost_shards()
    drained = sorted(
        rack_id for rack_id, rack in store.racks.items() if rack.drained
    )
    ok = (
        base["ok"]
        and base["detail"]["lost_bytes"] == 0
        and not lost_shards
    )
    return _result(
        "remediation_converges",
        ok,
        {
            "checked": base["detail"]["checked"],
            "problems": base["detail"]["problems"],
            "lost_bytes": base["detail"]["lost_bytes"],
            "lost_shards": len(lost_shards),
            "actions": len(supervisor.log),
            "drained_racks": drained,
        },
    )


# ----------------------------------------------------------------------
def check_all(ros, acked: dict) -> list[dict]:
    """Run the four campaign invariants in their canonical order."""
    return [
        check_no_data_loss(ros, acked),
        check_engine_drained(ros),
        check_spans(ros),
        check_metadata_consistency(ros),
    ]
