"""The fault injector: interprets a :class:`FaultPlan` against a live rack.

The injector registers on the simulation :class:`~repro.sim.engine.Engine`
as ``engine.faults`` (every engine starts with the no-op
:data:`~repro.sim.engine.NULL_FAULTS`), and instrumented sites consult it:

* ``drive.burn`` — checked by :meth:`OpticalDrive.burn` at every segment
  boundary (one-shot transient burn errors);
* ``drive.op`` — checked on mount / seek / read / burn (hard-failure
  windows);
* ``plc.channel`` — checked by :meth:`ControlChannel.send`;
* ``net.link`` — checked by :class:`repro.serve.network.NetworkLink` on
  every request/response transfer (flap windows and one-shots);
* ``client.session`` — checked by :class:`repro.serve.session.ClientSession`
  before each issued operation (one-shot disconnects).

Scheduled (``at=T``) and hazard-rate faults are driven by engine processes
spawned from :meth:`start`; *applied* faults (sector bursts, arm jams,
cache loss, crash/restart) act on the bound OLFS instance directly.  All
randomness flows through one :class:`~repro.sim.rng.DeterministicRNG`
sub-stream, so a seeded plan replays byte-identically — the property the
chaos harness and its regression corpus rely on.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.faults.plan import (
    CACHE_LOSS,
    CLIENT_DISCONNECT,
    DISC_SECTOR_BURST,
    DRIVE_HARD,
    DRIVE_TRANSIENT,
    FaultPlan,
    FaultSpec,
    MEDIA_AGING,
    NET_LINK_FLAP,
    OLFS_CRASH,
    PLC_ARM_JAM,
    PLC_CHANNEL,
    RACK_LOSS,
    SITE_LOSS,
)
from repro.sim.engine import Delay, Engine, Interrupt
from repro.sim.rng import DeterministicRNG

#: site keys instrumented components consult via ``engine.faults.check``
SITE_DRIVE_BURN = "drive.burn"
SITE_DRIVE_OP = "drive.op"
SITE_PLC_CHANNEL = "plc.channel"
SITE_NET_LINK = "net.link"
SITE_CLIENT_SESSION = "client.session"

#: default encoder drift (layers) applied by an arm jam
DEFAULT_JAM_DRIFT = 3.0
#: default bad-sector burst length
DEFAULT_BURST_SECTORS = 4
#: default crash downtime when a spec does not give one
DEFAULT_CRASH_DOWNTIME = 30.0
#: default extra media age (years) applied by an aging shock
DEFAULT_AGING_SHOCK_YEARS = 3.0


class FaultInjector:
    """Deterministic, seed-driven fault injection over one OLFS instance."""

    enabled = True

    def __init__(
        self,
        engine: Engine,
        plan: Optional[FaultPlan] = None,
        seed: int = 0xFA17,
    ):
        self.engine = engine
        self.plan = plan or FaultPlan()
        self.rng = DeterministicRNG(seed).child("fault-injector")
        self._ros = None
        #: one-shot faults armed per (site, target); "" target = any
        self._oneshots: dict[tuple[str, str], list[FaultSpec]] = {}
        #: windowed faults: (site, target, until, spec)
        self._windows: list[tuple[str, str, float, FaultSpec]] = []
        #: arrays already carrying an injected burst (keep each array
        #: within its parity budget so scrub repair always succeeds)
        self._corrupted_arrays: set = set()
        #: aging clocks accelerated-aging shocks act on (preserve runs)
        self._aging_clocks: list = []
        #: fleet store rack/site-loss faults act on (fleet campaigns)
        self._fleet = None
        self._drivers: list = []
        self._active = True
        #: chronological record of everything injected (campaign report)
        self.log: list[dict] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, ros) -> "FaultInjector":
        """Attach the OLFS instance applied faults act on."""
        self._ros = ros
        return self

    def bind_aging(self, clock) -> "FaultInjector":
        """Attach an :class:`~repro.preserve.aging.AgingClock` so
        ``media.accelerated_aging`` shocks reach its discs."""
        self._aging_clocks.append(clock)
        return self

    def bind_fleet(self, store) -> "FaultInjector":
        """Attach a :class:`~repro.fleet.store.FleetStore` so
        ``rack.loss``/``site.loss`` faults reach its failure domains."""
        self._fleet = store
        return self

    def install(self) -> "FaultInjector":
        """Register as ``engine.faults`` so sites consult this injector."""
        self.engine.faults = self
        return self

    def start(self) -> None:
        """Spawn one driver process per plan spec."""
        for index, spec in enumerate(self.plan):
            process = self.engine.spawn(
                self._driver(spec), name=f"fault-driver-{index}-{spec.kind}"
            )
            self._drivers.append(process)

    def stop(self) -> None:
        """Silence the injector: no new arrivals, no more site trips."""
        self._active = False
        for process in self._drivers:
            if not process.done:
                process.interrupt("fault-injector-stop")

    # ------------------------------------------------------------------
    # Site consultation (hot path: called from drives / PLC channel)
    # ------------------------------------------------------------------
    def check(self, site: str, target: str = "") -> Optional[FaultSpec]:
        """Armed fault for ``site``/``target``?  One-shots are consumed."""
        if not self._active:
            return None
        now = self.engine.now
        if self._windows:
            self._windows = [
                window for window in self._windows if window[2] > now
            ]
            for window_site, window_target, _until, spec in self._windows:
                if window_site == site and window_target in ("", target):
                    return spec
        for key in ((site, target), (site, "")):
            queue = self._oneshots.get(key)
            if queue:
                spec = queue.pop(0)
                self._log("trip", spec.kind, target or key[1])
                return spec
        return None

    # ------------------------------------------------------------------
    # Imperative API (tests and ad-hoc experiments)
    # ------------------------------------------------------------------
    def inject(
        self,
        kind: str,
        target: Optional[str] = None,
        duration: float = 0.0,
        detail: Optional[dict] = None,
    ) -> None:
        """Fire one fault right now (synchronously arms/applies it)."""
        spec = FaultSpec(
            kind,
            at=self.engine.now,
            target=target,
            duration=duration,
            detail=detail or {},
        )
        self._apply(spec)

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def _driver(self, spec: FaultSpec) -> Generator:
        try:
            if spec.at is not None:
                if spec.at > self.engine.now:
                    yield Delay(spec.at - self.engine.now)
                if self._active:
                    self._apply(spec)
                return
            fired = 0
            while spec.count is None or fired < spec.count:
                gap = self.rng.exponential(1.0 / spec.hazard_rate)
                if spec.until is not None and self.engine.now + gap > spec.until:
                    return
                yield Delay(gap)
                if not self._active:
                    return
                self._apply(spec)
                fired += 1
        except Interrupt:
            return

    # ------------------------------------------------------------------
    # Applying faults
    # ------------------------------------------------------------------
    def _apply(self, spec: FaultSpec) -> None:
        handler = {
            DRIVE_TRANSIENT: self._apply_drive_transient,
            DRIVE_HARD: self._apply_drive_hard,
            DISC_SECTOR_BURST: self._apply_sector_burst,
            PLC_CHANNEL: self._apply_channel_fault,
            PLC_ARM_JAM: self._apply_arm_jam,
            CACHE_LOSS: self._apply_cache_loss,
            OLFS_CRASH: self._apply_crash,
            NET_LINK_FLAP: self._apply_link_flap,
            CLIENT_DISCONNECT: self._apply_client_disconnect,
            MEDIA_AGING: self._apply_media_aging,
            RACK_LOSS: self._apply_rack_loss,
            SITE_LOSS: self._apply_site_loss,
        }[spec.kind]
        handler(spec)

    def _arm_oneshot(self, site: str, target: str, spec: FaultSpec) -> None:
        self._oneshots.setdefault((site, target), []).append(spec)

    def _open_window(self, site: str, target: str, spec: FaultSpec) -> None:
        until = self.engine.now + spec.duration
        self._windows.append((site, target, until, spec))

    def _apply_drive_transient(self, spec: FaultSpec) -> None:
        target = spec.target or self._pick_drive_id()
        self._arm_oneshot(SITE_DRIVE_BURN, target, spec)
        self._log("arm", spec.kind, target)

    def _apply_drive_hard(self, spec: FaultSpec) -> None:
        target = spec.target or self._pick_drive_id()
        if spec.duration > 0:
            self._open_window(SITE_DRIVE_OP, target, spec)
        else:
            self._arm_oneshot(SITE_DRIVE_OP, target, spec)
        self._log("arm", spec.kind, target, duration=spec.duration)

    def _apply_channel_fault(self, spec: FaultSpec) -> None:
        if spec.duration > 0:
            self._open_window(SITE_PLC_CHANNEL, spec.target or "", spec)
        else:
            self._arm_oneshot(SITE_PLC_CHANNEL, spec.target or "", spec)
        self._log("arm", spec.kind, spec.target or "*",
                  duration=spec.duration)

    def _apply_arm_jam(self, spec: FaultSpec) -> None:
        suites = self._require_ros().mech.plc.suites
        index = (
            int(spec.target)
            if spec.target is not None
            else self.rng.integers(0, len(suites))
        )
        suite = suites[index]
        drift = float(spec.detail.get("drift", DEFAULT_JAM_DRIFT))
        suite.arm_encoder.inject_drift(drift)
        self._log("apply", spec.kind, str(index), duration=spec.duration)
        if spec.duration > 0:
            def recalibrate() -> None:
                for sensor in suite.all_sensors():
                    sensor.repair()
                self._log("repair", spec.kind, str(index))

            self.engine.call_later(spec.duration, recalibrate)

    def _apply_sector_burst(self, spec: FaultSpec) -> None:
        ros = self._require_ros()
        record = self._pick_burst_victim(ros, spec.target)
        if record is None:
            self._log("skip", spec.kind, spec.target or "-")
            return
        disc = self._find_disc(ros, record.disc_id)
        if disc is None or not disc.tracks:
            self._log("skip", spec.kind, record.disc_id)
            return
        from repro.media.disc import sectors_for

        track = next(
            (t for t in disc.tracks if t.label == record.image_id),
            disc.tracks[0],
        )
        payload_sectors = max(1, sectors_for(len(track.payload)))
        burst = int(spec.detail.get("sectors", DEFAULT_BURST_SECTORS))
        offset = self.rng.integers(0, payload_sectors)
        sectors = [
            track.start_sector + (offset + i) % payload_sectors
            for i in range(min(burst, payload_sectors))
        ]
        disc.bad_sectors.update(sectors)
        self._corrupted_arrays.add(record.array_address)
        self._log(
            "apply", spec.kind, record.disc_id, sectors=len(sectors)
        )

    def _apply_cache_loss(self, spec: FaultSpec) -> None:
        ros = self._require_ros()
        dropped = 0
        for image_id in list(ros.cache.cached_ids):
            ros.cache.evict(image_id)
            dropped += 1
        file_cache = getattr(ros.ftm, "file_cache", None)
        if file_cache is not None:
            from repro.olfs.prefetch import FileGrainCache

            ros.ftm.file_cache = FileGrainCache(file_cache.capacity_bytes)
        self._log("apply", spec.kind, "read-cache", dropped=dropped)

    def _apply_link_flap(self, spec: FaultSpec) -> None:
        # No bound ros needed: the NetworkLink polls SITE_NET_LINK itself.
        if spec.duration > 0:
            self._open_window(SITE_NET_LINK, spec.target or "", spec)
        else:
            self._arm_oneshot(SITE_NET_LINK, spec.target or "", spec)
        self._log("arm", spec.kind, spec.target or "*",
                  duration=spec.duration)

    def _apply_client_disconnect(self, spec: FaultSpec) -> None:
        # One-shot consumed by the next op of the targeted session ("" =
        # whichever session checks first).
        self._arm_oneshot(SITE_CLIENT_SESSION, spec.target or "", spec)
        self._log("arm", spec.kind, spec.target or "*")

    def _apply_media_aging(self, spec: FaultSpec) -> None:
        # Environmental excursion: dump extra simulated years of media
        # decay on ONE bound aging clock (preservation campaigns bind
        # one clock per rack).  Racks live in different environments, so
        # a heat/humidity epoch hits one of them — never all replicas at
        # once; that independence is exactly what cross-rack anti-entropy
        # repair depends on.  Without a clock there is nothing to age.
        years = float(spec.detail.get("years", DEFAULT_AGING_SHOCK_YEARS))
        if not self._aging_clocks:
            self._log("skip", spec.kind, "-")
            return
        if spec.target is not None:
            index = int(spec.target) % len(self._aging_clocks)
        else:
            index = self.rng.integers(0, len(self._aging_clocks))
        newly_bad = self._aging_clocks[index].shock(years)
        self._log(
            "apply",
            spec.kind,
            f"rack-{index}",
            years=years,
            sectors=newly_bad,
        )

    def _apply_rack_loss(self, spec: FaultSpec) -> None:
        # One fleet rack goes away.  destroy=True (the default) loses its
        # shards and wakes the recovery manager; destroy=False is a plain
        # outage, restored after ``duration`` seconds when one is given.
        store = self._fleet
        if store is None:
            self._log("skip", spec.kind, spec.target or "-")
            return
        destroy = bool(spec.detail.get("destroy", True))
        target = spec.target
        if target is None:
            up = sorted(
                rack_id
                for rack_id, rack in store.racks.items()
                if rack.up
            )
            if not up:
                self._log("skip", spec.kind, "-")
                return
            target = self.rng.choice(up)
        lost = store.fail_rack(target, destroy=destroy)
        self._log(
            "apply", spec.kind, target,
            destroyed=destroy, shards_lost=lost, duration=spec.duration,
        )
        if not destroy and spec.duration > 0:
            self.engine.call_later(
                spec.duration, lambda: store.restore_rack(target)
            )

    def _apply_site_loss(self, spec: FaultSpec) -> None:
        # A whole fleet site (fire/flood): every rack in it at once.
        store = self._fleet
        if store is None:
            self._log("skip", spec.kind, spec.target or "-")
            return
        destroy = bool(spec.detail.get("destroy", True))
        target = spec.target
        if target is None:
            sites = sorted(
                {rack.site for rack in store.racks.values() if rack.up}
            )
            if not sites:
                self._log("skip", spec.kind, "-")
                return
            target = self.rng.choice(sites)
        lost = store.fail_site(target, destroy=destroy)
        self._log(
            "apply", spec.kind, target,
            destroyed=destroy, shards_lost=lost, duration=spec.duration,
        )
        if not destroy and spec.duration > 0:
            self.engine.call_later(
                spec.duration, lambda: store.restore_site(target)
            )

    def _apply_crash(self, spec: FaultSpec) -> None:
        ros = self._require_ros()
        downtime = spec.duration or DEFAULT_CRASH_DOWNTIME
        self._log("apply", spec.kind, "olfs", duration=downtime)
        self.engine.spawn(
            ros.crash_restart(downtime), name="fault-crash-restart"
        )

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------
    def _require_ros(self):
        if self._ros is None:
            raise RuntimeError(
                "FaultInjector.bind(ros) required for applied faults"
            )
        return self._ros

    def _pick_drive_id(self) -> str:
        ros = self._require_ros()
        drive_ids = sorted(
            drive.drive_id
            for drive_set in ros.mech.drive_sets
            for drive in drive_set.drives
        )
        return self.rng.choice(drive_ids)

    def _pick_burst_victim(self, ros, disc_id: Optional[str]):
        candidates = []
        for image_id in sorted(ros.dim.records):
            record = ros.dim.records[image_id]
            if record.state != "burned" or record.kind != "data":
                continue
            if record.disc_id is None or record.array_address is None:
                continue
            if disc_id is not None:
                if record.disc_id == disc_id:
                    return record
                continue
            if record.array_address in self._corrupted_arrays:
                continue
            candidates.append(record)
        if not candidates:
            return None
        return self.rng.choice(candidates)

    @staticmethod
    def _find_disc(ros, disc_id: str):
        for drive_set in ros.mech.drive_sets:
            drive = drive_set.find_disc(disc_id)
            if drive is not None:
                return drive.disc
        located = ros.mech.locate_disc(disc_id)
        if located is not None:
            roller_id, address = located
            tray = ros.mech.rollers[roller_id].tray_at(address)
            for disc in tray.discs():
                if disc.disc_id == disc_id:
                    return disc
        return None

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Cheap read-only snapshot for the system monitor."""
        return {
            "active": self._active,
            "drivers": len(self._drivers),
            "drivers_live": sum(
                1 for process in self._drivers if not process.done
            ),
            "oneshots_armed": sum(
                len(queue) for queue in self._oneshots.values()
            ),
            "windows_open": sum(
                1
                for _site, _target, until, _spec in self._windows
                if until > self.engine.now
            ),
            "events_logged": len(self.log),
        }

    def _log(self, event: str, kind: str, target: str, **extra) -> None:
        entry = {
            "t": round(self.engine.now, 6),
            "event": event,
            "kind": kind,
            "target": target,
        }
        for key in sorted(extra):
            entry[key] = round(extra[key], 6) if isinstance(
                extra[key], float
            ) else extra[key]
        self.log.append(entry)
        # Mirror the injection journal into the flight recorder so a dump
        # interleaves faults with the transitions/retries they caused.
        # The spec's own "kind" becomes "fault_kind": the recorder keeps
        # "kind" for the event-stream taxonomy ("fault.arm", "fault.trip").
        if self.engine.recorder.enabled:
            fields = {
                key: value for key, value in entry.items() if key != "t"
            }
            fields["fault_kind"] = fields.pop("kind")
            self.engine.recorder.record("fault." + fields.pop("event"),
                                        **fields)
