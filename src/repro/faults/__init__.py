"""Deterministic fault injection: plans, injector, policies, campaigns."""

from repro.faults.plan import (
    ALL_KINDS,
    BASE_KINDS,
    FLEET_KINDS,
    SERVE_KINDS,
    CACHE_LOSS,
    DISC_SECTOR_BURST,
    DRIVE_HARD,
    DRIVE_TRANSIENT,
    FaultPlan,
    FaultSpec,
    OLFS_CRASH,
    PLC_ARM_JAM,
    PLC_CHANNEL,
    RACK_LOSS,
    SITE_LOSS,
)
from repro.faults.injector import (
    FaultInjector,
    SITE_DRIVE_BURN,
    SITE_DRIVE_OP,
    SITE_PLC_CHANNEL,
)
from repro.faults.policy import RetryPolicy

__all__ = [
    "ALL_KINDS",
    "BASE_KINDS",
    "FLEET_KINDS",
    "SERVE_KINDS",
    "CACHE_LOSS",
    "DISC_SECTOR_BURST",
    "DRIVE_HARD",
    "DRIVE_TRANSIENT",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "OLFS_CRASH",
    "PLC_ARM_JAM",
    "PLC_CHANNEL",
    "RACK_LOSS",
    "SITE_LOSS",
    "RetryPolicy",
    "SITE_DRIVE_BURN",
    "SITE_DRIVE_OP",
    "SITE_PLC_CHANNEL",
]
