"""Retry/backoff policies for fault-tolerant OLFS paths.

Burning, fetching and recovery all face the same question when a drive,
disc or PLC operation fails: how many times to retry and how long to back
off between attempts.  :class:`RetryPolicy` centralizes the answer so the
three modules (and tests) share one tunable knob on
:class:`~repro.olfs.config.OLFSConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``attempts`` tries, growing delays."""

    attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    #: give up once the *cumulative* backoff would exceed this (None = no cap)
    timeout: Optional[float] = None

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delays(self) -> Iterator[float]:
        """Backoff before each retry: ``attempts - 1`` values."""
        delay = self.base_delay
        spent = 0.0
        for _ in range(self.attempts - 1):
            step = min(delay, self.max_delay)
            spent += step
            if self.timeout is not None and spent > self.timeout:
                return
            yield step
            delay *= self.multiplier

    def schedule(self) -> Iterator[tuple[int, Optional[float]]]:
        """``(attempt_index, backoff_after_failure)`` pairs.

        The backoff is ``None`` on the final attempt — the caller should
        re-raise instead of sleeping.
        """
        backoffs = list(self.delays())
        total = len(backoffs) + 1
        for index in range(total):
            yield index, (backoffs[index] if index < len(backoffs) else None)
