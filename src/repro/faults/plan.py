"""Fault taxonomy and declarative fault plans.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each naming a
fault *kind* from the taxonomy below plus either a scheduled simulated time
(``at``) or a seeded hazard rate (``hazard_rate``, faults per simulated
second, drawn as a Poisson process).  The plan is pure data — the
:class:`~repro.faults.injector.FaultInjector` interprets it against a live
system — so plans serialize deterministically and replay byte-identically.

Taxonomy
--------
``drive.burn_transient``
    The targeted drive's next burn fails mid-write (a bad disc or a
    transient write error); exercises the DAindex Failed + fresh-tray path.
``drive.hard_failure``
    The drive's electronics die for ``duration`` seconds: every mount,
    seek, read or burn segment raises :class:`~repro.errors.DriveError`
    until the window closes (an operator swaps the drive).
``disc.sector_burst``
    A burst of ``detail["sectors"]`` payload sectors on one burned disc
    goes bad (scratch / bit rot), recoverable through the §4.7 scrub +
    parity-rebuild path.
``plc.channel_fault``
    The SC <-> PLC control link errors: sends during the window (or the
    next send, if ``duration`` is 0) raise
    :class:`~repro.errors.PLCFaultError`.
``plc.arm_jam``
    The robotic arm's encoder drifts (a jam / miscalibration); feedback
    checks fail until the window closes (auto-recalibration) or an explicit
    ``Calibrate`` instruction repairs the sensors.
``cache.device_loss``
    The read-cache device is lost: every cached image (and any file-grain
    cache) is dropped; subsequent reads go back to the discs.
``olfs.crash_restart``
    OLFS crashes mid-burn and restarts after ``duration`` seconds of
    downtime: burning arrays stop at their next segment boundary (prefixes
    survive as POW tracks), volatile caches flush, and parked burns resume
    in appending mode after the restart.
``net.link_flap``
    The rack's 10GbE serving link drops for ``duration`` seconds (or for
    exactly one request when ``duration`` is 0): every request or response
    crossing the :class:`~repro.serve.network.NetworkLink` during the
    window raises :class:`~repro.errors.LinkDownError`.
``client.disconnect``
    One serving client session (``target`` = session id, or any session)
    drops: its next operation raises
    :class:`~repro.errors.SessionDisconnectedError` and the session stops
    issuing work.
``rack.loss``
    One fleet rack goes away (``target`` = rack id, or a seeded pick).
    By default the rack is *destroyed* — its shards are gone and the
    :class:`~repro.fleet.recovery.RecoveryManager` must rebuild them on
    survivors; ``detail={"destroy": False}`` makes it a plain outage
    (data intact, rack back after ``duration`` seconds).
``site.loss``
    An entire fleet site (every rack in it) is lost at once — the
    LOCKSS fire/flood scenario the per-site placement cap exists for.
    Same ``destroy``/``duration`` semantics as ``rack.loss``.  Both
    fleet kinds are logged as skips when no fleet store is bound.
``media.accelerated_aging``
    An environmental excursion (heat/humidity epoch) instantly ages every
    burned disc in ONE rack by ``detail["years"]`` simulated years: the
    targeted :class:`~repro.preserve.aging.AgingClock` (``target`` = rack
    index, or a seeded pick) applies the extra dose through its
    :class:`~repro.media.errors_model.SectorErrorModel`.  Racks sit in
    different rooms, so an excursion never hits every replica at once.
    Ignored (logged as a skip) when no aging clock is bound.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

DRIVE_TRANSIENT = "drive.burn_transient"
DRIVE_HARD = "drive.hard_failure"
DISC_SECTOR_BURST = "disc.sector_burst"
PLC_CHANNEL = "plc.channel_fault"
PLC_ARM_JAM = "plc.arm_jam"
CACHE_LOSS = "cache.device_loss"
OLFS_CRASH = "olfs.crash_restart"
NET_LINK_FLAP = "net.link_flap"
CLIENT_DISCONNECT = "client.disconnect"
MEDIA_AGING = "media.accelerated_aging"
RACK_LOSS = "rack.loss"
SITE_LOSS = "site.loss"

#: Kinds every randomized plan draws (the storage-side storm).
BASE_KINDS = (
    DRIVE_TRANSIENT,
    DRIVE_HARD,
    DISC_SECTOR_BURST,
    PLC_CHANNEL,
    PLC_ARM_JAM,
    CACHE_LOSS,
    OLFS_CRASH,
)

#: Kinds drawn only when the plan covers a serving workload
#: (``randomized(..., serve=True)``).
SERVE_KINDS = (
    NET_LINK_FLAP,
    CLIENT_DISCONNECT,
)

#: Kinds drawn only for preservation campaigns
#: (``randomized(..., preserve=True)``).
PRESERVE_KINDS = (
    MEDIA_AGING,
)

#: Kinds drawn only for fleet campaigns (``randomized(..., fleet=True)``).
FLEET_KINDS = (
    RACK_LOSS,
    SITE_LOSS,
)

#: Every fault kind the injector understands.
ALL_KINDS = BASE_KINDS + SERVE_KINDS + PRESERVE_KINDS + FLEET_KINDS


@dataclass
class FaultSpec:
    """One planned fault: what, whom, when (or how often), for how long."""

    kind: str
    #: fire once at this simulated time (mutually exclusive with hazard_rate)
    at: Optional[float] = None
    #: expected faults per simulated second (Poisson arrivals)
    hazard_rate: Optional[float] = None
    #: drive id / disc id / suite index as a string; None lets the
    #: injector pick a deterministic target from the live system
    target: Optional[str] = None
    #: fault window length in seconds (hard failures, jams, crash downtime);
    #: 0 means a one-shot fault consumed by the next matching operation
    duration: float = 0.0
    #: cap on hazard-rate firings (None = bounded only by ``until``)
    count: Optional[int] = None
    #: hazard arrivals past this simulated time are not drawn
    until: Optional[float] = None
    #: kind-specific knobs (e.g. {"sectors": 4} for a burst)
    detail: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if (self.at is None) == (self.hazard_rate is None):
            raise ValueError(
                f"{self.kind}: exactly one of 'at' or 'hazard_rate' required"
            )
        if self.hazard_rate is not None and self.hazard_rate <= 0:
            raise ValueError(f"{self.kind}: hazard_rate must be positive")
        if self.at is not None and self.at < 0:
            raise ValueError(f"{self.kind}: 'at' must be non-negative")
        if self.duration < 0:
            raise ValueError(f"{self.kind}: duration must be non-negative")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "at": self.at,
            "hazard_rate": self.hazard_rate,
            "target": self.target,
            "duration": self.duration,
            "count": self.count,
            "until": self.until,
            "detail": self.detail,
        }


class FaultPlan:
    """An ordered collection of fault specs, built declaratively."""

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self.specs: list[FaultSpec] = list(specs)

    def add(self, kind: str, **kwargs) -> FaultSpec:
        """Append a spec (``at`` defaults to 0.0 if no timing given)."""
        if "at" not in kwargs and "hazard_rate" not in kwargs:
            kwargs["at"] = 0.0
        spec = FaultSpec(kind, **kwargs)
        self.specs.append(spec)
        return spec

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def to_json(self) -> str:
        """Deterministic JSON (the campaign report embeds this)."""
        return json.dumps(
            [spec.to_dict() for spec in self.specs],
            sort_keys=True,
            separators=(",", ":"),
        )

    def shifted(self, offset: float) -> "FaultPlan":
        """A copy of this plan with every timing moved ``offset`` later.

        Scheduled times (``at``) and hazard bounds (``until``) shift;
        rates and durations are unchanged.  Preservation campaigns use
        this to aim a plan drawn over ``[0, horizon]`` at the campaign
        window, which only starts once the archive has been populated.
        """
        shifted = []
        for spec in self.specs:
            shifted.append(
                FaultSpec(
                    spec.kind,
                    at=None if spec.at is None else spec.at + offset,
                    hazard_rate=spec.hazard_rate,
                    target=spec.target,
                    duration=spec.duration,
                    count=spec.count,
                    until=None if spec.until is None else spec.until + offset,
                    detail=dict(spec.detail),
                )
            )
        return FaultPlan(shifted)

    @classmethod
    def randomized(
        cls,
        rng,
        horizon: float,
        intensity: float = 1.0,
        serve: bool = False,
        preserve: bool = False,
        fleet: bool = False,
    ) -> "FaultPlan":
        """A seeded mixed-fault schedule over ``[0, horizon]`` sim seconds.

        ``rng`` is a :class:`~repro.sim.rng.DeterministicRNG`; identical
        seeds produce identical plans.  ``intensity`` scales every hazard
        rate.  Every hazard spec is bounded by ``horizon`` so injector
        driver processes terminate and the engine can drain.

        With ``serve=True`` the plan also covers the serving path: a
        10GbE link-flap window and a client-disconnect hazard.  The serve
        specs are appended *after* every baseline draw, so ``serve=False``
        plans stay byte-identical to plans built before the serving layer
        existed.

        With ``preserve=True`` the plan adds a preservation-campaign
        fault: one accelerated-aging shock that dumps extra simulated
        years of media decay mid-run.  Its draws follow every baseline
        (and serve) draw, preserving the same byte-identity discipline.

        With ``fleet=True`` the plan adds the fleet failure domains: one
        destructive rack loss and one destructive site loss.  Their
        draws come after *every* other draw (base, serve, preserve), so
        ``fleet=False`` plans — the entire pre-fleet chaos corpus —
        replay byte-identically forever.
        """
        plan = cls()
        # Transient burn errors: the most common fault in a burning rack.
        plan.add(
            DRIVE_TRANSIENT,
            hazard_rate=intensity * 2.0 / max(horizon, 1.0),
            until=horizon,
        )
        # One hard drive failure window somewhere in the run.
        plan.add(
            DRIVE_HARD,
            at=rng.uniform(0.1, max(horizon * 0.6, 0.2)),
            duration=rng.uniform(20.0, 120.0),
        )
        # Media decay: occasional sector bursts on burned discs.
        plan.add(
            DISC_SECTOR_BURST,
            hazard_rate=intensity * 1.5 / max(horizon, 1.0),
            until=horizon,
            detail={"sectors": 2 + rng.integers(0, 4)},
        )
        # Control-path glitches.
        plan.add(
            PLC_CHANNEL,
            hazard_rate=intensity * 1.0 / max(horizon, 1.0),
            until=horizon,
            duration=rng.uniform(0.0, 5.0),
        )
        plan.add(
            PLC_ARM_JAM,
            at=rng.uniform(0.1, max(horizon * 0.8, 0.2)),
            duration=rng.uniform(10.0, 60.0),
        )
        # Cache device loss once per run.
        plan.add(CACHE_LOSS, at=rng.uniform(0.1, max(horizon, 0.2)))
        # One crash/restart, biased toward the middle of the run where
        # burns are most likely to be in flight.
        plan.add(
            OLFS_CRASH,
            at=rng.uniform(max(horizon * 0.2, 0.1), max(horizon * 0.9, 0.2)),
            duration=rng.uniform(10.0, 45.0),
        )
        if serve:
            # Serving-path faults, drawn strictly after the baseline specs
            # so serve=False plans are unchanged byte-for-byte.
            plan.add(
                NET_LINK_FLAP,
                at=rng.uniform(0.1, max(horizon * 0.7, 0.2)),
                duration=rng.uniform(1.0, 10.0),
            )
            plan.add(
                CLIENT_DISCONNECT,
                hazard_rate=intensity * 1.0 / max(horizon, 1.0),
                until=horizon,
            )
        if preserve:
            # Preservation-campaign fault, drawn after everything else so
            # plans without it keep their exact draw sequence.
            plan.add(
                MEDIA_AGING,
                at=rng.uniform(max(horizon * 0.3, 0.1), max(horizon * 0.9, 0.2)),
                detail={"years": round(rng.uniform(1.0, 6.0), 6)},
            )
        if fleet:
            # Fleet failure domains, drawn after everything else so every
            # fleet=False plan keeps its exact draw sequence.
            plan.add(
                RACK_LOSS,
                at=rng.uniform(max(horizon * 0.15, 0.1),
                               max(horizon * 0.55, 0.2)),
            )
            plan.add(
                SITE_LOSS,
                at=rng.uniform(max(horizon * 0.35, 0.1),
                               max(horizon * 0.8, 0.2)),
            )
        return plan
