"""ROS: a Rack-based Optical Storage system — full-system reproduction.

Reproduces Yan et al., *ROS: A Rack-based Optical Storage System with
Inline Accessibility for Long-Term Data Preservation* (EuroSys 2017):
the OLFS file system, the rack mechanics (rollers, robotic arms, PLC),
optical drives with calibrated burn curves, the SSD/HDD buffer tier, and
every substrate needed to regenerate the paper's tables and figures —
all on a deterministic discrete-event simulator.

Quickstart::

    from repro import ROS

    ros = ROS()                       # a 2-roller, 1.16 PB-class rack
    ros.write("/archive/a.bin", b"hello, 2076!")
    print(ros.read("/archive/a.bin").data)
    ros.flush()                       # seal buckets, burn disc arrays

See ``examples/`` and DESIGN.md for the full tour.
"""

from repro.olfs import OLFS, OLFSConfig
from repro.sim import Engine

#: The friendly name for the assembled system.
ROS = OLFS

__all__ = ["Engine", "OLFS", "OLFSConfig", "ROS"]
__version__ = "1.0.0"
