"""Recording-speed curves for Blu-ray burns (§5.4, Figures 8-10).

Two physical regimes:

**25 GB BD-R (Figure 8)** — the drive burns in CAV-like mode: constant
angular velocity means linear velocity (and hence data rate) grows with the
radius of the laser position.  Data is laid out from the inner radius
outward, so with progress ``p`` (fraction of bytes burned) the speed is

    v(p) = v_max * sqrt(c^2 + (1 - c^2) * p)

(the sqrt comes from cumulative data being proportional to the swept disc
area, r^2).  With ``v_max = 12X`` and ``c = 0.375`` the curve starts at
4.5X, ends at 12.0X, averages 8.25X and burns 25 GB in ~675 s — matching
the paper's measured average 8.2X / 675 s and Figure 8's 4X->12X ramp.

**100 GB BDXL (Figure 10)** — burned at constant 6X, except the drive's
fail-safe mechanism: when it detects servo-signal disturbance it drops to
4X, restoring 6X once the disturbance passes.  Dips cover ~3.4 % of the
disc, giving the measured 5.9X average and ~3775 s per disc (paper:
3757 s).  Dip placement is deterministic per disc id.
"""

from __future__ import annotations

import math
from typing import Iterator, NamedTuple

from repro import units
from repro.media.disc import BD25, BD100, DiscType
from repro.sim.rng import DeterministicRNG


class BurnSegment(NamedTuple):
    """One piecewise-constant slice of a burn: bytes at a speed multiple."""

    start_progress: float
    end_progress: float
    nbytes: float
    speed_multiple: float

    @property
    def seconds(self) -> float:
        return self.nbytes / units.bd_speed(self.speed_multiple)


class RecordingCurve:
    """Base class: maps burn progress to an instantaneous speed multiple."""

    #: total bytes this curve is defined over (the disc capacity)
    capacity: int

    def speed_multiple(self, progress: float) -> float:
        raise NotImplementedError

    def segments(
        self, nbytes: float, start_progress: float = 0.0, count: int = 120
    ) -> Iterator[BurnSegment]:
        """Split a burn of ``nbytes`` starting at ``start_progress`` into
        piecewise-constant segments (midpoint speed)."""
        if nbytes <= 0:
            return
        span = nbytes / self.capacity
        step = span / count
        for index in range(count):
            seg_start = start_progress + index * step
            seg_end = seg_start + step
            mid = (seg_start + seg_end) / 2.0
            yield BurnSegment(
                start_progress=seg_start,
                end_progress=seg_end,
                nbytes=nbytes / count,
                speed_multiple=self.speed_multiple(min(mid, 1.0)),
            )

    def burn_seconds(self, nbytes: float, start_progress: float = 0.0) -> float:
        """Total burn time for ``nbytes`` (no contention), by integration."""
        return sum(
            segment.seconds
            for segment in self.segments(nbytes, start_progress, count=600)
        )

    def average_multiple(self, nbytes: float) -> float:
        seconds = self.burn_seconds(nbytes)
        return nbytes / seconds / units.BLU_RAY_1X


class ZonedCAVCurve(RecordingCurve):
    """CAV ramp used for 25 GB discs: v(p) = v_max*sqrt(c^2+(1-c^2)p)."""

    def __init__(
        self,
        capacity: int = BD25.capacity,
        v_max: float = 12.0,
        inner_fraction: float = 0.375,
    ):
        if not 0 < inner_fraction <= 1:
            raise ValueError("inner_fraction must be in (0, 1]")
        self.capacity = int(capacity)
        self.v_max = v_max
        self.inner_fraction = inner_fraction

    def speed_multiple(self, progress: float) -> float:
        if not 0.0 <= progress <= 1.0:
            raise ValueError(f"progress {progress} outside [0, 1]")
        c2 = self.inner_fraction**2
        return self.v_max * math.sqrt(c2 + (1.0 - c2) * progress)


class FailSafeCurve(RecordingCurve):
    """Constant nominal speed with fail-safe dips (100 GB BDXL burns)."""

    def __init__(
        self,
        capacity: int = BD100.capacity,
        nominal: float = 6.0,
        reduced: float = 4.0,
        dip_progress_fraction: float = 0.034,
        dip_count: int = 12,
        seed: int = 0,
    ):
        self.capacity = int(capacity)
        self.nominal = nominal
        self.reduced = reduced
        self.dips: list[tuple[float, float]] = []
        if dip_progress_fraction > 0 and dip_count > 0:
            rng = DeterministicRNG(seed).child("failsafe-dips")
            width = dip_progress_fraction / dip_count
            # Place dip centres uniformly at random, non-overlapping by
            # construction of the stratified draw.
            for index in range(dip_count):
                stratum_start = index / dip_count
                centre = stratum_start + rng.uniform(0.1, 0.9) / dip_count
                start = max(0.0, centre - width / 2)
                self.dips.append((start, min(1.0, start + width)))

    def speed_multiple(self, progress: float) -> float:
        if not 0.0 <= progress <= 1.0:
            raise ValueError(f"progress {progress} outside [0, 1]")
        for start, end in self.dips:
            if start <= progress < end:
                return self.reduced
        return self.nominal


def curve_for(disc_type: DiscType, seed: int = 0) -> RecordingCurve:
    """The calibrated recording curve for a disc type."""
    if disc_type.capacity >= 100 * units.GB:
        # BDXL burns at 6X on the dedicated drive (§5.4); denser future
        # media run at their own reference speeds, fail-safe included.
        nominal = max(6.0, disc_type.reference_write_speed)
        return FailSafeCurve(
            capacity=disc_type.capacity,
            nominal=nominal,
            reduced=nominal * 2.0 / 3.0,
            seed=seed,
        )
    if disc_type.max_write_speed <= disc_type.reference_write_speed:
        # RW media: constant slow reference speed, no CAV ramp.
        return FailSafeCurve(
            capacity=disc_type.capacity,
            nominal=disc_type.reference_write_speed,
            dip_progress_fraction=0.0,
            dip_count=0,
        )
    return ZonedCAVCurve(capacity=disc_type.capacity)
