"""The optical drive state machine.

Models a Pioneer BDR-S09XLB-class half-height SATA drive (§5.1): tray
load/eject, spin-up from sleep (~2 s), mounting the disc's file system into
the local VFS (~220 ms), file seeks (~100 ms), streaming reads at the
media's sustained rate, and burning along a calibrated
:class:`~repro.drives.speed.RecordingCurve`.

Burns are *interruptible* between piecewise segments: the interrupt-burn
read policy (§4.8) asks a busy drive to stop, the partial image is committed
as a Pseudo-Over-Write track, and the remainder is appended later.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Generator, Optional, TYPE_CHECKING

from repro import units
from repro.errors import DriveError
from repro.drives.speed import RecordingCurve, curve_for
from repro.media.disc import OpticalDisc, Track
from repro.sim.engine import Delay, Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.drives.drive_set import BurnThrottle

#: Spin-up delay when a sleeping drive mounts a disc (§5.4).
SPIN_UP_SECONDS = 2.0
#: Mounting the disc's file system into the local VFS (§5.4).
VFS_MOUNT_SECONDS = 0.220
#: Seeking a file on the disc (§5.4).
FILE_SEEK_SECONDS = 0.100
#: Peak drive power (§5.1), used by the power accounting.
DRIVE_PEAK_POWER_W = 8.0


class DriveState(enum.Enum):
    EMPTY = "empty"
    TRAY_OPEN = "tray-open"
    SLEEPING = "sleeping"  # disc present, spindle stopped
    IDLE = "idle"  # disc present and spinning
    MOUNTED = "mounted"  # disc file system visible in local VFS
    BURNING = "burning"
    READING = "reading"


@dataclass
class BurnResult:
    """Outcome of a burn: completion flag, bytes/seconds, and the track."""

    completed: bool
    burned_bytes: float
    elapsed_seconds: float
    track: Optional[Track]


class OpticalDrive:
    """One optical drive: a slot in a drive set, addressable by the arm."""

    def __init__(
        self,
        engine: Engine,
        drive_id: str,
        read_efficiency: float = 1.0,
    ):
        self.engine = engine
        self.drive_id = drive_id
        self.state = DriveState.EMPTY
        self.disc: Optional[OpticalDisc] = None
        #: multiplier (<= 1) on read throughput from HBA arbitration
        self.read_efficiency = read_efficiency
        self.busy_seconds = 0.0
        self._interrupt_requested = False
        #: spindle power policy: after this many idle seconds the drive
        #: drops to SLEEPING and the next access pays the 2 s spin-up
        #: (§5.4: the spin-up and VFS mount "occur only when the drive is
        #: in the sleep state"); None = stay spinning
        self.idle_sleep_seconds = None
        self._last_active = engine.now
        # Right after a VFS mount the head sits on the freshly-read
        # metadata, so the first file access needs no separate seek —
        # matching Table 1's 0.223 s disc-in-drive row (220 ms mount + MV).
        self._just_mounted = False

    # ------------------------------------------------------------------
    # Tray + disc handling (instantaneous: the mechanical constants of the
    # arm's separate/collect phases already include drive-tray actuation)
    # ------------------------------------------------------------------
    def open_tray(self) -> None:
        if self.state in (DriveState.BURNING, DriveState.READING):
            raise DriveError(f"{self.drive_id}: busy, cannot open tray")
        self._transition(DriveState.TRAY_OPEN, "open_tray")

    def insert_disc(self, disc: OpticalDisc) -> None:
        if self.state is not DriveState.TRAY_OPEN:
            raise DriveError(f"{self.drive_id}: tray is not open")
        if self.disc is not None:
            raise DriveError(f"{self.drive_id}: already holds a disc")
        self.disc = disc
        self._transition(DriveState.TRAY_OPEN, "insert_disc")

    def close_tray(self) -> None:
        if self.state is not DriveState.TRAY_OPEN:
            raise DriveError(f"{self.drive_id}: tray is not open")
        self._transition(
            DriveState.SLEEPING if self.disc else DriveState.EMPTY,
            "close_tray",
        )

    def remove_disc(self) -> OpticalDisc:
        if self.state is not DriveState.TRAY_OPEN:
            raise DriveError(f"{self.drive_id}: tray is not open")
        if self.disc is None:
            raise DriveError(f"{self.drive_id}: no disc to remove")
        disc, self.disc = self.disc, None
        return disc

    def sleep(self) -> None:
        """Stop the spindle (drives sleep when idle to save power)."""
        if self.state in (DriveState.IDLE, DriveState.MOUNTED):
            self._transition(DriveState.SLEEPING, "sleep")

    def _transition(self, state: DriveState, reason: str) -> None:
        """Change state, journalling the edge to the flight recorder."""
        if state is self.state:
            return
        if self.engine.recorder.enabled:
            self.engine.recorder.record(
                "drive.transition",
                drive_id=self.drive_id,
                reason=reason,
                **{"from": self.state.value, "to": state.value},
            )
        self.state = state

    def _check_op_fault(self) -> None:
        """Raise if the fault injector has an armed 'drive.op' fault."""
        fault = self.engine.faults.check("drive.op", self.drive_id)
        if fault is not None:
            raise DriveError(
                f"{self.drive_id}: injected fault ({fault.kind})"
            )

    @property
    def has_disc(self) -> bool:
        return self.disc is not None

    @property
    def is_busy(self) -> bool:
        return self.state in (DriveState.BURNING, DriveState.READING)

    @property
    def is_free_for_load(self) -> bool:
        return not self.has_disc and not self.is_busy

    # ------------------------------------------------------------------
    # Spin-up and mounting
    # ------------------------------------------------------------------
    def _apply_idle_policy(self) -> None:
        """Drop a long-idle drive to SLEEPING (lazy evaluation)."""
        if (
            self.idle_sleep_seconds is not None
            and self.state in (DriveState.IDLE, DriveState.MOUNTED)
            and self.engine.now - self._last_active >= self.idle_sleep_seconds
        ):
            self._transition(DriveState.SLEEPING, "idle_policy")
            self._just_mounted = False

    def ensure_spinning(self) -> Generator:
        """Spin up from sleep (2 s); no-op if already spinning."""
        self._require_disc()
        self._apply_idle_policy()
        if self.state is DriveState.SLEEPING:
            with self.engine.trace.span(
                "drive.spin_up", "drive", {"drive_id": self.drive_id}
            ):
                yield Delay(SPIN_UP_SECONDS)
            self.busy_seconds += SPIN_UP_SECONDS
            self._transition(DriveState.IDLE, "spin_up")
        self._last_active = self.engine.now

    def mount(self) -> Generator:
        """Make the disc's fs visible in the local VFS (220 ms)."""
        self._require_disc()
        self._check_op_fault()
        yield from self.ensure_spinning()
        if self.state is not DriveState.MOUNTED:
            with self.engine.trace.span(
                "drive.mount", "drive", {"drive_id": self.drive_id}
            ):
                yield Delay(VFS_MOUNT_SECONDS)
            self.busy_seconds += VFS_MOUNT_SECONDS
            self._transition(DriveState.MOUNTED, "mount")
            self._just_mounted = True
        self._last_active = self.engine.now

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read_rate(self) -> float:
        """Sustained read rate in bytes/second for the loaded media."""
        self._require_disc()
        return self.disc.disc_type.read_speed_mbs * units.MB * self.read_efficiency

    def seek(self) -> Generator:
        """Position the optical head on a file (100 ms).

        Free immediately after a mount (head already on the metadata).
        """
        self._require_disc()
        self._check_op_fault()
        if self._just_mounted:
            self._just_mounted = False
            return
        with self.engine.trace.span(
            "drive.seek", "drive", {"drive_id": self.drive_id}
        ):
            yield Delay(FILE_SEEK_SECONDS)
        self.busy_seconds += FILE_SEEK_SECONDS
        self._last_active = self.engine.now

    def read_bytes(self, nbytes: float) -> Generator:
        """Stream ``nbytes`` from the mounted disc (state: READING)."""
        if self.state is not DriveState.MOUNTED:
            raise DriveError(f"{self.drive_id}: disc not mounted")
        self._check_op_fault()
        seconds = nbytes / self.read_rate()
        self._transition(DriveState.READING, "read")
        try:
            with self.engine.trace.span(
                "drive.read",
                "drive",
                {"drive_id": self.drive_id, "bytes": int(nbytes)},
            ):
                yield Delay(seconds)
        finally:
            self.busy_seconds += seconds
            self._transition(DriveState.MOUNTED, "read_done")
            self._last_active = self.engine.now

    def read_track_payload(self, track_index: int) -> Generator:
        """Read a full track: stream its logical size, return real payload."""
        self._require_disc()
        track = self.disc.tracks[track_index]
        yield from self.read_bytes(track.logical_size)
        return self.disc.read_track(track_index)

    # ------------------------------------------------------------------
    # Burning
    # ------------------------------------------------------------------
    def request_interrupt(self) -> None:
        """Ask a burning drive to stop at the next segment boundary."""
        if self.state is not DriveState.BURNING:
            raise DriveError(f"{self.drive_id}: not burning")
        self._interrupt_requested = True

    def burn(
        self,
        payload: bytes,
        logical_size: Optional[int] = None,
        label: str = "",
        close: bool = True,
        curve: Optional[RecordingCurve] = None,
        throttle: Optional["BurnThrottle"] = None,
        segment_count: int = 120,
    ) -> Generator:
        """Burn one image as a track; yields until done or interrupted.

        Returns a :class:`BurnResult`.  When interrupted mid-burn, the
        burned prefix is committed as an open (POW) track labelled
        ``label + '.partial'`` and ``completed`` is False.
        """
        self._require_disc()
        if self.is_busy:
            raise DriveError(f"{self.drive_id}: drive is busy")
        self._check_op_fault()
        yield from self.ensure_spinning()
        size = len(payload) if logical_size is None else int(logical_size)
        if curve is None:
            # Seed fail-safe dip placement stably from the disc's identity.
            import zlib

            seed = zlib.crc32(self.disc.disc_id.encode()) & 0xFFFF
            curve = curve_for(self.disc.disc_type, seed=seed)
        start_progress = self.disc.used_bytes / self.disc.capacity
        self._transition(DriveState.BURNING, "burn")
        self._interrupt_requested = False
        started = self.engine.now
        burned = 0.0
        burn_span = self.engine.trace.span(
            "drive.burn",
            "drive",
            {"drive_id": self.drive_id, "bytes": size, "label": label},
        )
        burn_span.__enter__()
        try:
            for segment in curve.segments(size, start_progress, segment_count):
                rate = units.bd_speed(segment.speed_multiple)
                factor = 1.0
                if throttle is not None:
                    throttle.update(self, rate)
                    factor = throttle.factor()
                yield Delay(segment.seconds / factor)
                burned += segment.nbytes
                fault = self.engine.faults.check(
                    "drive.burn", self.drive_id
                ) or self.engine.faults.check("drive.op", self.drive_id)
                if fault is not None:
                    raise DriveError(
                        f"{self.drive_id}: write error at "
                        f"{segment.end_progress:.0%} "
                        f"(injected {fault.kind})"
                    )
                if self._interrupt_requested:
                    break
        finally:
            if throttle is not None:
                throttle.remove(self)
            self.busy_seconds += self.engine.now - started
            self._transition(DriveState.IDLE, "burn_done")
            self._last_active = self.engine.now
            if self._interrupt_requested:
                burn_span.tag("interrupted", True)
            burn_span.__exit__(None, None, None)
        interrupted = self._interrupt_requested
        self._interrupt_requested = False
        if interrupted:
            fraction = burned / size if size else 1.0
            partial_payload = payload[: int(len(payload) * fraction)]
            track = self.disc.burn_track(
                partial_payload,
                logical_size=int(burned),
                label=f"{label}.partial",
                close=False,
            )
            return BurnResult(False, burned, self.engine.now - started, track)
        track = self.disc.burn_track(
            payload, logical_size=size, label=label, close=close
        )
        return BurnResult(True, float(size), self.engine.now - started, track)

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Cheap read-only snapshot for the system monitor."""
        return {
            "drive_id": self.drive_id,
            "state": self.state.value,
            "disc": self.disc.disc_id if self.disc else None,
            "busy_seconds": round(self.busy_seconds, 6),
            "interrupt_requested": self._interrupt_requested,
        }

    def _require_disc(self) -> None:
        if self.disc is None:
            raise DriveError(f"{self.drive_id}: no disc loaded")
        if self.state is DriveState.TRAY_OPEN:
            raise DriveError(f"{self.drive_id}: tray is open")

    def __repr__(self) -> str:
        disc = self.disc.disc_id if self.disc else "-"
        return f"<OpticalDrive {self.drive_id} {self.state.value} disc={disc}>"
