"""Drive sets: 12 drives sharing an HBA, plus the burn-bandwidth throttle.

ROS groups optical drives into sets of 12 (§3.3) matching the 12-disc tray;
each set hangs off PCIe3.0 HBA lanes.  Two set-level effects matter to the
evaluation:

* **Aggregate read efficiency** — twelve concurrent readers reach ~97.5 %
  of 12x the single-drive rate (Table 2: 282.5 vs 12*24.1 = 289.2 MB/s),
  modelled as a small per-drive arbitration penalty.
* **Burn staging and ceiling** — drives in an array burn do not all start
  together: the controller stages one image stream at a time (~38 s for a
  25 GB image off the disk buffer), and the shared streaming path tops out
  around 380 MB/s (Figure 9's short-lived peak).  Modelled as a start
  stagger plus a :class:`BurnThrottle` that scales every active burn by
  ``min(1, cap / total_demand)``.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro import units
from repro.errors import DriveError
from repro.drives.drive import BurnResult, OpticalDrive
from repro.drives.speed import RecordingCurve
from repro.media.disc import OpticalDisc
from repro.sim.engine import AllOf, Delay, Engine, Spawn

#: Drives per set, matching the 12-disc tray (§3.3).
DRIVES_PER_SET = 12

#: Aggregate-read arbitration efficiency (Table 2 calibration).
DEFAULT_READ_EFFICIENCY = 0.975

#: Shared streaming ceiling for concurrent burns (Figure 9 peak).
DEFAULT_BURN_CAP = 380 * units.MB

#: Image staging serialization between drive starts in an array burn.
DEFAULT_BURN_STAGGER_SECONDS = 38.0


class BurnThrottle:
    """Scales concurrent burns by ``min(1, cap / total nominal demand)``.

    Demand is re-declared by each drive at every burn segment, so the
    factor tracks the CAV ramps: early segments are slow and uncontended,
    late segments would exceed the cap and get squeezed — reproducing the
    flat-topped aggregate curve of Figure 9.
    """

    def __init__(self, cap_bytes_per_s: float = DEFAULT_BURN_CAP):
        if cap_bytes_per_s <= 0:
            raise ValueError("cap must be positive")
        self.cap = float(cap_bytes_per_s)
        self._demand: dict[object, float] = {}

    def update(self, owner: object, rate_bytes_per_s: float) -> None:
        self._demand[owner] = float(rate_bytes_per_s)

    def remove(self, owner: object) -> None:
        self._demand.pop(owner, None)

    @property
    def total_demand(self) -> float:
        return sum(self._demand.values())

    def factor(self) -> float:
        demand = self.total_demand
        if demand <= self.cap:
            return 1.0
        return self.cap / demand


class DriveSet:
    """Twelve drives addressed together by the arm and the burn scheduler."""

    def __init__(
        self,
        engine: Engine,
        set_id: int = 0,
        drive_count: int = DRIVES_PER_SET,
        read_efficiency: float = DEFAULT_READ_EFFICIENCY,
        burn_cap_bytes_per_s: float = DEFAULT_BURN_CAP,
        burn_stagger_seconds: float = DEFAULT_BURN_STAGGER_SECONDS,
    ):
        self.engine = engine
        self.set_id = set_id
        self.drives = [
            OpticalDrive(engine, f"set{set_id}-drive{index:02d}")
            for index in range(drive_count)
        ]
        self._solo_read_efficiency = 1.0
        self._group_read_efficiency = read_efficiency
        self.throttle = BurnThrottle(burn_cap_bytes_per_s)
        self.burn_stagger_seconds = burn_stagger_seconds
        #: tray address currently checked out into this set, if any
        self.loaded_from: Optional[tuple[int, tuple[int, int]]] = None

    def __len__(self) -> int:
        return len(self.drives)

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return all(not drive.has_disc for drive in self.drives)

    @property
    def is_busy(self) -> bool:
        return any(drive.is_busy for drive in self.drives)

    @property
    def is_burning(self) -> bool:
        from repro.drives.drive import DriveState

        return any(drive.state is DriveState.BURNING for drive in self.drives)

    def discs(self) -> list[OpticalDisc]:
        return [drive.disc for drive in self.drives if drive.disc is not None]

    def find_disc(self, disc_id: str) -> Optional[OpticalDrive]:
        for drive in self.drives:
            if drive.disc is not None and drive.disc.disc_id == disc_id:
                return drive
        return None

    def set_group_read_mode(self, concurrent_readers: int) -> None:
        """Apply the arbitration penalty when >1 drive reads concurrently."""
        efficiency = (
            self._group_read_efficiency
            if concurrent_readers > 1
            else self._solo_read_efficiency
        )
        for drive in self.drives:
            drive.read_efficiency = efficiency

    # ------------------------------------------------------------------
    # Array operations (simulation processes)
    # ------------------------------------------------------------------
    def open_all_trays(self) -> None:
        for drive in self.drives:
            if drive.has_disc or drive.is_busy:
                raise DriveError(
                    f"set {self.set_id}: drive {drive.drive_id} not free"
                )
            drive.open_tray()

    def eject_all(self) -> list[OpticalDisc]:
        """Open every tray and pull the discs (mechanics collects them)."""
        discs = []
        for drive in self.drives:
            if drive.is_busy:
                raise DriveError(
                    f"set {self.set_id}: drive {drive.drive_id} is busy"
                )
            if drive.disc is None:
                continue
            drive.open_tray()
            discs.append(drive.remove_disc())
            drive.close_tray()
        return discs

    def burn_array(
        self,
        images: list[tuple[bytes, Optional[int], str]],
        close: bool = True,
        curves: Optional[list[RecordingCurve]] = None,
        stagger_seconds: Optional[float] = None,
        abort_check=None,
    ) -> Generator:
        """Burn one image per drive with staged starts; returns results.

        ``images`` is a list of ``(payload, logical_size, label)`` tuples,
        one per drive in order; a ``None`` entry skips that drive (its disc
        is already fully burned).  Returns ``list[BurnResult]`` aligned
        with the input (``None`` for skipped drives).
        """
        if len(images) > len(self.drives):
            raise DriveError(
                f"{len(images)} images exceed {len(self.drives)} drives"
            )
        stagger = (
            self.burn_stagger_seconds
            if stagger_seconds is None
            else stagger_seconds
        )

        def one(index: int, drive: OpticalDrive, image) -> Generator:
            payload, logical_size, label = image
            # Staging delay, abortable in slices so an interrupt-burn
            # request (§4.8) is not stuck behind a long stagger.
            remaining = index * stagger
            while remaining > 0:
                step = min(5.0, remaining)
                yield Delay(step)
                remaining -= step
                if abort_check is not None and abort_check():
                    return None
            if abort_check is not None and abort_check():
                return None
            curve = curves[index] if curves else None
            result = yield from drive.burn(
                payload,
                logical_size=logical_size,
                label=label,
                close=close,
                curve=curve,
                throttle=self.throttle,
            )
            return result

        processes = []
        slots = []
        for index, image in enumerate(images):
            if image is None:
                continue
            drive = self.drives[index]
            if drive.disc is None:
                raise DriveError(f"{drive.drive_id}: no disc for burn")
            processes.append(
                (yield Spawn(one(index, drive, image), name=f"burn-{index}"))
            )
            slots.append(index)
        completed: list[Optional[BurnResult]] = yield AllOf(processes)
        results: list[Optional[BurnResult]] = [None] * len(images)
        for index, result in zip(slots, completed):
            results[index] = result
        return results

    def read_all_tracks(self, track_index: int = 0) -> Generator:
        """Read one full track from every loaded disc concurrently.

        Returns ``list[bytes]`` payloads in drive order.  Models Table 2's
        aggregate-read experiment.
        """
        loaded = [drive for drive in self.drives if drive.has_disc]
        self.set_group_read_mode(len(loaded))

        def one(drive: OpticalDrive) -> Generator:
            yield from drive.mount()
            yield from drive.seek()
            payload = yield from drive.read_track_payload(track_index)
            return payload

        processes = []
        for drive in loaded:
            processes.append((yield Spawn(one(drive), name=drive.drive_id)))
        payloads = yield AllOf(processes)
        self.set_group_read_mode(1)
        return payloads

    def health(self) -> dict:
        """Aggregate snapshot: per-drive states plus set-level occupancy."""
        from repro.drives.drive import DriveState

        states: dict[str, int] = {}
        for drive in self.drives:
            states[drive.state.value] = states.get(drive.state.value, 0) + 1
        return {
            "set_id": self.set_id,
            "drives": len(self.drives),
            "loaded": sum(1 for d in self.drives if d.has_disc),
            "burning": sum(
                1 for d in self.drives if d.state is DriveState.BURNING
            ),
            "reading": sum(
                1 for d in self.drives if d.state is DriveState.READING
            ),
            "states": dict(sorted(states.items())),
            "loaded_from": (
                [self.loaded_from[0], list(self.loaded_from[1])]
                if self.loaded_from is not None
                else None
            ),
            "throttle_demand_mb_s": round(
                self.throttle.total_demand / units.MB, 3
            ),
            "per_drive": [drive.health() for drive in self.drives],
        }

    def __repr__(self) -> str:
        return (
            f"<DriveSet {self.set_id}: "
            f"{sum(1 for d in self.drives if d.has_disc)}/{len(self.drives)} "
            f"loaded>"
        )
