"""Optical drives: recording-speed curves, the drive state machine, sets."""

from repro.drives.speed import (
    FailSafeCurve,
    RecordingCurve,
    ZonedCAVCurve,
    curve_for,
)
from repro.drives.drive import DriveState, OpticalDrive
from repro.drives.drive_set import BurnThrottle, DriveSet

__all__ = [
    "BurnThrottle",
    "DriveSet",
    "DriveState",
    "FailSafeCurve",
    "OpticalDrive",
    "RecordingCurve",
    "ZonedCAVCurve",
    "curve_for",
]
