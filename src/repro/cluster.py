"""Multi-rack federation (§2.3's datacenter-integration motivation).

"Optical libraries should provide a persistent online view of their data
so that the data can be shared by external clients using standard storage
interfaces that can be easily integrated and scaled in cloud datacenters."

A :class:`RackCluster` federates several ROS racks behind one namespace:
paths route to a home rack by rendezvous (highest-random-weight) hashing,
optional synchronous replication writes each file to ``replicas``
additional racks, and reads fail over when a rack is marked down.  All
racks share one simulation engine, so cluster-wide timing is coherent.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.errors import FileNotFoundOLFSError, ROSError
from repro.olfs.config import OLFSConfig
from repro.olfs.filesystem import OLFS
from repro.sim.engine import Engine


class RackDownError(ROSError):
    """Raised when no rack holding a file is reachable."""


class RackCluster:
    """Several ROS racks behind one namespace."""

    def __init__(
        self,
        rack_count: int = 2,
        replicas: int = 0,
        config: Optional[OLFSConfig] = None,
        engine: Optional[Engine] = None,
        **rack_kwargs,
    ):
        if rack_count < 1:
            raise ValueError("need at least one rack")
        if replicas >= rack_count:
            raise ValueError("replicas must be below the rack count")
        self.engine = engine or Engine()
        self.replicas = replicas
        self.racks = [
            OLFS(config=config, engine=self.engine, **rack_kwargs)
            for _ in range(rack_count)
        ]
        self._down: set[int] = set()
        # monotonic event counters, reported by health() alongside the
        # gauges — telemetry consumers compute rates from these instead
        # of diffing snapshots
        self.counters = {
            "writes": 0,
            "reads": 0,
            "read_failovers": 0,
            "rack_failures": 0,
            "rack_restores": 0,
        }

    # ------------------------------------------------------------------
    # Placement: rendezvous hashing (stable under rack addition)
    # ------------------------------------------------------------------
    def placement(self, path: str) -> list[int]:
        """Rack indices for ``path``: home first, then replicas."""
        scores = []
        for index in range(len(self.racks)):
            digest = hashlib.sha256(f"{index}:{path}".encode()).digest()
            scores.append((digest, index))
        ranked = [index for _, index in sorted(scores)]
        return ranked[: self.replicas + 1]

    def home_rack(self, path: str) -> int:
        return self.placement(path)[0]

    # ------------------------------------------------------------------
    # Availability management
    # ------------------------------------------------------------------
    def fail_rack(self, index: int) -> None:
        """Mark a rack unreachable (power/network loss)."""
        if index not in self._down:
            self.counters["rack_failures"] += 1
        self._down.add(index)

    def restore_rack(self, index: int) -> None:
        if index in self._down:
            self.counters["rack_restores"] += 1
        self._down.discard(index)

    def _alive(self, indices: list[int]) -> list[int]:
        return [index for index in indices if index not in self._down]

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------
    def write(self, path: str, data: bytes, logical_size=None):
        """Write to the home rack and every replica (synchronous)."""
        targets = self._alive(self.placement(path))
        if not targets:
            raise RackDownError(f"no rack available for {path!r}")
        traces = []
        for index in targets:
            traces.append(self.racks[index].write(path, data, logical_size))
        self.counters["writes"] += 1
        return traces[0]

    def read(self, path: str):
        """Read from the first holder that can actually serve the bytes.

        Failover covers any :class:`ROSError` — not just racks explicitly
        marked down.  A replica whose drives are hard-failed or whose read
        times out raises (DriveError, TimeoutOLFSError, ...) and the next
        holder is tried; the last error is re-raised only when every holder
        failed.
        """
        last_error: Optional[Exception] = None
        placement = self.placement(path)
        for index in self._alive(placement):
            try:
                result = self.racks[index].read(path)
            except ROSError as error:
                last_error = error
                continue
            self.counters["reads"] += 1
            if index != placement[0]:
                # served by a replica — whether the home was marked
                # down or merely erroring, it's one failover
                self.counters["read_failovers"] += 1
            return result
        if last_error is not None:
            raise last_error
        raise RackDownError(f"every rack holding {path!r} is down")

    def stat(self, path: str) -> dict:
        for index in self._alive(self.placement(path)):
            try:
                return self.racks[index].stat(path)
            except FileNotFoundOLFSError:
                continue
        raise FileNotFoundOLFSError(f"{path!r}: not in the cluster")

    def readdir(self, path: str) -> list[str]:
        """Union of the directory's entries across reachable racks."""
        names: set[str] = set()
        found = False
        for index, rack in enumerate(self.racks):
            if index in self._down:
                continue
            try:
                names.update(rack.readdir(path))
                found = True
            except FileNotFoundOLFSError:
                continue
        if not found:
            raise FileNotFoundOLFSError(f"{path!r}: not in the cluster")
        return sorted(names)

    def unlink(self, path: str) -> None:
        removed = False
        for index in self._alive(self.placement(path)):
            try:
                self.racks[index].unlink(path)
                removed = True
            except FileNotFoundOLFSError:
                continue
        if not removed:
            raise FileNotFoundOLFSError(f"{path!r}: not in the cluster")

    # ------------------------------------------------------------------
    # Generator-form operations (serve path)
    #
    # The synchronous facade above calls ``rack.read`` which internally
    # spins ``engine.run_process`` — illegal from inside a running
    # simulation process.  Serving sessions are processes, so they use
    # these ``yield from``-able forms with identical placement/failover
    # semantics.
    # ------------------------------------------------------------------
    def write_process(self, path: str, data: bytes, logical_size=None):
        """Generator form of :meth:`write` for use inside sim processes."""
        targets = self._alive(self.placement(path))
        if not targets:
            raise RackDownError(f"no rack available for {path!r}")
        traces = []
        for index in targets:
            trace = yield from self.racks[index].pi.write_file(
                path, data, logical_size
            )
            traces.append(trace)
        self.counters["writes"] += 1
        return traces[0]

    def read_process(self, path: str):
        """Generator form of :meth:`read`; same ROSError failover."""
        last_error: Optional[Exception] = None
        placement = self.placement(path)
        for index in self._alive(placement):
            try:
                result = yield from self.racks[index].pi.read_file(path)
            except ROSError as error:
                last_error = error
                continue
            self.counters["reads"] += 1
            if index != placement[0]:
                self.counters["read_failovers"] += 1
            return result
        if last_error is not None:
            raise last_error
        raise RackDownError(f"every rack holding {path!r} is down")

    def stat_process(self, path: str):
        """Generator form of :meth:`stat`."""
        for index in self._alive(self.placement(path)):
            try:
                result = yield from self.racks[index].pi.stat(path)
                return result
            except FileNotFoundOLFSError:
                continue
        raise FileNotFoundOLFSError(f"{path!r}: not in the cluster")

    # ------------------------------------------------------------------
    def flush(self) -> int:
        return sum(
            rack.flush()
            for index, rack in enumerate(self.racks)
            if index not in self._down
        )

    def status(self) -> dict:
        per_rack = [
            None if index in self._down else rack.status()
            for index, rack in enumerate(self.racks)
        ]
        alive = [s for s in per_rack if s is not None]
        return {
            "racks": len(self.racks),
            "down": sorted(self._down),
            "replicas": self.replicas,
            "discs_total": sum(s["discs_total"] for s in alive),
            "arrays_used": sum(s["arrays"]["Used"] for s in alive),
            "per_rack": per_rack,
        }

    def health(self) -> dict:
        """Cheap read-only snapshot (the subsystem ``health()`` protocol
        the system monitor aggregates — no ``status()``-style deep walk)."""
        return {
            "racks": len(self.racks),
            "racks_up": len(self.racks) - len(self._down),
            "down": sorted(self._down),
            "replicas": self.replicas,
            # monotonic counters, alongside the gauges above
            **{key: int(val) for key, val in sorted(self.counters.items())},
        }
