"""Optical disc model: capacity, WORM semantics, tracks and POW.

A disc stores *tracks* (independent burn sessions).  ROS normally burns a
whole disc image in one session (*write-all-once*, §2.1); the
Pseudo-Over-Write (POW) mechanism lets a drive append further tracks at the
cost of a freshly formatted metadata zone per track, wasting capacity and
time — which is why OLFS only uses it for the interrupt-burn read policy
(§4.8).

Large-scale experiments use *declared sizes*: a track may claim a logical
size bigger than its real payload so that burn/read timing and capacity
accounting behave like full 25/100 GB media without allocating gigabytes of
RAM.  Content-correctness tests use real payloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro import units
from repro.errors import DiscFullError, MediaError, WormViolationError

#: UDF / Blu-ray sector size in bytes (fixed by the standard, §4.5).
SECTOR_SIZE = 2048

#: Capacity lost to the formatted metadata zone of each POW track (§2.1:
#: "this mechanism causes capacity loss"); a modest, documented constant.
POW_METADATA_OVERHEAD = 128 * units.MB

#: Time the drive spends formatting a POW metadata zone ("tens of seconds").
POW_FORMAT_SECONDS = 30.0


@dataclass(frozen=True)
class DiscType:
    """A class of optical media (capacity, speed class, rewritability)."""

    name: str
    capacity: int
    worm: bool
    reference_write_speed: float  # speed multiple (e.g. 6.0 = 6X)
    max_write_speed: float
    read_speed_mbs: float  # sustained single-drive read rate, MB/s
    erase_cycles: int = 0  # only meaningful for RW media

    @property
    def sectors(self) -> int:
        return self.capacity // SECTOR_SIZE


#: 25 GB single-layer write-once BD-R (reference 6X, measured up to 12X).
BD25 = DiscType(
    name="BD-R 25GB",
    capacity=25 * units.GB,
    worm=True,
    reference_write_speed=6.0,
    max_write_speed=12.0,
    read_speed_mbs=24.1,
)

#: 100 GB triple-layer write-once BDXL (reference 4X, 6X on BDR-PR1AME).
BD100 = DiscType(
    name="BDXL 100GB",
    capacity=100 * units.GB,
    worm=True,
    reference_write_speed=4.0,
    max_write_speed=6.0,
    read_speed_mbs=18.0,
)

#: Holographic disc (§2.1: "Hologram discs with 2TB have been realized
#: and demonstrated") — projected drive characteristics.
HOLO2TB = DiscType(
    name="Holographic 2TB",
    capacity=2 * units.TB,
    worm=True,
    reference_write_speed=80.0,  # ~360 MB/s page-parallel writes
    max_write_speed=80.0,
    read_speed_mbs=400.0,
)

#: 5D optical disc (§2.1: "poised to offer hundreds of TB capacity") —
#: femtosecond-laser voxel media, speculative throughput.
FIVED_DISC = DiscType(
    name="5D 360TB",
    capacity=360 * units.TB,
    worm=True,
    reference_write_speed=50.0,
    max_write_speed=50.0,
    read_speed_mbs=250.0,
)

#: Re-writable BD-RE: slow (2X), limited erase cycles, costly (§2.1).
BD25_RW = DiscType(
    name="BD-RE 25GB",
    capacity=25 * units.GB,
    worm=False,
    reference_write_speed=2.0,
    max_write_speed=2.0,
    read_speed_mbs=24.1,
    erase_cycles=1000,
)


class DiscStatus(enum.Enum):
    BLANK = "blank"
    OPEN = "open"  # has tracks, POW-appendable (metadata zone reserved)
    CLOSED = "closed"  # finalized; no further writes


@dataclass
class Track:
    """One burn session: contiguous sectors holding an image's bytes."""

    start_sector: int
    sector_count: int
    payload: bytes
    logical_size: int
    label: str = ""

    @property
    def end_sector(self) -> int:
        return self.start_sector + self.sector_count


def sectors_for(nbytes: int) -> int:
    """Number of 2 KB sectors needed to hold ``nbytes``."""
    return -(-int(nbytes) // SECTOR_SIZE)


class OpticalDisc:
    """A single optical disc with WORM/POW burn semantics.

    The disc tracks burned regions by sector; reads below go through the
    owning library's :class:`~repro.media.errors_model.SectorErrorModel`
    when one is attached.
    """

    def __init__(self, disc_id: str, disc_type: DiscType = BD25):
        self.disc_id = disc_id
        self.disc_type = disc_type
        self.tracks: list[Track] = []
        self.status = DiscStatus.BLANK
        self.erase_count = 0
        #: sectors marked unreadable by the error model
        self.bad_sectors: set[int] = set()
        #: sectors wasted on POW metadata zones
        self._metadata_overhead_sectors = 0

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.disc_type.capacity

    @property
    def used_sectors(self) -> int:
        data = sum(track.sector_count for track in self.tracks)
        return data + self._metadata_overhead_sectors

    @property
    def used_bytes(self) -> int:
        return self.used_sectors * SECTOR_SIZE

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    @property
    def is_blank(self) -> bool:
        return self.status is DiscStatus.BLANK

    # ------------------------------------------------------------------
    # Burning
    # ------------------------------------------------------------------
    def burn_track(
        self,
        payload: bytes,
        logical_size: Optional[int] = None,
        label: str = "",
        close: bool = True,
    ) -> Track:
        """Burn one session onto the disc (state change only — timing is the
        drive's job).

        ``logical_size`` defaults to ``len(payload)``; when larger, capacity
        and timing accounting scale to it while content stays real.
        ``close=True`` finalizes the disc (write-all-once); ``close=False``
        leaves it POW-appendable, charging the metadata-zone overhead.
        """
        if self.status is DiscStatus.CLOSED:
            raise WormViolationError(f"disc {self.disc_id} is finalized")
        size = len(payload) if logical_size is None else int(logical_size)
        if size < len(payload):
            raise MediaError(
                f"logical size {size} smaller than payload {len(payload)}"
            )
        needed = sectors_for(size)
        overhead = 0
        if not close:
            overhead = sectors_for(POW_METADATA_OVERHEAD)
        free = self.capacity // SECTOR_SIZE - self.used_sectors
        if needed + overhead > free:
            raise DiscFullError(
                f"disc {self.disc_id}: need {needed + overhead} sectors, "
                f"only {free} free"
            )
        track = Track(
            start_sector=self.used_sectors,
            sector_count=needed,
            payload=payload,
            logical_size=size,
            label=label,
        )
        self.tracks.append(track)
        self._metadata_overhead_sectors += overhead
        self.status = DiscStatus.CLOSED if close else DiscStatus.OPEN
        return track

    def finalize(self) -> None:
        """Close the disc; no further tracks can be appended."""
        if self.status is DiscStatus.BLANK:
            raise MediaError(f"cannot finalize blank disc {self.disc_id}")
        self.status = DiscStatus.CLOSED

    def erase(self) -> None:
        """Blank a rewritable disc (BD-RE only, bounded erase cycles)."""
        if self.disc_type.worm:
            raise WormViolationError(
                f"disc {self.disc_id} ({self.disc_type.name}) is write-once"
            )
        if self.erase_count >= self.disc_type.erase_cycles:
            raise MediaError(
                f"disc {self.disc_id} exceeded {self.disc_type.erase_cycles} "
                "erase cycles"
            )
        self.erase_count += 1
        self.tracks.clear()
        self.bad_sectors.clear()
        self._metadata_overhead_sectors = 0
        self.status = DiscStatus.BLANK

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def find_track(self, label: str) -> Optional[Track]:
        for track in self.tracks:
            if track.label == label:
                return track
        return None

    def read_track(self, index: int) -> bytes:
        """Return a track's payload, honouring injected sector errors."""
        track = self.tracks[index]
        if self.bad_sectors:
            bad_in_track = {
                s
                for s in self.bad_sectors
                if track.start_sector <= s < track.end_sector
            }
            # Only payload-backed sectors can corrupt actual data.
            payload_sectors = sectors_for(len(track.payload))
            for sector in sorted(bad_in_track):
                if sector - track.start_sector < payload_sectors:
                    from repro.errors import SectorError

                    raise SectorError(self.disc_id, sector)
        return track.payload

    def describe(self) -> dict:
        """Self-describing summary (used by recovery scans)."""
        return {
            "disc_id": self.disc_id,
            "type": self.disc_type.name,
            "status": self.status.value,
            "tracks": [
                {"label": t.label, "logical_size": t.logical_size}
                for t in self.tracks
            ],
        }

    def __repr__(self) -> str:
        return (
            f"<OpticalDisc {self.disc_id} {self.disc_type.name} "
            f"{self.status.value} tracks={len(self.tracks)}>"
        )
