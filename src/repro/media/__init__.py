"""Optical media: discs, trays (disc arrays) and the sector-error model."""

from repro.media.disc import DiscStatus, DiscType, OpticalDisc, Track
from repro.media.tray import Tray
from repro.media.errors_model import SectorErrorModel

__all__ = [
    "DiscStatus",
    "DiscType",
    "OpticalDisc",
    "SectorErrorModel",
    "Track",
    "Tray",
]
