"""Trays: the 12-disc arrays that the roller stores and the arm carries.

Each tray lives at a (layer, slot) position in a roller (85 layers x 6
lotus-arranged slots, §3.2) and holds up to 12 vertically stacked discs.
A tray-load of discs is the unit the robotic arm moves and the unit OLFS
treats as a RAID-protected *disc array*.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import MechanicsError
from repro.media.disc import OpticalDisc

#: Discs per tray (= per disc array), fixed by the mechanical design.
DISCS_PER_TRAY = 12


class Tray:
    """A tray of up to 12 discs at a fixed roller position."""

    def __init__(self, layer: int, slot: int, capacity: int = DISCS_PER_TRAY):
        self.layer = layer
        self.slot = slot
        self.capacity = capacity
        self._discs: list[Optional[OpticalDisc]] = [None] * capacity
        #: True while the tray's discs are away in the drives.
        self.checked_out = False

    @property
    def address(self) -> tuple[int, int]:
        return (self.layer, self.slot)

    @property
    def disc_count(self) -> int:
        return sum(1 for disc in self._discs if disc is not None)

    @property
    def is_full(self) -> bool:
        return self.disc_count == self.capacity

    @property
    def is_empty(self) -> bool:
        return self.disc_count == 0

    def discs(self) -> Iterator[OpticalDisc]:
        for disc in self._discs:
            if disc is not None:
                yield disc

    def disc_at(self, position: int) -> Optional[OpticalDisc]:
        return self._discs[position]

    def put(self, position: int, disc: OpticalDisc) -> None:
        if self.checked_out:
            raise MechanicsError(f"tray {self.address} is checked out")
        if self._discs[position] is not None:
            raise MechanicsError(
                f"tray {self.address} position {position} already occupied"
            )
        self._discs[position] = disc

    def fill(self, discs: list[OpticalDisc]) -> None:
        """Populate an empty tray with a full stack of discs."""
        if not self.is_empty:
            raise MechanicsError(f"tray {self.address} is not empty")
        if len(discs) > self.capacity:
            raise MechanicsError(
                f"{len(discs)} discs exceed tray capacity {self.capacity}"
            )
        for index, disc in enumerate(discs):
            self._discs[index] = disc

    def take_all(self) -> list[OpticalDisc]:
        """Remove and return every disc (the arm fetching the stack)."""
        if self.checked_out:
            raise MechanicsError(f"tray {self.address} already checked out")
        discs = [disc for disc in self._discs if disc is not None]
        self._discs = [None] * self.capacity
        self.checked_out = True
        return discs

    def put_back(self, discs: list[OpticalDisc]) -> None:
        """Return a stack of discs fetched earlier."""
        if not self.checked_out:
            raise MechanicsError(f"tray {self.address} was not checked out")
        if len(discs) > self.capacity:
            raise MechanicsError("too many discs for tray")
        self.checked_out = False
        for index, disc in enumerate(discs):
            self._discs[index] = disc

    def __repr__(self) -> str:
        state = "out" if self.checked_out else f"{self.disc_count} discs"
        return f"<Tray L{self.layer} S{self.slot}: {state}>"
