"""Sector-error injection model.

Archive-grade Blu-ray media exhibit a sector error rate of roughly 1e-16
(§4.7).  At that rate errors essentially never appear in a simulation-scale
run, so experiments that exercise the scrub/recover path inject errors at an
elevated, configurable rate; the reliability *math* (1e-16 -> 1e-23 array
rate) lives in :mod:`repro.reliability.model`.
"""

from __future__ import annotations

from repro.media.disc import OpticalDisc
from repro.sim.rng import DeterministicRNG

#: Paper value for archive Blu-ray sector error rate (§4.7).
PAPER_SECTOR_ERROR_RATE = 1e-16


class SectorErrorModel:
    """Injects unreadable sectors into burned discs, deterministically."""

    def __init__(
        self,
        rng: DeterministicRNG,
        sector_error_rate: float = PAPER_SECTOR_ERROR_RATE,
    ):
        if not 0.0 <= sector_error_rate <= 1.0:
            raise ValueError(f"invalid error rate {sector_error_rate}")
        self.rng = rng
        self.sector_error_rate = sector_error_rate

    def age_disc(self, disc: OpticalDisc) -> int:
        """Visit every burned sector once and mark failures.

        Returns the number of newly bad sectors.  Uses a binomial draw per
        track rather than a per-sector coin flip so that full-size
        (declared) discs stay cheap to age.
        """
        new_bad = 0
        for track in disc.tracks:
            expected = track.sector_count * self.sector_error_rate
            # Draw the number of failures, then place them uniformly.
            count = self._draw_failure_count(track.sector_count, expected)
            for _ in range(count):
                sector = track.start_sector + self.rng.integers(
                    0, track.sector_count
                )
                if sector not in disc.bad_sectors:
                    disc.bad_sectors.add(sector)
                    new_bad += 1
        return new_bad

    def _draw_failure_count(self, sectors: int, expected: float) -> int:
        if expected <= 0:
            return 0
        # Poisson approximation of the binomial; exact enough at these rates.
        count = 0
        threshold = self.rng.uniform()
        # Inverse-CDF sampling of Poisson(expected).
        import math

        cumulative = math.exp(-expected)
        probability = cumulative
        while threshold > cumulative and count < sectors:
            count += 1
            probability *= expected / count
            cumulative += probability
        return count

    def corrupt_exact(self, disc: OpticalDisc, sectors: list[int]) -> None:
        """Deterministically mark specific sectors bad (failure injection)."""
        disc.bad_sectors.update(sectors)
