"""Sector-error injection model.

Archive-grade Blu-ray media exhibit a sector error rate of roughly 1e-16
(§4.7).  At that rate errors essentially never appear in a simulation-scale
run, so experiments that exercise the scrub/recover path inject errors at an
elevated, configurable rate; the reliability *math* (1e-16 -> 1e-23 array
rate) lives in :mod:`repro.reliability.model`.

Two aging APIs coexist:

* :meth:`SectorErrorModel.age_disc` — the original stateful "one scan pass"
  draw: each call consumes RNG state, so repeated calls accumulate damage.
  The scrub path and chaos rig depend on its exact draw sequence.
* :meth:`SectorErrorModel.age_to` — the preservation-campaign form: a *pure
  function* of ``(model seed, disc id, track, age)``.  The damage a disc
  carries at age ``B`` is always a superset of its damage at any age
  ``A <= B`` (monotone dose accumulation), identical seeds give identical
  corruption sets, and re-applying the same age is idempotent — the
  properties the hypothesis suite pins.
"""

from __future__ import annotations

import math

from repro.media.disc import OpticalDisc
from repro.sim.rng import DeterministicRNG

#: Paper value for archive Blu-ray sector error rate (§4.7).
PAPER_SECTOR_ERROR_RATE = 1e-16


def _poisson_icdf(threshold: float, expected: float, cap: int) -> int:
    """Inverse-CDF sample of ``Poisson(expected)`` at quantile ``threshold``.

    Monotone non-decreasing in ``expected`` for a fixed threshold — the
    property :meth:`SectorErrorModel.age_to` leans on for dose monotonicity.
    """
    if expected <= 0:
        return 0
    count = 0
    cumulative = math.exp(-expected)
    probability = cumulative
    while threshold > cumulative and count < cap:
        count += 1
        probability *= expected / count
        cumulative += probability
    return count


class SectorErrorModel:
    """Injects unreadable sectors into burned discs, deterministically.

    ``sector_error_rate`` is the per-sector failure probability of one scan
    pass (:meth:`age_disc`) and the *year-zero* hazard of the age-driven
    form (:meth:`age_to`).  ``growth_per_year`` makes the hazard grow
    linearly with disc age — media degrade faster as they get old — so the
    accumulated dose over ``age`` years is
    ``rate * (age + growth_per_year * age^2 / 2)`` per sector.
    """

    def __init__(
        self,
        rng: DeterministicRNG,
        sector_error_rate: float = PAPER_SECTOR_ERROR_RATE,
        growth_per_year: float = 0.0,
    ):
        if not 0.0 <= sector_error_rate <= 1.0:
            raise ValueError(f"invalid error rate {sector_error_rate}")
        if growth_per_year < 0.0:
            raise ValueError(f"invalid growth rate {growth_per_year}")
        self.rng = rng
        self.sector_error_rate = sector_error_rate
        self.growth_per_year = growth_per_year

    def age_disc(self, disc: OpticalDisc) -> int:
        """Visit every burned sector once and mark failures.

        Returns the number of newly bad sectors.  Uses a binomial draw per
        track rather than a per-sector coin flip so that full-size
        (declared) discs stay cheap to age.
        """
        new_bad = 0
        for track in disc.tracks:
            expected = track.sector_count * self.sector_error_rate
            # Draw the number of failures, then place them uniformly.
            count = self._draw_failure_count(track.sector_count, expected)
            for _ in range(count):
                sector = track.start_sector + self.rng.integers(
                    0, track.sector_count
                )
                if sector not in disc.bad_sectors:
                    disc.bad_sectors.add(sector)
                    new_bad += 1
        return new_bad

    def _draw_failure_count(self, sectors: int, expected: float) -> int:
        if expected <= 0:
            return 0
        # Poisson approximation of the binomial; exact enough at these rates.
        threshold = self.rng.uniform()
        return _poisson_icdf(threshold, expected, sectors)

    # ------------------------------------------------------------------
    # Age-driven form (preservation campaigns)
    # ------------------------------------------------------------------
    def rate_at(self, age_years: float) -> float:
        """Instantaneous per-sector hazard at disc age ``age_years``."""
        age = max(0.0, age_years)
        return self.sector_error_rate * (1.0 + self.growth_per_year * age)

    def expected_dose(self, sectors: int, age_years: float) -> float:
        """Expected bad-sector count accumulated by ``age_years``.

        The integral of :meth:`rate_at` over ``[0, age]`` times the sector
        count — monotone non-decreasing in age.
        """
        age = max(0.0, age_years)
        per_sector = self.sector_error_rate * (
            age + 0.5 * self.growth_per_year * age * age
        )
        return sectors * per_sector

    def bad_sectors_at(
        self, disc: OpticalDisc, age_years: float
    ) -> set[int]:
        """The corruption set ``disc`` carries at ``age_years`` — pure.

        Derived entirely from the model seed, the disc id, the track index
        and the age: one substream per ``(disc, track)`` supplies a fixed
        Poisson quantile plus a position sequence, and the age only moves
        the expected dose.  Because the quantile is fixed and positions are
        read as a prefix of the same sequence, ``bad_sectors_at(d, A)`` is
        a subset of ``bad_sectors_at(d, B)`` whenever ``A <= B``.
        """
        bad: set[int] = set()
        for index, track in enumerate(disc.tracks):
            stream = self.rng.child(f"age:{disc.disc_id}:{index}")
            threshold = stream.uniform()
            expected = self.expected_dose(track.sector_count, age_years)
            count = _poisson_icdf(threshold, expected, track.sector_count)
            for _ in range(count):
                bad.add(
                    track.start_sector
                    + stream.integers(0, track.sector_count)
                )
        return bad

    def age_to(self, disc: OpticalDisc, age_years: float) -> int:
        """Advance ``disc`` to ``age_years``: apply its corruption set.

        Idempotent per age and cumulative across ages (re-applying an older
        age never removes damage — WORM media only decay).  Returns the
        number of newly bad sectors.
        """
        target = self.bad_sectors_at(disc, age_years)
        new = target - disc.bad_sectors
        disc.bad_sectors |= new
        return len(new)

    def corrupt_exact(self, disc: OpticalDisc, sectors: list[int]) -> None:
        """Deterministically mark specific sectors bad (failure injection)."""
        disc.bad_sectors.update(sectors)
