"""Operator console: ``python -m repro <command>``.

Inspection tooling over the models — no persistent state, every command
builds what it needs and prints a report:

    demo         end-to-end write -> burn -> robotic fetch walkthrough
    mechanics    Table-3 load/unload times for any layer
    burncurve    Figure-8/10 speed curves for 25/100 GB media
    stacks       Figure-6 throughput of every frontend configuration
    tco          the §2.1 cost comparison, with adjustable scenario
    reliability  §4.7 array error rates and §4.2 MV sizing
    power        §5.1 power corner points
    trace        run a traced scenario, print the span tree, export JSON
    monitor      run a scenario under full monitoring, emit the run report
    chaos        seeded fault-injection campaign with invariant checks
    serve        multi-tenant serving load run with QoS percentile report
    preserve     decades-scale preservation campaign, loss-rate verdict
    fleet        multi-site fleet campaign: site loss, recovery, I8 audit
    fleet-monitor  telemetry agents + closed-loop supervisor, I9 audit
    bench        engine events/s + scenario wall-clock, perf-gate check
    profile      cProfile a scenario or microbench, top-N hotspots
"""

from __future__ import annotations

import argparse
import sys

from repro import units


def _print_rows(rows: list[dict]) -> None:
    if not rows:
        return
    keys = list(rows[0].keys())
    widths = {
        key: max(len(str(key)), *(len(str(row.get(key, ""))) for row in rows))
        for key in keys
    }
    print("  ".join(str(key).ljust(widths[key]) for key in keys))
    for row in rows:
        print("  ".join(str(row.get(key, "")).ljust(widths[key]) for key in keys))


def cmd_demo(_args) -> int:
    from repro import ROS, OLFSConfig

    config = OLFSConfig(
        data_discs_per_array=3, parity_discs_per_array=1
    ).scaled_for_tests(bucket_capacity=64 * 1024)
    ros = ROS(config=config, roller_count=1,
              buffer_volume_capacity=200 * units.MB)
    print("writing 9 files ...")
    for index in range(9):
        ros.write(f"/demo/file-{index}.bin", bytes([index]) * 9000)
    print("burning ...")
    ros.flush()
    status = ros.status()
    print(f"arrays used: {status['arrays']['Used']}, "
          f"sim clock {ros.now / 60:.1f} min")
    path = "/demo/file-0.bin"
    ros.cache.evict(ros.stat(path)["locations"][0])
    result = ros.read(path)
    print(f"cold read via {result.source}: {result.total_seconds:.1f} s "
          f"(first byte {result.first_byte_seconds * 1e3:.1f} ms)")
    return 0


def cmd_mechanics(args) -> int:
    from repro.mechanics.timing import DEFAULT_TIMINGS

    rows = []
    for layer in args.layers:
        fraction = layer / 84.0
        rows.append(
            {
                "layer": layer,
                "load_s": round(DEFAULT_TIMINGS.load_total(fraction), 2),
                "unload_s": round(DEFAULT_TIMINGS.unload_total(fraction), 2),
                "load_parallel_s": round(
                    DEFAULT_TIMINGS.load_total(fraction, parallel=True), 2
                ),
            }
        )
    _print_rows(rows)
    return 0


def cmd_burncurve(args) -> int:
    from repro.drives.speed import FailSafeCurve, ZonedCAVCurve
    from repro.media.disc import BD25, BD100

    if args.disc == 25:
        curve, capacity = ZonedCAVCurve(), BD25.capacity
    else:
        curve, capacity = FailSafeCurve(seed=5), BD100.capacity
    rows = [
        {
            "progress": f"{p:.0%}",
            "speed_x": round(curve.speed_multiple(p / 1.0), 2),
            "mb_s": round(
                curve.speed_multiple(p) * units.BLU_RAY_1X / units.MB, 1
            ),
        }
        for p in [i / 10 for i in range(11)]
    ]
    _print_rows(rows)
    print(f"total burn: {curve.burn_seconds(capacity):.0f} s, "
          f"average {curve.average_multiple(capacity):.2f}X")
    return 0


def cmd_stacks(_args) -> int:
    from repro.frontend import CONFIGURATIONS, make_stack

    base = make_stack("ext4")
    rows = []
    for name in CONFIGURATIONS:
        stack = make_stack(name)
        read, write = stack.normalized(base)
        rows.append(
            {
                "config": name,
                "read_mb_s": round(stack.read_throughput() / units.MB, 1),
                "write_mb_s": round(stack.write_throughput() / units.MB, 1),
                "norm_read": round(read, 3),
                "norm_write": round(write, 3),
            }
        )
    _print_rows(rows)
    return 0


def cmd_tco(args) -> int:
    from repro.reliability.tco import TCOInputs, compare_all

    inputs = TCOInputs(
        capacity_pb=args.capacity_pb, horizon_years=args.years
    )
    rows = []
    for name, data in compare_all(inputs).items():
        rows.append(
            {
                "media": name,
                "total_k$": round(data["total"] / 1000, 1),
                "vs_optical": round(data["vs_optical"], 2),
            }
        )
    print(f"scenario: {args.capacity_pb} PB for {args.years} years")
    _print_rows(rows)
    return 0


def cmd_reliability(_args) -> int:
    from repro.reliability import (
        mv_capacity_bytes,
        raid5_array_error_rate,
        raid6_array_error_rate,
    )

    print(f"11+1 array error rate: {raid5_array_error_rate():.2e}")
    print(f"10+2 array error rate: {raid6_array_error_rate():.2e}")
    print(f"MV for 1B files + 1B dirs: "
          f"{mv_capacity_bytes() / units.TB:.2f} TB")
    return 0


def cmd_power(_args) -> int:
    from repro.power import PowerModel

    print(f"idle power: {PowerModel.idle_power_w():.0f} W")
    print(f"peak power: {PowerModel.peak_power_w():.0f} W")
    return 0


#: Scenarios ``python -m repro trace`` / ``python -m repro monitor`` can run.
TRACE_SCENARIOS = ("cold-read", "write-burn", "ops")


def _small_traced_ros(seed: int, monitoring: bool = False,
                      monitor_period: float = 5.0):
    from repro import ROS, OLFSConfig

    config = OLFSConfig(
        data_discs_per_array=3, parity_discs_per_array=1
    ).scaled_for_tests(bucket_capacity=64 * 1024)
    return ROS(
        config=config,
        roller_count=1,
        buffer_volume_capacity=200 * units.MB,
        tracing=True,
        trace_seed=seed,
        monitoring=monitoring,
        monitor_period=monitor_period,
    )


def _run_scenario(ros, scenario: str) -> str:
    """Drive one canonical scenario; returns its headline summary line."""
    tracer = ros.tracer
    if scenario == "cold-read":
        for index in range(3):
            ros.write(f"/trace/file-{index}.bin", bytes([index]) * 9000)
        ros.flush()
        path = "/trace/file-0.bin"
        ros.cache.evict(ros.stat(path)["locations"][0])
        tracer.clear()
        result = ros.read(path)
        ros.drain_background()
        return (
            f"cold read served from {result.source} in "
            f"{result.total_seconds:.3f} s\n"
        )
    if scenario == "write-burn":
        tracer.clear()
        for index in range(3):
            ros.write(f"/trace/file-{index}.bin", bytes([index]) * 9000)
        ros.flush()
        ros.drain_background()
        return f"3 files written and burned in {ros.now:.1f} s (simulated)\n"
    # ops: the Figure-7 sequence, everything warm
    ros.mkdir("/trace")
    ros.write("/trace/warm.bin", b"w" * 4096)
    tracer.clear()
    ros.stat("/trace/warm.bin")
    ros.read("/trace/warm.bin")
    ros.readdir("/trace")
    return "stat/read/readdir on a warm file\n"


def cmd_trace(args) -> int:
    """Run one traced scenario end to end and report its span trees."""
    from repro.sim.tracing import to_chrome_trace, to_flat_json

    ros = _small_traced_ros(args.seed)
    tracer = ros.tracer
    print(_run_scenario(ros, args.scenario))

    for root in tracer.roots():
        print(tracer.render_tree(root))
        print()
    print(f"{len(tracer.spans)} spans recorded")
    snapshot = ros.metrics.snapshot()
    histograms = sum(
        1 for value in snapshot.values() if isinstance(value, dict)
    )
    print(f"metrics: {len(snapshot)} registered "
          f"({len(snapshot) - histograms} counters/gauges, "
          f"{histograms} histograms)")

    if args.out:
        if args.format == "prom":
            from repro.obs import to_prometheus

            exported = to_prometheus(ros.metrics)
        else:
            exporter = (
                to_chrome_trace if args.format == "chrome" else to_flat_json
            )
            exported = exporter(tracer)
        with open(args.out, "w") as handle:
            handle.write(exported)
        print(f"wrote {args.format} trace to {args.out}")
    return 0


def cmd_monitor(args) -> int:
    """Run a scenario under full monitoring; emit the run report."""
    from repro.obs import build_report, render_report, report_json

    ros = _small_traced_ros(
        args.seed, monitoring=True, monitor_period=args.period
    )
    print(_run_scenario(ros, args.scenario))

    report = build_report(ros, monitor=ros.monitor, recorder=ros.recorder)
    print(render_report(report))

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report_json(report) + "\n")
        print(f"wrote run report to {args.out}")
    if args.flight_out:
        count = ros.recorder.dump(args.flight_out)
        print(f"wrote {count} flight-recorder events to {args.flight_out}")

    slo = report.get("monitor", {}).get("slo")
    violations = slo["violation_count"] if slo else 0
    if violations:
        print(f"SLO VIOLATIONS: {violations}")
        return 1
    return 0


def cmd_chaos(args) -> int:
    """Run a seeded chaos campaign (twice, by default) and audit it.

    The same seed must produce a byte-identical report every time; any
    divergence or invariant violation is a non-zero exit.
    """
    import json

    from repro.faults.campaign import report_to_json, run_campaign

    runs = []
    for _ in range(max(1, args.campaigns)):
        report = run_campaign(
            args.seed,
            args.ops,
            intensity=args.intensity,
            monitor=args.monitor,
            flight_out=args.flight_out,
            serve=args.serve,
            fleet=args.fleet,
        )
        runs.append(report_to_json(report))
    identical = all(run == runs[0] for run in runs[1:])
    report = json.loads(runs[0])

    print(f"chaos campaign: seed={args.seed} ops={args.ops} "
          f"intensity={args.intensity} (x{len(runs)} runs)")
    print(f"  plan: {len(report['plan'])} fault specs, "
          f"{len(report['fault_events'])} injector events, "
          f"sim clock {report['final_time'] / 60:.1f} min")
    workload = report["workload"]
    print(f"  workload: {workload['writes']} writes "
          f"({workload['write_errors']} failed), {workload['reads']} reads "
          f"({workload['read_errors']} failed), {workload['flushes']} flushes"
          f" -> {report['acked_files']} files acknowledged")
    for inv in report["invariants"]:
        mark = "ok" if inv["ok"] else "VIOLATED"
        print(f"  invariant {inv['invariant']}: {mark} "
              f"(checked {inv['detail'].get('checked', '-')})")
    serve_section = report.get("serve")
    if serve_section is not None:
        outcomes = serve_section["outcomes"]
        print(f"  serving: {serve_section['ops']} session ops "
              f"({outcomes.get('ok', 0)} ok, "
              f"{outcomes.get('rejected', 0)} rejected, "
              f"{outcomes.get('timeout', 0)} timed out, "
              f"{outcomes.get('link_down', 0)} link-down, "
              f"{outcomes.get('disconnected', 0)} disconnected), "
              f"{serve_section['link']['drops']} link drops")
    monitor_section = report.get("monitor")
    if monitor_section is not None:
        slo = monitor_section.get("slo") or {}
        recorder = report.get("flight_recorder", {})
        print(f"  monitor: {monitor_section['samples']} health samples, "
              f"{slo.get('violation_count', 0)} SLO violation(s), "
              f"{recorder.get('recorded', 0)} flight events")
        if "flight_dump" in report:
            print(f"  flight recorder dumped to {report['flight_dump']}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(runs[0])
        print(f"  wrote report to {args.out}")
    if not identical:
        print("DETERMINISM VIOLATION: reports differ across identical runs")
        return 1
    if report["workload_violations"]:
        print(f"MID-CAMPAIGN VIOLATIONS: {report['workload_violations']}")
        return 1
    if not report["ok"]:
        for inv in report["invariants"]:
            if not inv["ok"]:
                print(f"FAILED {inv['invariant']}: {inv['detail']}")
        return 1
    print(f"  all {len(report['invariants'])} invariants hold; "
          f"{len(runs)} runs byte-identical")
    return 0


def cmd_serve(args) -> int:
    """Run the multi-tenant serving harness and print the QoS report.

    Runs the identical experiment ``--runs`` times and byte-compares the
    canonical reports — the determinism contract ``python -m repro
    chaos`` enforces, extended to serving.
    """
    import json

    from repro.serve import render_text, report_to_json, run_serve

    if args.xl:
        return _cmd_serve_xl(args)
    runs = []
    for index in range(max(1, args.runs)):
        report = run_serve(
            args.seed,
            duration_s=args.duration,
            prepopulate=args.prepopulate,
            backend=args.backend,
            faults=args.faults,
            max_inflight=args.max_inflight,
            # Dump (and embed) the flight journal on the first run only:
            # later byte-compared runs must not carry a different path,
            # and one dump of a deterministic run is all anyone needs.
            flight_out=args.flight_out if index == 0 else None,
        )
        if index == 0 and args.flight_out:
            print(f"wrote flight-recorder dump to {args.flight_out}")
            report.pop("flight_dump", None)
        runs.append(report_to_json(report))
    identical = all(run == runs[0] for run in runs[1:])
    report = json.loads(runs[0])

    print(render_text(report))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(runs[0])
        print(f"wrote report to {args.out}")
    if not identical:
        print("DETERMINISM VIOLATION: reports differ across identical runs")
        return 1
    if not report["totals"]["ops"]:
        print("EMPTY RUN: no operations were issued")
        return 1
    if not report["admission_audit"]["ok"]:
        print(f"ADMISSION AUDIT FAILED: "
              f"{report['admission_audit']['detail']}")
        return 1
    missed = [
        name for name, entry in report["tenants"].items()
        if entry.get("slo_met") is False
    ]
    if missed:
        print(f"SLO MISSED by: {', '.join(missed)}")
        return 1
    return 0


def _cmd_serve_xl(args) -> int:
    """Run the sharded XL campaign; byte-compare runs *and* layouts.

    With ``--shards N > 1`` the same campaign is re-run single-shard and
    the canonical reports must match byte for byte — the sharded event
    loop's determinism contract, checked from the operator console.
    """
    import json

    from repro.serve.xl import report_to_json, run_serve_xl

    def one(shards: int) -> str:
        return report_to_json(run_serve_xl(
            args.seed, racks=args.racks, shards=shards,
            duration_s=args.duration,
        ))

    runs = [one(args.shards) for _ in range(max(1, args.runs))]
    identical = all(run == runs[0] for run in runs[1:])
    layout_ok = True
    if args.shards > 1:
        layout_ok = one(1) == runs[0]
    report = json.loads(runs[0])
    totals = report["totals"]
    print(f"serve-xl: seed={args.seed} racks={args.racks} "
          f"shards={args.shards} duration={args.duration:.0f}s")
    print(f"  ops={totals['ops']} ok={totals['ok']} "
          f"failed={totals['failed']} remote={totals['remote']} "
          f"events={report['events_issued']}")
    outages = [name for name, entry in report["racks"].items()
               if entry["outage"]]
    print(f"  outages: {', '.join(outages) if outages else 'none'}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(runs[0])
        print(f"wrote report to {args.out}")
    if not identical:
        print("DETERMINISM VIOLATION: reports differ across identical runs")
        return 1
    if not layout_ok:
        print(f"SHARD-LAYOUT VIOLATION: shards={args.shards} report "
              f"differs from the single-shard report")
        return 1
    if not totals["ops"]:
        print("EMPTY RUN: no operations were issued")
        return 1
    return 0


def cmd_preserve(args) -> int:
    """Run a preservation campaign (twice, by default) and audit it.

    The same seed must produce a byte-identical report every time.  With
    ``--compare`` the same campaign also runs with scrub/audit/migration
    disabled, and the run fails unless the preservation machinery made
    the loss-rate metric strictly better (or kept a lossless archive
    lossless).
    """
    import json

    from repro.preserve import report_to_json, run_preserve

    runs = []
    for _ in range(max(1, args.runs)):
        report = run_preserve(
            args.seed,
            files=args.files,
            years=args.years,
            intensity=args.intensity,
            scrub=not args.no_scrub,
            audit=not args.no_audit,
            migrate=not args.no_migrate,
            faults=not args.no_faults,
        )
        runs.append(report_to_json(report))
    identical = all(run == runs[0] for run in runs[1:])
    report = json.loads(runs[0])

    verdict = report["verdict"]
    print(f"preserve campaign: seed={args.seed} files={args.files} "
          f"years={args.years} intensity={args.intensity} "
          f"(x{len(runs)} runs)")
    print(f"  config: scrub={report['config']['scrub']} "
          f"audit={report['config']['audit']} "
          f"migrate={report['config']['migrate']} "
          f"faults={report['config']['faults']}")
    print(f"  plan: {len(report['plan'])} fault specs, "
          f"{len(report['fault_events'])} injector events, "
          f"sim clock {report['final_time'] / 60:.1f} min")
    for index, aging in enumerate(report["aging"]):
        print(f"  rack {index} aging: {aging['discs_tracked']} discs to "
              f"{aging['max_age_years']:.1f} years "
              f"({aging['shocks']} shock(s), "
              f"{aging['newly_bad_total']} sectors decayed)")
    for index, scrub in enumerate(report["scrub"]):
        print(f"  rack {index} scrub: {scrub['passes']} passes, "
              f"{scrub['arrays_scrubbed']} arrays, "
              f"{scrub['errors_found']} errors found, "
              f"{scrub['images_repaired']} repaired, "
              f"{scrub['images_migrated']} migrated")
    audit = report.get("audit")
    if audit is not None:
        print(f"  audit: {audit['rounds']} rounds, "
              f"{audit['repairs']} cross-rack repairs, "
              f"{audit['unreadable']} unreadable copies seen")
    for inv in report["invariants"]:
        mark = "ok" if inv["ok"] else "VIOLATED"
        print(f"  invariant {inv['invariant']}: {mark}")
    print(f"  verdict: {verdict['bytes_lost']} / "
          f"{verdict['stored_bytes']} bytes lost "
          f"({len(verdict['files_lost'])} files) -> "
          f"{verdict['bytes_lost_per_exabyte_decade']:.3g} "
          f"bytes lost per exabyte-decade")

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(runs[0])
        print(f"  wrote report to {args.out}")
    if not identical:
        print("DETERMINISM VIOLATION: reports differ across identical runs")
        return 1
    if not report["ok"]:
        for inv in report["invariants"]:
            if not inv["ok"]:
                print(f"FAILED {inv['invariant']}: {inv['detail']}")
        return 1
    if args.compare:
        baseline = run_preserve(
            args.seed,
            files=args.files,
            years=args.years,
            intensity=args.intensity,
            scrub=False,
            audit=False,
            migrate=False,
            faults=not args.no_faults,
        )
        base_metric = baseline["verdict"]["bytes_lost_per_exabyte_decade"]
        metric = verdict["bytes_lost_per_exabyte_decade"]
        print(f"  unattended baseline: "
              f"{baseline['verdict']['bytes_lost']} bytes lost -> "
              f"{base_metric:.3g} per exabyte-decade")
        improved = metric < base_metric or (metric == 0 and base_metric == 0)
        if not improved:
            print("NO PRESERVATION BENEFIT: metric not strictly below "
                  "the unattended baseline")
            return 1
    print(f"  all {len(report['invariants'])} invariants hold; "
          f"{len(runs)} runs byte-identical")
    return 0


def cmd_fleet(args) -> int:
    """Run a fleet campaign (twice, by default) and audit it.

    The same seed must produce a byte-identical report every time; any
    divergence, invariant violation, or lost byte is a non-zero exit.
    """
    import json

    from repro.fleet import render_text, report_to_json, run_fleet

    runs = []
    for index in range(max(1, args.runs)):
        report = run_fleet(
            args.seed,
            sites=args.sites,
            racks_per_site=args.racks_per_site,
            clients=args.clients,
            duration_s=args.duration,
            objects=args.objects,
            arrival_rate=args.arrival_rate,
            rack_loss=not args.no_rack_loss,
            site_loss=not args.no_site_loss,
            flight_out=args.flight_out if index == 0 else None,
        )
        if index == 0 and args.flight_out:
            print(f"wrote flight-recorder dump to {args.flight_out}")
            report.pop("flight_dump", None)
        runs.append(report_to_json(report))
    identical = all(run == runs[0] for run in runs[1:])
    report = json.loads(runs[0])

    print(render_text(report))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(runs[0])
        print(f"wrote report to {args.out}")
    if not identical:
        print("DETERMINISM VIOLATION: reports differ across identical runs")
        return 1
    if not report["ok"]:
        for inv in report["invariants"]:
            if not inv["ok"]:
                print(f"FAILED {inv['invariant']}: {inv['detail']}")
        if report["bytes_lost"]:
            print(f"BYTES LOST: {report['bytes_lost']}")
        return 1
    print(f"all {len(report['invariants'])} invariants hold, "
          f"0 bytes lost; {len(runs)} runs byte-identical")
    return 0


def cmd_fleet_monitor(args) -> int:
    """Run a monitored fleet campaign (twice, by default) and audit it.

    Telemetry agents replicate rack health into the central store, the
    closed-loop supervisor remediates what the rules detect, and the
    audit demands I9 ("remediation converges").  Non-zero exit on any
    divergence between runs, invariant violation, lost byte, or —
    with the rack-loss fault enabled — an empty remediation log (a
    campaign where the closed loop never closed proves nothing).
    """
    import json

    from repro.fleet.monitor import (
        render_text,
        report_to_json,
        run_fleet_monitor,
    )

    runs = []
    for index in range(max(1, args.runs)):
        report = run_fleet_monitor(
            args.seed,
            sites=args.sites,
            racks_per_site=args.racks_per_site,
            clients=args.clients,
            duration_s=args.duration,
            objects=args.objects,
            arrival_rate=args.arrival_rate,
            rack_loss=not args.no_rack_loss,
            site_loss=args.site_loss,
            telemetry=not args.no_telemetry,
            flight_out=args.flight_out if index == 0 else None,
        )
        if index == 0 and args.flight_out:
            print(f"wrote flight-recorder dump to {args.flight_out}")
            report.pop("flight_dump", None)
        runs.append(report_to_json(report))
    identical = all(run == runs[0] for run in runs[1:])
    report = json.loads(runs[0])

    print(render_text(report))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(runs[0])
        print(f"wrote report to {args.out}")
    if not identical:
        print("DETERMINISM VIOLATION: reports differ across identical runs")
        return 1
    if not report["ok"]:
        for inv in report["invariants"]:
            if not inv["ok"]:
                print(f"FAILED {inv['invariant']}: {inv['detail']}")
        if report["bytes_lost"]:
            print(f"BYTES LOST: {report['bytes_lost']}")
        return 1
    telemetry_on = not args.no_telemetry
    if telemetry_on and not args.no_rack_loss and not report["remediations"]:
        print("NO REMEDIATION: rack loss was injected but the supervisor "
              "never fired an action")
        return 1
    print(f"all {len(report['invariants'])} invariants hold, "
          f"{report['remediations']} remediation action(s), 0 bytes lost; "
          f"{len(runs)} runs byte-identical")
    return 0


def cmd_bench(args) -> int:
    """Engine microbenches (events/s) + scenario wall-clock, with a gate."""
    from repro.perf.harness import (
        append_trajectory,
        gate_check,
        load_baseline,
        run_benchmarks,
    )

    entry = run_benchmarks(
        scale=args.scale,
        repeats=args.repeats,
        scenarios=not args.no_scenarios,
        monitor=args.monitor,
    )
    if args.label:
        entry["label"] = args.label

    rows = [
        {"microbench": name, "events_per_sec": value}
        for name, value in entry["events_per_sec"].items()
    ]
    _print_rows(rows)
    for name, stats in entry.get("scenarios", {}).items():
        # Keep the (large) attached run report out of the trajectory file.
        report = stats.pop("run_report", None)
        print(f"scenario {name}: {stats['wall_seconds']:.3f} s wall "
              f"(sim {stats.get('sim_seconds', '-')} s)")
        if report is not None:
            monitor_section = report.get("monitor") or {}
            slo = monitor_section.get("slo") or {}
            print(f"  run report: {monitor_section.get('samples', 0)} health "
                  f"sample(s), {slo.get('violation_count', 0)} SLO "
                  f"violation(s)")

    if args.out:
        append_trajectory(entry, args.out)
        print(f"appended to {args.out}")

    if args.check:
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError:
            print(f"perf gate SKIPPED: no baseline at {args.baseline}")
            return 0
        failures = gate_check(
            entry["events_per_sec"], baseline, tolerance=args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"PERF GATE FAILED: {failure}")
            return 1
        print(f"perf gate ok (tolerance {args.tolerance:.0%} "
              f"below {args.baseline})")
    return 0


def cmd_profile(args) -> int:
    """cProfile one scenario or microbench and print the top-N hotspots."""
    from repro.perf.harness import profile_target

    try:
        report, stats = profile_target(args.target, top=args.top,
                                       scale=args.scale)
    except KeyError as error:
        print(error.args[0])
        return 2
    if stats:
        print(f"scenario stats: {stats}")
    print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ROS reproduction operator console",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="end-to-end walkthrough").set_defaults(
        handler=cmd_demo
    )

    mech = sub.add_parser("mechanics", help="Table-3 timings by layer")
    mech.add_argument(
        "--layers", type=int, nargs="+", default=[0, 42, 84]
    )
    mech.set_defaults(handler=cmd_mechanics)

    burn = sub.add_parser("burncurve", help="Figure-8/10 burn curves")
    burn.add_argument("--disc", type=int, choices=(25, 100), default=25)
    burn.set_defaults(handler=cmd_burncurve)

    sub.add_parser("stacks", help="Figure-6 stack throughput").set_defaults(
        handler=cmd_stacks
    )

    tco = sub.add_parser("tco", help="§2.1 cost comparison")
    tco.add_argument("--years", type=float, default=100.0)
    tco.add_argument("--capacity-pb", type=float, default=1.0)
    tco.set_defaults(handler=cmd_tco)

    sub.add_parser(
        "reliability", help="§4.7 error rates + §4.2 MV sizing"
    ).set_defaults(handler=cmd_reliability)

    sub.add_parser("power", help="§5.1 power corner points").set_defaults(
        handler=cmd_power
    )

    trace = sub.add_parser(
        "trace", help="trace a scenario and export spans as JSON"
    )
    trace.add_argument(
        "scenario",
        choices=TRACE_SCENARIOS,
        help="what to run under the tracer",
    )
    trace.add_argument("--out", help="write the exported trace here")
    trace.add_argument(
        "--format",
        choices=("chrome", "flat", "prom"),
        default="chrome",
        help="export format (chrome://tracing JSON, a flat span list, "
             "or Prometheus metrics exposition)",
    )
    trace.add_argument("--seed", type=int, default=0x7ACE)
    trace.set_defaults(handler=cmd_trace)

    monitor = sub.add_parser(
        "monitor", help="run a scenario under monitoring, emit the report"
    )
    monitor.add_argument(
        "--scenario",
        choices=TRACE_SCENARIOS,
        default="cold-read",
        help="what to run under the monitor (default cold-read)",
    )
    monitor.add_argument("--seed", type=int, default=0x7ACE)
    monitor.add_argument("--period", type=float, default=5.0,
                         help="health sampling period, simulated seconds")
    monitor.add_argument("--out", help="write the JSON run report here")
    monitor.add_argument("--flight-out",
                         help="dump the flight recorder (JSONL) here")
    monitor.set_defaults(handler=cmd_monitor)

    chaos = sub.add_parser(
        "chaos", help="seeded fault campaign + invariant audit"
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--ops", type=int, default=200,
                       help="workload operations per campaign")
    chaos.add_argument("--campaigns", type=int, default=2,
                       help="identical runs to byte-compare (default 2)")
    chaos.add_argument("--intensity", type=float, default=1.0,
                       help="fault-plan hazard multiplier")
    chaos.add_argument("--out", help="write the JSON report here")
    chaos.add_argument("--monitor", action="store_true",
                       help="attach run monitoring (health sampler, SLO "
                            "watchdog, flight recorder) to each campaign")
    chaos.add_argument("--flight-out",
                       help="flight-recorder dump path on invariant failure "
                            "(default chaos-flight-<seed>.jsonl)")
    chaos.add_argument("--serve", action="store_true",
                       help="run the campaign under a serving workload and "
                            "audit the fifth invariant (no admitted "
                            "request lost)")
    chaos.add_argument("--fleet", action="store_true",
                       help="co-host a multi-site fleet store, add "
                            "rack/site-loss faults and audit invariant I8 "
                            "(fleet recoverability)")
    chaos.set_defaults(handler=cmd_chaos)

    serve = sub.add_parser(
        "serve", help="multi-tenant serving load run + QoS report"
    )
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--duration", type=float, default=60.0,
                       help="serving horizon, simulated seconds")
    serve.add_argument("--runs", type=int, default=2,
                       help="identical runs to byte-compare (default 2)")
    serve.add_argument("--prepopulate", type=int, default=18,
                       help="files written before serving starts")
    serve.add_argument("--backend", choices=("olfs", "cluster"),
                       default="olfs",
                       help="single rack or a 2-rack replicated cluster")
    serve.add_argument("--faults", action="store_true",
                       help="run under a randomized fault plan (incl. "
                            "link flaps and client disconnects)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="admission controller inflight cap")
    serve.add_argument("--xl", action="store_true",
                       help="run the sharded XL campaign (repro.serve.xl) "
                            "instead of the single-rack QoS harness")
    serve.add_argument("--shards", type=int, default=1,
                       help="event-loop shards for --xl; >1 also "
                            "byte-compares against the single-shard report")
    serve.add_argument("--racks", type=int, default=8,
                       help="rack count for --xl (default 8)")
    serve.add_argument("--out", help="write the JSON report here")
    serve.add_argument("--flight-out",
                       help="dump the run's flight recorder (JSONL) here")
    serve.set_defaults(handler=cmd_serve)

    preserve = sub.add_parser(
        "preserve", help="decades-scale preservation campaign + verdict"
    )
    preserve.add_argument("--seed", type=int, default=7)
    preserve.add_argument("--files", type=int, default=12,
                          help="archive files written before the campaign")
    preserve.add_argument("--years", type=float, default=30.0,
                          help="simulated media-years the campaign covers")
    preserve.add_argument("--intensity", type=float, default=1.0,
                          help="fault-plan hazard multiplier")
    preserve.add_argument("--runs", type=int, default=2,
                          help="identical runs to byte-compare (default 2)")
    preserve.add_argument("--compare", action="store_true",
                          help="also run with scrub/audit/migration off and "
                               "require a strictly better loss metric")
    preserve.add_argument("--no-scrub", action="store_true",
                          help="disable the background scrubber")
    preserve.add_argument("--no-audit", action="store_true",
                          help="disable the cross-rack anti-entropy audit")
    preserve.add_argument("--no-migrate", action="store_true",
                          help="disable age-triggered media migration")
    preserve.add_argument("--no-faults", action="store_true",
                          help="aging only: no chaos fault storm")
    preserve.add_argument("--out", help="write the JSON report here")
    preserve.set_defaults(handler=cmd_preserve)

    fleet = sub.add_parser(
        "fleet", help="multi-site fleet campaign + recovery + I8 audit"
    )
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument("--sites", type=int, default=3,
                       help="failure-domain sites (default 3)")
    fleet.add_argument("--racks-per-site", type=int, default=8,
                       help="optical racks per site (default 8)")
    fleet.add_argument("--clients", type=int, default=105_000,
                       help="pooled open-loop clients across the fleet")
    fleet.add_argument("--duration", type=float, default=12.0,
                       help="serving horizon, simulated seconds")
    fleet.add_argument("--objects", type=int, default=18,
                       help="erasure-coded images pre-populated")
    fleet.add_argument("--arrival-rate", type=float, default=60.0,
                       help="per-site arrival rate, ops/second")
    fleet.add_argument("--runs", type=int, default=2,
                       help="identical runs to byte-compare (default 2)")
    fleet.add_argument("--no-rack-loss", action="store_true",
                       help="skip the early rack-destruction fault")
    fleet.add_argument("--no-site-loss", action="store_true",
                       help="skip the mid-run whole-site destruction")
    fleet.add_argument("--out", help="write the JSON report here")
    fleet.add_argument("--flight-out",
                       help="dump the run's flight recorder (JSONL) here")
    fleet.set_defaults(handler=cmd_fleet)

    fmon = sub.add_parser(
        "fleet-monitor",
        help="fleet telemetry pipeline + closed-loop supervisor, I9 audit",
    )
    fmon.add_argument("--seed", type=int, default=7)
    fmon.add_argument("--sites", type=int, default=3,
                      help="failure-domain sites (default 3)")
    fmon.add_argument("--racks-per-site", type=int, default=4,
                      help="optical racks per site (default 4)")
    fmon.add_argument("--clients", type=int, default=24_000,
                      help="pooled open-loop clients across the fleet")
    fmon.add_argument("--duration", type=float, default=10.0,
                      help="serving horizon, simulated seconds")
    fmon.add_argument("--objects", type=int, default=12,
                      help="erasure-coded images pre-populated")
    fmon.add_argument("--arrival-rate", type=float, default=40.0,
                      help="per-site arrival rate, ops/second")
    fmon.add_argument("--runs", type=int, default=2,
                      help="identical runs to byte-compare (default 2)")
    fmon.add_argument("--no-rack-loss", action="store_true",
                      help="skip the early rack-destruction fault")
    fmon.add_argument("--site-loss", action="store_true",
                      help="also destroy a whole site mid-run")
    fmon.add_argument("--no-telemetry", action="store_true",
                      help="baseline: same fleet, loss-event recovery, "
                           "no agents and no supervisor")
    fmon.add_argument("--out", help="write the JSON report here")
    fmon.add_argument("--flight-out",
                      help="dump the run's flight recorder (JSONL) here")
    fmon.set_defaults(handler=cmd_fleet_monitor)

    bench = sub.add_parser(
        "bench", help="engine events/s + scenario wall-clock, perf gate"
    )
    bench.add_argument("--repeats", "--repeat", type=int, default=3,
                       help="runs per microbench; best is kept (default 3) "
                            "— best-of-N is the noise defence, see "
                            "docs/performance.md")
    bench.add_argument("--scale", type=float, default=1.0,
                       help="multiplier on microbench event counts")
    bench.add_argument("--label", default="",
                       help="tag for this trajectory entry")
    bench.add_argument("--out", default="BENCH_engine.json",
                       help="trajectory file to append to "
                            "(default BENCH_engine.json; '' to skip)")
    bench.add_argument("--no-scenarios", action="store_true",
                       help="microbenches only, skip wall-clock scenarios")
    bench.add_argument("--monitor", action="store_true",
                       help="attach run monitoring to the scenarios and "
                            "print their run-report summaries")
    bench.add_argument("--check", action="store_true",
                       help="fail if events/s drops below the baseline gate")
    bench.add_argument("--baseline", default="benchmarks/perf/baseline.json",
                       help="committed baseline for --check")
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="allowed fractional drop below baseline")
    bench.set_defaults(handler=cmd_bench)

    profile = sub.add_parser(
        "profile", help="cProfile a scenario or microbench, top-N hotspots"
    )
    profile.add_argument(
        "target",
        help="scenario (cold_read, longevity_slice, chaos_campaign, "
             "serve, fleet, fleet_monitor, serve_xl) or microbench "
             "(delay_chain, ping_pong, spawn_join, bandwidth_flows)",
    )
    profile.add_argument("--top", type=int, default=15,
                         help="number of hotspot rows (default 15)")
    profile.add_argument("--scale", type=float, default=1.0,
                         help="multiplier on microbench event counts")
    profile.set_defaults(handler=cmd_profile)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
