"""Performance harness: engine microbenches, scenario wall-clock, perf gate.

The simulator's event-loop throughput is the practical ceiling on how many
scenarios we can explore (SimFS makes the same argument for filesystem
simulation), so it is tracked as a first-class metric:

* :mod:`repro.perf.microbench` — synthetic engine workloads measured in
  events per second (delay chains, event ping-pong, spawn/join fan-out,
  shared-bandwidth flow churn);
* :mod:`repro.perf.scenarios` — three canonical end-to-end scenarios
  (cold read, longevity slice, chaos campaign) measured in wall seconds;
* :mod:`repro.perf.harness` — runs both suites, appends the results to
  the repo-root ``BENCH_engine.json`` trajectory, gates against the
  committed ``benchmarks/perf/baseline.json``, and drives the cProfile
  hotspot report behind ``python -m repro profile``.

CLI entry points: ``python -m repro bench`` and ``python -m repro profile``.
"""

from repro.perf.harness import (
    append_trajectory,
    gate_check,
    load_baseline,
    profile_target,
    run_benchmarks,
)
from repro.perf.microbench import MICROBENCHES, run_microbenches
from repro.perf.scenarios import SCENARIOS, run_scenarios

__all__ = [
    "MICROBENCHES",
    "SCENARIOS",
    "append_trajectory",
    "gate_check",
    "load_baseline",
    "profile_target",
    "run_benchmarks",
    "run_microbenches",
    "run_scenarios",
]
