"""Engine microbenchmarks: synthetic workloads measured in events/second.

Each benchmark builds a fresh :class:`~repro.sim.engine.Engine`, runs a
fixed number of simulated events through one scheduling pattern, and
reports throughput.  The four patterns cover the engine's hot paths:

``delay_chain``
    One process yielding ``Delay`` in a tight loop — pure heap traffic.
``ping_pong``
    Two processes handing values across ``SimEvent``s — run-queue traffic
    (``succeed`` resumes) interleaved with ``Delay(0)``.
``spawn_join``
    Fan-out of short-lived children gathered with ``AllOf`` — process
    creation, completion and join resumes.
``bandwidth_flows``
    Concurrent transfers through one :class:`SharedBandwidth` — flow
    arrival/completion churn plus timer cancellation.

Functions return *events per second* (best of ``repeats`` runs, so a
background hiccup on the host slows a run, never speeds one up).
"""

from __future__ import annotations

import time
from typing import Callable, Dict

from repro.sim.bandwidth import SharedBandwidth
from repro.sim.engine import AllOf, Delay, Engine, Spawn, Wait


def bench_delay_chain(n: int = 200_000) -> float:
    engine = Engine()

    def proc():
        for _ in range(n):
            yield Delay(0.001)

    start = time.perf_counter()
    engine.run_process(proc())
    return n / (time.perf_counter() - start)


def bench_ping_pong(n: int = 100_000) -> float:
    engine = Engine()

    def pinger(events):
        for index in range(n):
            event = engine.event()
            events.append(event)
            yield Delay(0)
            event.succeed(index)

    def ponger(events):
        total = 0
        for _ in range(n):
            while not events:
                yield Delay(0)
            total += yield Wait(events.pop())
        return total

    events: list = []

    def main():
        a = yield Spawn(pinger(events))
        b = yield Spawn(ponger(events))
        yield AllOf([a, b])

    start = time.perf_counter()
    engine.run_process(main())
    return 2 * n / (time.perf_counter() - start)


def bench_spawn_join(n: int = 50_000) -> float:
    engine = Engine()

    def child():
        yield Delay(0)
        return 1

    def main():
        procs = []
        for _ in range(n):
            procs.append((yield Spawn(child())))
        yield AllOf(procs)

    start = time.perf_counter()
    engine.run_process(main())
    return 2 * n / (time.perf_counter() - start)


def bench_bandwidth_flows(n: int = 2_000, concurrency: int = 8) -> float:
    engine = Engine()
    bandwidth = SharedBandwidth(engine, 1e8, name="bench")

    def flow():
        for _ in range(n // concurrency):
            yield from bandwidth.transfer(1e6)

    def main():
        procs = []
        for _ in range(concurrency):
            procs.append((yield Spawn(flow())))
        yield AllOf(procs)

    start = time.perf_counter()
    engine.run_process(main())
    return n / (time.perf_counter() - start)


#: name -> (benchmark fn taking ``n``, default event count)
MICROBENCHES: Dict[str, tuple[Callable[[int], float], int]] = {
    "delay_chain": (bench_delay_chain, 200_000),
    "ping_pong": (bench_ping_pong, 100_000),
    "spawn_join": (bench_spawn_join, 50_000),
    "bandwidth_flows": (bench_bandwidth_flows, 2_000),
}


def run_microbenches(
    scale: float = 1.0, repeats: int = 3
) -> Dict[str, float]:
    """Run every microbench; events/s per bench, best of ``repeats``.

    ``scale`` multiplies each benchmark's event count (use a small value
    in tests so the suite stays fast).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    results: Dict[str, float] = {}
    for name, (fn, default_n) in MICROBENCHES.items():
        n = max(64, int(default_n * scale))
        results[name] = max(fn(n) for _ in range(repeats))
    return results
