"""Canonical end-to-end scenarios measured in wall-clock seconds.

Three workloads chosen to exercise different layers of the stack:

``cold_read``
    Write a batch of files, burn them, evict the cache and read one back
    through the full robotic fetch path (the Table-1 latency scenario).
``longevity_slice``
    A slice of ``benchmarks/bench_longevity.py``: burn a small vault,
    age every disc with the seeded sector-error model for a few periods
    and re-read everything (drives the parity-repair read path).
``chaos_campaign``
    One seeded fault-injection campaign (``repro chaos``) — the heaviest
    consumer of the engine, tracing and fault subsystems together.
``serve``
    One multi-tenant serving run (``repro serve``): three client fleets
    through the 10GbE link and the admission controller — the scenario
    that stresses the bandwidth sharing and event-wakeup machinery.
``fleet``
    One (scaled-down) multi-site fleet campaign (``repro fleet``):
    erasure-coded placement over 12 racks, aggregate-pooled clients,
    a site destroyed mid-run and rebuilt by the recovery manager —
    stresses the pooling refactor and the shard fan-out paths.
``fleet_monitor``
    The monitored fleet campaign (``repro fleet-monitor``): the
    ``fleet`` shape plus per-rack telemetry agents replicating into the
    central TSDB and the closed-loop supervisor — tracks the telemetry
    pipeline's overhead on top of the bare fleet.
``serve_xl``
    The sharded-event-loop XL serving campaign (``repro.serve.xl``):
    eight racks, ~32k requests (13x the ``serve`` scenario), vectorized
    arrivals, cross-rack reads over the conservative-window mailbox —
    the scenario the ``--shards`` matrix and the events/s figures in
    ``BENCH_engine.json`` track.

Each scenario is a zero-argument callable returning a small stats dict;
the harness owns the timing, so the same callables feed both
``repro bench`` (wall-clock) and ``repro profile`` (cProfile).
"""

from __future__ import annotations

from typing import Callable, Dict


def _small_ros(**kwargs):
    # Mirrors the test-suite rack: tiny buckets so burns finish in
    # simulated minutes while still crossing every layer.
    from repro import OLFSConfig, ROS, units

    config = OLFSConfig(
        data_discs_per_array=3, parity_discs_per_array=1
    ).scaled_for_tests(bucket_capacity=64 * 1024)
    return ROS(
        config=config,
        roller_count=1,
        buffer_volume_capacity=200 * units.MB,
        **kwargs,
    )


def scenario_cold_read(monitor: bool = False) -> dict:
    ros = _small_ros(tracing=monitor, monitoring=monitor)
    for index in range(9):
        ros.write(f"/perf/file-{index}.bin", bytes([index + 1]) * 9000)
    ros.flush()
    path = "/perf/file-0.bin"
    ros.cache.evict(ros.stat(path)["locations"][0])
    result = ros.read(path)
    ros.drain_background()
    stats = {
        "source": result.source,
        "sim_seconds": round(ros.now, 3),
        "read_seconds": round(result.total_seconds, 3),
    }
    if monitor:
        from repro.obs import build_report

        stats["run_report"] = build_report(
            ros, monitor=ros.monitor, recorder=ros.recorder
        )
    return stats


def scenario_longevity_slice(periods: int = 3, aging_rate: float = 1e-3) -> dict:
    from repro.media.errors_model import SectorErrorModel
    from repro.sim.rng import DeterministicRNG

    ros = _small_ros()
    payloads = {}
    for index in range(12):
        path = f"/vault/f{index:02d}.bin"
        payloads[path] = bytes([index + 1]) * 20000
        ros.write(path, payloads[path])
    ros.flush()

    model = SectorErrorModel(
        DeterministicRNG(7).child("aging"), sector_error_rate=aging_rate
    )
    errors = 0
    for _ in range(periods):
        for roller in ros.mech.rollers:
            for tray in roller.trays.values():
                for disc in tray.discs():
                    if disc.tracks:
                        errors += model.age_disc(disc)

    readable = 0
    for path, payload in payloads.items():
        image = ros.stat(path)["locations"][0]
        ros.cache.evict(image)
        try:
            if ros.read(path).data == payload:
                readable += 1
        except Exception:  # noqa: BLE001 - unreadable file is the datum
            continue
    return {
        "files": len(payloads),
        "readable": readable,
        "sector_errors": errors,
        "sim_seconds": round(ros.now, 3),
    }


def scenario_chaos_campaign(
    seed: int = 42, ops: int = 120, monitor: bool = False
) -> dict:
    from repro.faults.campaign import run_campaign

    report = run_campaign(seed, ops, monitor=monitor)
    stats = {
        "seed": seed,
        "ops": ops,
        "fault_events": len(report["fault_events"]),
        "invariants_ok": all(inv["ok"] for inv in report["invariants"]),
        "sim_seconds": round(report["final_time"], 3),
    }
    if monitor:
        stats["run_report"] = {
            "monitor": report["monitor"],
            "flight_recorder": report["flight_recorder"],
        }
    return stats


def scenario_serve(seed: int = 42, duration_s: float = 30.0) -> dict:
    from repro.serve import run_serve

    report = run_serve(
        seed, duration_s=duration_s, prepopulate=9, include_events=True
    )
    ops = report["totals"]["ops"]
    events = report["events_issued"]
    return {
        "seed": seed,
        "ops": ops,
        "ok": report["totals"]["ok"],
        "rejected": report["totals"]["rejected"],
        "admission_ok": report["admission_audit"]["ok"],
        "sim_seconds": round(report["duration_s"], 3),
        "events": events,
        "events_per_op": round(events / ops, 1) if ops else 0.0,
    }


def scenario_serve_xl(
    seed: int = 42, shards: int = 1, duration_s: float = 100.0
) -> dict:
    """The XL serving campaign: ~13x the ``serve`` scenario's volume.

    ``shards`` picks the event-loop layout; the campaign report is
    byte-identical for every value, so the stats here differ only in
    ``wall_seconds`` (and the harness-computed events/s).
    """
    from repro.serve.xl import run_serve_xl

    report = run_serve_xl(seed, shards=shards, duration_s=duration_s)
    ops = report["totals"]["ops"]
    events = report["events_issued"]
    return {
        "seed": seed,
        "shards": shards,
        "ops": ops,
        "ok": report["totals"]["ok"],
        "failed": report["totals"]["failed"],
        "remote": report["totals"]["remote"],
        "sim_seconds": round(report["final_time"], 3),
        "events": events,
        "events_per_op": round(events / ops, 1) if ops else 0.0,
    }


def scenario_fleet_monitor(seed: int = 42, duration_s: float = 10.0) -> dict:
    """The monitored fleet campaign: telemetry agents + supervisor.

    Same fleet shape as ``fleet`` (12 racks, aggregate pooling) plus 15
    telemetry agents replicating over the site links and the closed-loop
    supervisor — the overhead the <10% events guard in
    ``tests/test_fleet_monitor.py`` tracks against the agent-free run.
    """
    from repro.fleet.monitor import run_fleet_monitor

    report = run_fleet_monitor(seed, duration_s=duration_s)
    return {
        "seed": seed,
        "ops": sum(t["ops"] for t in report["tenants"].values()),
        "remediations": report["remediations"],
        "points_ingested": report["telemetry"]["central"]["points_ingested"],
        "shards_rebuilt": report["recovery"]["shards_rebuilt"],
        "bytes_lost": report["bytes_lost"],
        "invariants_ok": all(i["ok"] for i in report["invariants"]),
        "sim_seconds": round(report["final_time"], 3),
        "events": report["events_issued"],
    }


def scenario_fleet(seed: int = 42, duration_s: float = 10.0) -> dict:
    from repro.fleet import run_fleet

    report = run_fleet(
        seed,
        sites=3,
        racks_per_site=4,
        clients=30_000,
        duration_s=duration_s,
        objects=12,
        arrival_rate=40.0,
    )
    return {
        "seed": seed,
        "ops": sum(t["ops"] for t in report["tenants"].values()),
        "shards_rebuilt": report["recovery"]["shards_rebuilt"],
        "bytes_lost": report["bytes_lost"],
        "invariants_ok": all(i["ok"] for i in report["invariants"]),
        "sim_seconds": round(report["final_time"], 3),
    }


SCENARIOS: Dict[str, Callable[[], dict]] = {
    "cold_read": scenario_cold_read,
    "longevity_slice": scenario_longevity_slice,
    "chaos_campaign": scenario_chaos_campaign,
    "serve": scenario_serve,
    "fleet": scenario_fleet,
    "fleet_monitor": scenario_fleet_monitor,
    "serve_xl": scenario_serve_xl,
}

#: Scenarios that accept ``monitor=True`` to attach a repro.obs run report.
MONITORABLE = frozenset({"cold_read", "chaos_campaign"})


def run_scenarios(
    names: list[str] | None = None, monitor: bool = False
) -> Dict[str, dict]:
    """Run scenarios by name (all by default); stats dict per scenario."""
    import time

    selected = names or list(SCENARIOS)
    results: Dict[str, dict] = {}
    for name in selected:
        fn = SCENARIOS[name]
        start = time.perf_counter()
        stats = fn(monitor=True) if monitor and name in MONITORABLE else fn()
        wall = time.perf_counter() - start
        entry = {"wall_seconds": round(wall, 4), **stats}
        # Scenarios that report their engine event count get a derived
        # wall-clock events/s — the number the sharding work moves.
        if wall > 0 and "events" in stats:
            entry["events_per_sec"] = round(stats["events"] / wall)
        results[name] = entry
    return results
