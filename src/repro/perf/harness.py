"""Perf-gate plumbing: trajectory file, baseline gate, profile runner.

``BENCH_engine.json`` (repo root) is the cross-PR perf trajectory: every
``repro bench`` run appends one entry, so the file reads as a history of
event-loop throughput over the life of the repository.

``benchmarks/perf/baseline.json`` is the committed gate: CI runs
``repro bench --check`` and fails when any microbench drops more than
``tolerance`` (default 30%) below the baseline's events/s.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from pathlib import Path
from typing import Dict, Optional

from repro.perf.microbench import MICROBENCHES, run_microbenches
from repro.perf.scenarios import SCENARIOS, run_scenarios

#: default locations, relative to the repository root / current directory
TRAJECTORY_PATH = "BENCH_engine.json"
BASELINE_PATH = "benchmarks/perf/baseline.json"
DEFAULT_TOLERANCE = 0.30


def run_benchmarks(
    scale: float = 1.0,
    repeats: int = 3,
    scenarios: bool = True,
    monitor: bool = False,
) -> dict:
    """Run the microbench suite (and optionally scenarios); one entry dict.

    ``monitor=True`` attaches :mod:`repro.obs` run monitoring to the
    scenarios that support it — each such scenario's stats then carry a
    ``run_report`` key (the same report ``repro monitor`` emits).
    """
    entry: dict = {
        "recorded": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "events_per_sec": {
            name: round(value)
            for name, value in run_microbenches(scale, repeats).items()
        },
    }
    if scenarios:
        entry["scenarios"] = run_scenarios(monitor=monitor)
    return entry


def append_trajectory(entry: dict, path: str = TRAJECTORY_PATH) -> dict:
    """Append ``entry`` to the trajectory file, creating it if missing."""
    target = Path(path)
    if target.exists():
        data = json.loads(target.read_text())
    else:
        data = {
            "unit": "events_per_sec: engine microbench throughput; "
                    "scenarios: wall_seconds per canonical scenario",
            "trajectory": [],
        }
    data["trajectory"].append(entry)
    target.write_text(json.dumps(data, indent=2) + "\n")
    return data


def load_baseline(path: str = BASELINE_PATH) -> Dict[str, float]:
    """events/s per microbench from the committed baseline file."""
    data = json.loads(Path(path).read_text())
    return {str(k): float(v) for k, v in data["events_per_sec"].items()}


def gate_check(
    results: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Failure messages for benches below ``(1 - tolerance) * baseline``.

    Benches present in only one of the two dicts are skipped — adding a
    new microbench must not fail the gate until a baseline is recorded.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    failures = []
    for name, floor_source in baseline.items():
        measured = results.get(name)
        if measured is None:
            continue
        floor = floor_source * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{name}: {measured:.0f}/s is below the perf gate "
                f"({floor:.0f}/s = baseline {floor_source:.0f}/s "
                f"- {tolerance:.0%})"
            )
    return failures


def profile_target(
    name: str, top: int = 15, scale: float = 1.0
) -> tuple[str, Optional[dict]]:
    """cProfile a scenario or microbench; (report text, scenario stats).

    ``name`` may be any key of :data:`SCENARIOS` or :data:`MICROBENCHES`.
    """
    stats_out: Optional[dict] = None
    if name in SCENARIOS:
        fn = SCENARIOS[name]
        profiler = cProfile.Profile()
        profiler.enable()
        stats_out = fn()
        profiler.disable()
    elif name in MICROBENCHES:
        bench, default_n = MICROBENCHES[name]
        n = max(64, int(default_n * scale))
        profiler = cProfile.Profile()
        profiler.enable()
        bench(n)
        profiler.disable()
    else:
        known = ", ".join(sorted([*SCENARIOS, *MICROBENCHES]))
        raise KeyError(f"unknown profile target {name!r} (known: {known})")
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats("tottime").print_stats(top)
    return buffer.getvalue(), stats_out
