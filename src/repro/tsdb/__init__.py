"""repro.tsdb — deterministic in-simulation time-series storage.

A small, engine-agnostic TSDB: labeled append-only series in
fixed-capacity shards with rollup downsampling (raw → 1-min → 1-hour
mean/max) and retention windows, all keyed on the simulated clock so
stored state is a pure function of the appended points.  The fleet
telemetry pipeline (:mod:`repro.fleet.telemetry`) replicates per-rack
samples into one central :class:`TimeSeriesStore`; the closed-loop
supervisor (:mod:`repro.fleet.supervisor`) evaluates trigger rules over
it.  See ``docs/fleet-telemetry.md``.
"""

from repro.tsdb.store import (
    DEFAULT_MAX_SHARDS,
    DEFAULT_ROLLUPS,
    DEFAULT_SHARD_POINTS,
    Series,
    TimeSeriesStore,
    canonical_labels,
)

__all__ = [
    "DEFAULT_MAX_SHARDS",
    "DEFAULT_ROLLUPS",
    "DEFAULT_SHARD_POINTS",
    "Series",
    "TimeSeriesStore",
    "canonical_labels",
]
