"""Deterministic in-simulation time-series store.

The fleet telemetry pipeline needs a place to put ``(sim_time, labels,
value)`` points that behaves like a real TSDB — bounded memory,
retention windows, downsampling — while staying a pure function of the
appended points so campaign reports are byte-reproducible per seed.
Everything here runs on the *simulated* clock supplied by callers; the
store itself never reads wall clocks, never draws random numbers and
never touches the engine.

Storage model (mirrors the ReductStore shape from the related demo):

* A **series** is one metric name plus a label set (``rack=s0.r03``).
  Appends must be time-ordered *per series* — each telemetry agent owns
  its series and samples on a monotonic clock, so out-of-order points
  are a bug, not a case to paper over.
* Raw points land in fixed-capacity **shards** (append-only arrays).
  The store caps the total live shard count; allocating past the cap
  evicts the oldest live shard in **creation order** — deterministic,
  and creation order equals time order within any one series.
* Every append also feeds per-series **rollup levels** (1-minute and
  1-hour by default).  A rollup bucket accumulates count/sum/min/max
  and is finalized when a point lands past its right edge; a point
  exactly on a boundary opens the *next* bucket (buckets are
  ``[start, start + resolution)``).  Finalized buckets keep
  ``mean``/``max``/``min``/``count`` and are themselves bounded per
  level, oldest first.
* Optional retention windows drop raw shards and finalized buckets
  whose data has aged past the window, measured against the appending
  series' own newest timestamp (again: deterministic, no wall clock).

``flush()`` finalizes every open bucket — call it once, when a campaign
ends, so reports see the trailing partial windows.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Optional

#: default raw points per shard
DEFAULT_SHARD_POINTS = 256
#: default store-wide live shard cap
DEFAULT_MAX_SHARDS = 4096
#: default rollup levels: (resolution seconds, max finalized buckets)
DEFAULT_ROLLUPS = ((60.0, 1024), (3600.0, 1024))

LabelItems = tuple[tuple[str, str], ...]


def canonical_labels(labels: Optional[dict]) -> LabelItems:
    """Sorted, stringified label items — the dict's canonical form."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Shard:
    """One fixed-capacity run of raw points."""

    __slots__ = ("seq", "capacity", "times", "values")

    def __init__(self, seq: int, capacity: int):
        self.seq = seq
        self.capacity = capacity
        self.times: list[float] = []
        self.values: list[float] = []

    @property
    def full(self) -> bool:
        return len(self.times) >= self.capacity

    def append(self, t: float, value: float) -> None:
        self.times.append(t)
        self.values.append(value)


class _RollupLevel:
    """One downsampling resolution of one series."""

    __slots__ = ("resolution", "capacity", "buckets", "open")

    def __init__(self, resolution: float, capacity: int):
        self.resolution = float(resolution)
        self.capacity = int(capacity)
        #: finalized buckets, oldest first
        self.buckets: deque[dict] = deque()
        #: accumulator: [start, count, sum, min, max] or None
        self.open: Optional[list] = None

    def bucket_start(self, t: float) -> float:
        return math.floor(t / self.resolution) * self.resolution

    def add(self, t: float, value: float) -> int:
        """Feed one point; returns finalized-bucket count (0 or 1)."""
        start = self.bucket_start(t)
        closed = 0
        if self.open is not None and start > self.open[0]:
            closed = self.finalize()
        if self.open is None:
            self.open = [start, 0, 0.0, value, value]
        acc = self.open
        acc[1] += 1
        acc[2] += value
        acc[3] = min(acc[3], value)
        acc[4] = max(acc[4], value)
        return closed

    def finalize(self) -> int:
        """Close the open bucket, if any; returns 1 if one closed."""
        if self.open is None:
            return 0
        start, count, total, low, high = self.open
        self.buckets.append(
            {
                "start": start,
                "count": count,
                "mean": total / count,
                "min": low,
                "max": high,
            }
        )
        self.open = None
        while len(self.buckets) > self.capacity:
            self.buckets.popleft()
        return 1

    def enforce_retention(self, newest_t: float, window_s: float) -> int:
        dropped = 0
        floor_t = newest_t - window_s
        while self.buckets and (
            self.buckets[0]["start"] + self.resolution <= floor_t
        ):
            self.buckets.popleft()
            dropped += 1
        return dropped


class Series:
    """One (name, labels) stream: raw shards plus rollup levels."""

    __slots__ = ("name", "labels", "shards", "rollups", "last_t", "points")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        rollups: Iterable[tuple[float, int]],
    ):
        self.name = name
        self.labels = labels
        self.shards: list[_Shard] = []
        self.rollups = [
            _RollupLevel(resolution, capacity)
            for resolution, capacity in rollups
        ]
        self.last_t: Optional[float] = None
        self.points = 0

    def labels_dict(self) -> dict:
        return dict(self.labels)

    # -- queries -------------------------------------------------------
    def raw_points(
        self, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> list[tuple[float, float]]:
        out = []
        for shard in self.shards:
            for t, value in zip(shard.times, shard.values):
                if t0 is not None and t < t0:
                    continue
                if t1 is not None and t > t1:
                    continue
                out.append((t, value))
        return out

    def latest(self) -> Optional[tuple[float, float]]:
        for shard in reversed(self.shards):
            if shard.times:
                return (shard.times[-1], shard.values[-1])
        return None


class TimeSeriesStore:
    """Append-only labeled time series with rollups and retention."""

    def __init__(
        self,
        shard_points: int = DEFAULT_SHARD_POINTS,
        max_shards: int = DEFAULT_MAX_SHARDS,
        rollups: Iterable[tuple[float, int]] = DEFAULT_ROLLUPS,
        raw_retention_s: Optional[float] = None,
        rollup_retention_s: Optional[float] = None,
    ):
        if shard_points <= 0:
            raise ValueError("shard_points must be positive")
        if max_shards <= 0:
            raise ValueError("max_shards must be positive")
        self.shard_points = int(shard_points)
        self.max_shards = int(max_shards)
        self.rollup_spec = tuple(
            (float(resolution), int(capacity))
            for resolution, capacity in rollups
        )
        for resolution, _capacity in self.rollup_spec:
            if resolution <= 0:
                raise ValueError("rollup resolution must be positive")
        self.raw_retention_s = raw_retention_s
        self.rollup_retention_s = rollup_retention_s
        self._series: dict[tuple[str, LabelItems], Series] = {}
        #: live shards in creation order: (shard seq, series key)
        self._shard_order: deque[tuple[int, tuple[str, LabelItems]]] = deque()
        self._shard_seq = 0
        self.stats = {
            "points": 0,
            "series": 0,
            "shards_created": 0,
            "shards_evicted": 0,
            "points_evicted": 0,
            "buckets_finalized": 0,
            "buckets_dropped": 0,
        }

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(
        self,
        name: str,
        labels: Optional[dict],
        t: float,
        value: float,
    ) -> None:
        """Append one point; per-series time must be non-decreasing."""
        key = (name, canonical_labels(labels))
        series = self._series.get(key)
        if series is None:
            series = Series(name, key[1], self.rollup_spec)
            self._series[key] = series
            self.stats["series"] += 1
        t = float(t)
        value = float(value)
        if series.last_t is not None and t < series.last_t:
            raise ValueError(
                f"{name}{dict(key[1])}: time went backwards "
                f"({t} < {series.last_t})"
            )
        series.last_t = t
        if not series.shards or series.shards[-1].full:
            self._allocate_shard(key, series)
        series.shards[-1].append(t, value)
        series.points += 1
        self.stats["points"] += 1
        for level in series.rollups:
            closed = level.add(t, value)
            self.stats["buckets_finalized"] += closed
            if self.rollup_retention_s is not None:
                self.stats["buckets_dropped"] += level.enforce_retention(
                    t, self.rollup_retention_s
                )
        if self.raw_retention_s is not None:
            self._enforce_raw_retention(series, t)

    def _allocate_shard(
        self, key: tuple[str, LabelItems], series: Series
    ) -> None:
        shard = _Shard(self._shard_seq, self.shard_points)
        self._shard_seq += 1
        series.shards.append(shard)
        self._shard_order.append((shard.seq, key))
        self.stats["shards_created"] += 1
        while len(self._shard_order) > self.max_shards:
            self._evict_oldest_shard()

    def _evict_oldest_shard(self) -> None:
        _seq, victim_key = self._shard_order.popleft()
        victim = self._series[victim_key]
        evicted = victim.shards.pop(0)
        self.stats["shards_evicted"] += 1
        self.stats["points_evicted"] += len(evicted.times)

    def _enforce_raw_retention(self, series: Series, newest_t: float) -> None:
        floor_t = newest_t - self.raw_retention_s
        while (
            len(series.shards) > 1
            and series.shards[0].times
            and series.shards[0].times[-1] < floor_t
        ):
            victim = series.shards.pop(0)
            self._shard_order.remove(
                (victim.seq, (series.name, series.labels))
            )
            self.stats["shards_evicted"] += 1
            self.stats["points_evicted"] += len(victim.times)

    def flush(self) -> int:
        """Finalize every open rollup bucket (end of campaign)."""
        closed = 0
        for series in self._series.values():
            for level in series.rollups:
                closed += level.finalize()
        self.stats["buckets_finalized"] += closed
        return closed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def series(
        self, name: str, labels: Optional[dict] = None
    ) -> Optional[Series]:
        return self._series.get((name, canonical_labels(labels)))

    def select(self, name: str) -> list[Series]:
        """Every series of ``name``, in canonical label order."""
        found = [
            series
            for (series_name, _labels), series in self._series.items()
            if series_name == name
        ]
        found.sort(key=lambda series: series.labels)
        return found

    def names(self) -> list[str]:
        return sorted({name for name, _labels in self._series})

    def points(
        self,
        name: str,
        labels: Optional[dict] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> list[tuple[float, float]]:
        series = self.series(name, labels)
        return series.raw_points(t0, t1) if series is not None else []

    def latest(
        self, name: str, labels: Optional[dict] = None
    ) -> Optional[tuple[float, float]]:
        series = self.series(name, labels)
        return series.latest() if series is not None else None

    def buckets(
        self,
        name: str,
        labels: Optional[dict] = None,
        resolution: Optional[float] = None,
    ) -> list[dict]:
        """Finalized buckets of one series at ``resolution`` (default:
        the finest configured level)."""
        series = self.series(name, labels)
        if series is None or not series.rollups:
            return []
        if resolution is None:
            level = series.rollups[0]
        else:
            level = next(
                (
                    candidate
                    for candidate in series.rollups
                    if candidate.resolution == float(resolution)
                ),
                None,
            )
            if level is None:
                raise KeyError(f"no rollup level at {resolution}s")
        return [dict(bucket) for bucket in level.buckets]

    def rate(
        self,
        name: str,
        labels: Optional[dict] = None,
        window_s: float = 60.0,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Per-second increase of a monotonic counter over the window.

        Uses the first and last raw points inside ``[now - window_s,
        now]``; returns ``None`` with fewer than two points (no rate is
        *not* a zero rate — the caller decides what silence means).
        """
        series = self.series(name, labels)
        if series is None:
            return None
        newest = series.latest()
        if newest is None:
            return None
        end = newest[0] if now is None else float(now)
        window = series.raw_points(end - float(window_s), end)
        if len(window) < 2:
            return None
        (t0, v0), (t1, v1) = window[0], window[-1]
        if t1 <= t0:
            return None
        return (v1 - v0) / (t1 - t0)

    def staleness(
        self,
        name: str,
        labels: Optional[dict] = None,
        now: float = 0.0,
    ) -> Optional[float]:
        """Seconds since the series' newest point (None: never wrote)."""
        newest = self.latest(name, labels)
        if newest is None:
            return None
        return float(now) - newest[0]

    # ------------------------------------------------------------------
    def snapshot_stats(self) -> dict:
        """JSON-safe store statistics (deterministic, sorted keys)."""
        live_points = sum(
            series.points for series in self._series.values()
        ) - self.stats["points_evicted"]
        return {
            **{key: int(value) for key, value in sorted(self.stats.items())},
            "live_shards": len(self._shard_order),
            "live_points": int(live_points),
        }
