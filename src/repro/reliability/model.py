"""System-level error-rate model (§4.7).

A disc array stripes data across its discs with one (RAID-5 schema: 11+1)
or two (RAID-6: 10+2) parity discs.  Data is lost when more sector errors
coincide in one stripe than the parity can repair.  With a per-sector error
rate ``p`` (archive Blu-ray: ~1e-16) and ``n`` discs:

    P(stripe unrecoverable) ~= C(n, t+1) * p^(t+1)     (t = parity count)
    P(array loses data)     ~= stripes_per_disc * P(stripe unrecoverable)

which lands on the paper's ~1e-23 for 11+1 and ~1e-40-ish for 10+2.
"""

from __future__ import annotations

import math

from repro import units
from repro.media.disc import SECTOR_SIZE

#: Paper's archive Blu-ray sector error rate (§4.7).
DISC_SECTOR_ERROR_RATE = 1e-16


def stripes_per_disc(disc_capacity: int = 100 * units.GB) -> int:
    """One stripe crosses all discs at the same sector index."""
    return disc_capacity // SECTOR_SIZE


def stripe_error_rate(
    sector_error_rate: float, discs: int, parity: int
) -> float:
    """Probability one stripe has more errors than parity can repair."""
    if parity >= discs:
        raise ValueError("parity count must be below the disc count")
    failures = parity + 1
    return math.comb(discs, failures) * sector_error_rate**failures


def array_error_rate(
    sector_error_rate: float = DISC_SECTOR_ERROR_RATE,
    discs: int = 12,
    parity: int = 1,
    disc_capacity: int = 100 * units.GB,
) -> float:
    """Probability a whole disc array suffers unrecoverable loss."""
    return stripes_per_disc(disc_capacity) * stripe_error_rate(
        sector_error_rate, discs, parity
    )


def raid5_array_error_rate(
    sector_error_rate: float = DISC_SECTOR_ERROR_RATE,
    disc_capacity: int = 100 * units.GB,
) -> float:
    """The paper's 11 data + 1 parity schema: ~1e-23."""
    return array_error_rate(sector_error_rate, 12, 1, disc_capacity)


def raid6_array_error_rate(
    sector_error_rate: float = DISC_SECTOR_ERROR_RATE,
    disc_capacity: int = 100 * units.GB,
) -> float:
    """The paper's 10 data + 2 parity schema: ~1e-40."""
    return array_error_rate(sector_error_rate, 12, 2, disc_capacity)


def write_and_check_throughput_factor() -> float:
    """§4.7: the forced write-and-check alternative 'almost halves the
    actual write throughput' — the factor OLFS avoids paying."""
    return 0.5
