"""Reliability and cost models: array error rates, MV sizing, TCO."""

from repro.reliability.model import (
    array_error_rate,
    raid5_array_error_rate,
    raid6_array_error_rate,
)
from repro.reliability.sizing import mv_capacity_bytes
from repro.reliability.tco import TCOModel, TCOInputs, MEDIA_PROFILES

__all__ = [
    "MEDIA_PROFILES",
    "TCOInputs",
    "TCOModel",
    "array_error_rate",
    "mv_capacity_bytes",
    "raid5_array_error_rate",
    "raid6_array_error_rate",
]
