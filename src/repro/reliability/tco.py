"""Total-cost-of-ownership model (§2.1).

Reimplements the analytical comparison the paper cites (Gupta et al.,
MSST'16): preserving 1 PB for 100 years on Blu-ray discs, HDDs, tape or
SSDs.  Media with short lifetimes force repeated repurchase and migration;
HDDs and tape additionally demand conditioned machine-room environments
(tape also periodic rewinding); optical media tolerate ambient storage.

The paper's headline: **optical ~250 K$/PB ~ 1/3 of HDD, 1/2 of tape.**
Profile parameters are calibrated to land on those ratios while staying
individually defensible (2016-era street prices and power figures).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units

HOURS_PER_YEAR = 8766.0


@dataclass(frozen=True)
class MediaProfile:
    """Cost-relevant characteristics of one storage technology."""

    name: str
    lifetime_years: float
    media_cost_per_pb: float  # $ per PB of raw media, one purchase
    hardware_cost_per_pb: float  # drives/enclosures/robotics per refresh
    hardware_refresh_years: float
    power_kw_per_pb: float  # steady-state incl. climate control
    migration_cost_per_pb: float  # labor + equipment per migration event
    annual_ops_cost: float  # handling, rewinding, scrubbing labor


#: Calibrated 2016-era profiles (see module docstring).
MEDIA_PROFILES: dict[str, MediaProfile] = {
    "optical": MediaProfile(
        name="optical",
        lifetime_years=50.0,
        media_cost_per_pb=30_000.0,  # ~3 c/GB archival BD
        hardware_cost_per_pb=10_000.0,  # drives + robotics share
        hardware_refresh_years=10.0,
        power_kw_per_pb=0.2,  # no climate control needed
        migration_cost_per_pb=15_000.0,
        annual_ops_cost=500.0,
    ),
    "hdd": MediaProfile(
        name="hdd",
        lifetime_years=5.0,
        media_cost_per_pb=18_000.0,  # ~$18/TB enterprise disk
        hardware_cost_per_pb=6_500.0,
        hardware_refresh_years=5.0,
        power_kw_per_pb=1.0,  # spinning + cooling
        migration_cost_per_pb=5_000.0,  # online copy, cheap per event
        annual_ops_cost=1_000.0,
    ),
    "tape": MediaProfile(
        name="tape",
        lifetime_years=10.0,
        media_cost_per_pb=10_000.0,  # ~1 c/GB LTO
        hardware_cost_per_pb=10_000.0,  # library + drives
        hardware_refresh_years=10.0,
        power_kw_per_pb=1.2,  # strict temperature/humidity control
        migration_cost_per_pb=10_000.0,
        annual_ops_cost=1_200.0,  # biennial rewinding, handling
    ),
    "ssd": MediaProfile(
        name="ssd",
        lifetime_years=5.0,
        media_cost_per_pb=250_000.0,  # ~$250/TB flash (2016)
        hardware_cost_per_pb=5_000.0,
        hardware_refresh_years=5.0,
        power_kw_per_pb=0.5,
        migration_cost_per_pb=5_000.0,
        annual_ops_cost=1_000.0,
    ),
}


@dataclass(frozen=True)
class TCOInputs:
    """Scenario parameters (defaults = the paper's scenario)."""

    capacity_pb: float = 1.0
    horizon_years: float = 100.0
    electricity_cost_per_kwh: float = 0.10


class TCOModel:
    """Computes per-component and total cost for one media profile."""

    def __init__(self, profile: MediaProfile, inputs: TCOInputs = TCOInputs()):
        self.profile = profile
        self.inputs = inputs

    # -- components -----------------------------------------------------
    def media_purchases(self) -> int:
        import math

        return math.ceil(
            self.inputs.horizon_years / self.profile.lifetime_years
        )

    def migrations(self) -> int:
        return self.media_purchases() - 1

    def media_cost(self) -> float:
        return (
            self.media_purchases()
            * self.profile.media_cost_per_pb
            * self.inputs.capacity_pb
        )

    def hardware_cost(self) -> float:
        import math

        refreshes = math.ceil(
            self.inputs.horizon_years / self.profile.hardware_refresh_years
        )
        return (
            refreshes
            * self.profile.hardware_cost_per_pb
            * self.inputs.capacity_pb
        )

    def migration_cost(self) -> float:
        return (
            self.migrations()
            * self.profile.migration_cost_per_pb
            * self.inputs.capacity_pb
        )

    def energy_cost(self) -> float:
        kwh = (
            self.profile.power_kw_per_pb
            * self.inputs.capacity_pb
            * HOURS_PER_YEAR
            * self.inputs.horizon_years
        )
        return kwh * self.inputs.electricity_cost_per_kwh

    def operations_cost(self) -> float:
        return (
            self.profile.annual_ops_cost
            * self.inputs.capacity_pb
            * self.inputs.horizon_years
        )

    # -- totals ----------------------------------------------------------
    def breakdown(self) -> dict[str, float]:
        return {
            "media": self.media_cost(),
            "hardware": self.hardware_cost(),
            "migration": self.migration_cost(),
            "energy": self.energy_cost(),
            "operations": self.operations_cost(),
        }

    def total(self) -> float:
        return sum(self.breakdown().values())

    def total_per_pb(self) -> float:
        return self.total() / self.inputs.capacity_pb


def compare_all(inputs: TCOInputs = TCOInputs()) -> dict[str, dict]:
    """TCO of every profile, plus ratios against optical (the §2.1 table)."""
    totals = {
        name: TCOModel(profile, inputs)
        for name, profile in MEDIA_PROFILES.items()
    }
    optical = totals["optical"].total()
    return {
        name: {
            "total": model.total(),
            "per_pb": model.total_per_pb(),
            "vs_optical": model.total() / optical,
            "breakdown": model.breakdown(),
        }
        for name, model in totals.items()
    }
