"""MV capacity model (§4.2).

"MV with 1 billion files and 1 billion directories only needs about
2.3 TB, which is only 0.23 % of the overall 1 PB data capacity."

Every namespace entry costs one index file: a 1 KB MV block (the paper
formats MV with 1 KB blocks; the typical 388-byte JSON index fits one) plus
the smallest 128-byte inode.  Append-heavy files may spill into more
blocks (15 entries x 40 B still fits one).
"""

from __future__ import annotations

from repro import units
from repro.olfs.index import (
    TYPICAL_INDEX_FILE_BYTES,
    VERSION_ENTRY_BYTES,
)
from repro.olfs.metadata import MV_BLOCK_SIZE, MV_INODE_SIZE


def index_file_bytes(versions: int = 1) -> int:
    """Estimated serialized size of an index file with ``versions``."""
    return TYPICAL_INDEX_FILE_BYTES + (versions - 1) * VERSION_ENTRY_BYTES


def mv_entry_footprint(versions: int = 1) -> int:
    """Bytes one namespace entry occupies in MV (blocks + inode)."""
    blocks = -(-index_file_bytes(versions) // MV_BLOCK_SIZE)
    return blocks * MV_BLOCK_SIZE + MV_INODE_SIZE


def mv_capacity_bytes(
    files: int = 1_000_000_000,
    directories: int = 1_000_000_000,
    versions_per_file: int = 1,
) -> int:
    """Total MV footprint for a namespace of this shape."""
    per_file = mv_entry_footprint(versions_per_file)
    per_dir = mv_entry_footprint(1)
    return files * per_file + directories * per_dir


def mv_fraction_of_capacity(
    data_capacity: int = units.PB,
    files: int = 1_000_000_000,
    directories: int = 1_000_000_000,
) -> float:
    """MV bytes as a fraction of the library's data capacity (~0.23 %)."""
    return mv_capacity_bytes(files, directories) / data_capacity
