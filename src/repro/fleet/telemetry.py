"""Per-rack telemetry agents replicating samples to a central store.

The ReductStore demo in the related file set records robot telemetry
locally and replicates it to a central archive; this module mirrors
that shape inside the simulation.  A :class:`TelemetryAgent` lives with
one rack (or one site frontend): a
:class:`~repro.sim.telemetry.Sampler` ``on_tick`` hook evaluates its
probes each period and appends points to the current batch; sealed
batches wait in a bounded outbox until a replicator process ships them
to the :class:`CentralTelemetry` ingest over the site's simulated
:class:`~repro.serve.network.NetworkLink` — replication traffic is real
bytes on the same lanes as tenant traffic, at a small flow weight.

Delivery semantics (the part ``net.link_flap`` and ``rack.loss`` care
about):

* Batches carry a per-agent sequence number; the central store ingests
  each sequence at most once.  A link failure *after* ingest but before
  the ack costs a retry, not a duplicate.
* Unacked batches are retried with exponential backoff until the link
  heals — an acked batch can never be lost, and after an outage the
  agent catches up from its outbox.
* The outbox is bounded: when sealing a batch would exceed it, the
  oldest *unacked* batch is dropped and counted (``batches_dropped`` /
  ``points_dropped``).  Backpressure loses the oldest unsent samples,
  never acked ones.
* While the source rack is down the sampler skips ticks (an agent dies
  with its rack) and the replicator backs off; a destroyed rack's
  agent simply goes silent — the supervisor's staleness rule is how
  the fleet notices.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, Optional

from repro.errors import LinkDownError, RackLostError
from repro.serve.network import NetworkLink
from repro.sim.engine import Delay, Engine, SimEvent, Wait
from repro.sim.telemetry import Sampler
from repro.tsdb import TimeSeriesStore

#: wire cost of one replication batch envelope (headers, auth, framing)
BATCH_HEADER_BYTES = 256.0
#: wire cost per replicated point (name + labels + float, encoded)
POINT_WIRE_BYTES = 48.0
#: wire cost of the central store's ack
ACK_WIRE_BYTES = 64.0


class CentralTelemetry:
    """Ingest frontend of the central store: per-agent seq dedup."""

    def __init__(self, store: Optional[TimeSeriesStore] = None):
        self.store = store if store is not None else TimeSeriesStore()
        self._last_seq: dict[str, int] = {}
        self.stats = {
            "batches_ingested": 0,
            "points_ingested": 0,
            "duplicate_batches": 0,
        }

    def ingest(
        self,
        agent_id: str,
        seq: int,
        points: list[tuple[str, dict, float, float]],
    ) -> bool:
        """Apply one batch exactly once; False if ``seq`` was replayed."""
        if seq <= self._last_seq.get(agent_id, -1):
            self.stats["duplicate_batches"] += 1
            return False
        self._last_seq[agent_id] = seq
        for name, labels, t, value in points:
            self.store.append(name, labels, t, value)
        self.stats["batches_ingested"] += 1
        self.stats["points_ingested"] += len(points)
        return True

    def health(self) -> dict:
        return {
            **{key: int(val) for key, val in sorted(self.stats.items())},
            "agents_seen": len(self._last_seq),
        }


class TelemetryAgent:
    """One rack's sampler + batcher + link replicator."""

    def __init__(
        self,
        engine: Engine,
        agent_id: str,
        central: CentralTelemetry,
        link: NetworkLink,
        probes: dict[str, Callable[[], float]],
        labels: Optional[dict] = None,
        sample_period_s: float = 1.0,
        flush_every: int = 4,
        max_outbox_batches: int = 16,
        horizon_s: Optional[float] = None,
        source_up: Optional[Callable[[], bool]] = None,
        backoff_s: float = 0.25,
        max_backoff_s: float = 4.0,
        link_weight: float = 0.25,
        drain_retry_limit: int = 8,
    ):
        if flush_every <= 0:
            raise ValueError("flush_every must be positive")
        if max_outbox_batches <= 0:
            raise ValueError("max_outbox_batches must be positive")
        self.engine = engine
        self.agent_id = agent_id
        self.central = central
        self.link = link
        self.probes = dict(probes)
        self.labels = dict(labels or {})
        self.flush_every = int(flush_every)
        self.max_outbox_batches = int(max_outbox_batches)
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.link_weight = float(link_weight)
        self.drain_retry_limit = int(drain_retry_limit)
        self.source_up = source_up
        self._pending: list[tuple[str, dict, float, float]] = []
        self._outbox: deque[tuple[int, list]] = deque()
        self._seq = 0
        self._ticks = 0
        self._stopped = False
        self._wake: SimEvent = engine.event(f"telemetry.{agent_id}")
        self._flusher = None
        self.sampler = Sampler(
            engine,
            period=sample_period_s,
            probes={},
            horizon=horizon_s,
            on_tick=self._tick,
        )
        self.stats = {
            "samples": 0,
            "ticks_skipped": 0,
            "batches_sealed": 0,
            "batches_acked": 0,
            "batches_dropped": 0,
            "batches_abandoned": 0,
            "points_dropped": 0,
            "retries": 0,
        }

    # ------------------------------------------------------------------
    def start(self) -> "TelemetryAgent":
        self.sampler.start()
        if self._flusher is None or self._flusher.done:
            self._flusher = self.engine.spawn(
                self._replicate(), name=f"telemetry-{self.agent_id}"
            )
        return self

    def stop(self) -> None:
        """Stop sampling, seal the tail batch, let the replicator drain."""
        if self._stopped:
            return
        self._stopped = True
        self.sampler.stop()
        self._seal()
        self._signal()

    # ------------------------------------------------------------------
    def _source_is_up(self) -> bool:
        return self.source_up is None or bool(self.source_up())

    def _tick(self, now: float) -> None:
        if self._stopped:
            return
        if not self._source_is_up():
            self.stats["ticks_skipped"] += 1
            return
        for name in sorted(self.probes):
            self._pending.append(
                (name, self.labels, now, float(self.probes[name]()))
            )
            self.stats["samples"] += 1
        self._ticks += 1
        # the first tick seals immediately — a rack that dies young must
        # still have reported once, or the supervisor's staleness rule
        # has no series to notice going quiet
        if self._ticks == 1 or self._ticks % self.flush_every == 0:
            self._seal()

    def _seal(self) -> None:
        if not self._pending:
            return
        if len(self._outbox) >= self.max_outbox_batches:
            _seq, dropped = self._outbox.popleft()
            self.stats["batches_dropped"] += 1
            self.stats["points_dropped"] += len(dropped)
        self._outbox.append((self._seq, self._pending))
        self._seq += 1
        self._pending = []
        self.stats["batches_sealed"] += 1
        self._signal()

    def _signal(self) -> None:
        event = self._wake
        self._wake = self.engine.event(f"telemetry.{self.agent_id}")
        event.succeed(None)

    # ------------------------------------------------------------------
    def _replicate(self) -> Generator:
        backoff = self.backoff_s
        attempts = 0
        while True:
            if not self._outbox:
                if self._stopped:
                    return
                yield Wait(self._wake)
                continue
            if not self._source_is_up():
                if self._stopped:
                    # Rack gone for good and the campaign is over: the
                    # unacked tail is lost with its rack, and counted.
                    self._abandon_outbox()
                    return
                yield Delay(backoff)
                backoff = min(backoff * 2, self.max_backoff_s)
                continue
            seq, points = self._outbox[0]
            wire = BATCH_HEADER_BYTES + POINT_WIRE_BYTES * len(points)
            try:
                yield from self.link.request(wire, self.link_weight)
                self.central.ingest(self.agent_id, seq, points)
                yield from self.link.respond(
                    ACK_WIRE_BYTES, self.link_weight
                )
            except (LinkDownError, RackLostError):
                self.stats["retries"] += 1
                attempts += 1
                if self._stopped and attempts > self.drain_retry_limit:
                    self._abandon_outbox()
                    return
                yield Delay(backoff)
                backoff = min(backoff * 2, self.max_backoff_s)
                continue
            self._outbox.popleft()
            self.stats["batches_acked"] += 1
            backoff = self.backoff_s
            attempts = 0

    def _abandon_outbox(self) -> None:
        while self._outbox:
            _seq, points = self._outbox.popleft()
            self.stats["batches_abandoned"] += 1
            self.stats["points_dropped"] += len(points)

    # ------------------------------------------------------------------
    @property
    def outbox_depth(self) -> int:
        return len(self._outbox)

    def health(self) -> dict:
        return {
            "agent": self.agent_id,
            "outbox_depth": len(self._outbox),
            **{key: int(val) for key, val in sorted(self.stats.items())},
        }


def rack_probes(rack) -> dict[str, Callable[[], float]]:
    """The standard per-rack probe set over ``ShardRack`` health fields.

    Gauges (up, shards, flows, bytes) plus the monotonic counters the
    supervisor's rate rules consume — counters make rates computable
    without diffing health dicts.
    """
    return {
        "fleet.rack.up": lambda: 1.0 if rack.up else 0.0,
        "fleet.rack.shards": lambda: float(len(rack.shards)),
        "fleet.rack.used_bytes": lambda: float(rack.used_bytes),
        "fleet.rack.active_flows": lambda: float(rack.lane.active_flows),
        "fleet.rack.fetches": lambda: float(rack.fetches),
        "fleet.rack.fetch_errors": lambda: float(rack.fetch_errors),
        "fleet.rack.stores": lambda: float(rack.stores),
        "fleet.rack.store_errors": lambda: float(rack.store_errors),
        "fleet.rack.failures": lambda: float(rack.failures),
    }


def site_probes(
    site: str, link: NetworkLink, metrics, statuses: tuple[str, ...]
) -> dict[str, Callable[[], float]]:
    """Per-site frontend probes: link counters + tenant op outcomes."""
    probes: dict[str, Callable[[], float]] = {
        "fleet.site.link_requests": lambda: float(link.requests),
        "fleet.site.link_drops": lambda: float(link.drops),
    }
    for status in statuses:
        counter = metrics.counter(f"serve.ops.{site}.{status}")
        probes[f"fleet.site.ops_{status}"] = (
            lambda c=counter: float(c.value)
        )
    return probes
