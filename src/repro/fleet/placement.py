"""Rendezvous (HRW) shard placement with failure-domain spreading.

Every (rack, path) pair gets a score from a keyed hash; an object's
shards go to the top-``n`` racks by score, greedily skipping racks whose
site already holds ``site_cap`` shards of this object.  Rendezvous
hashing gives the two properties the property suite pins:

* **determinism + balance** — scores are uniform, so shard counts
  spread evenly across racks with no central table;
* **bounded movement** — adding a rack only reassigns the shard slots
  the new rack wins; everything else keeps its placement (the classic
  HRW minimal-disruption argument).

Placement is pure: a function of the rack set and the path, no live
state — the store records the chosen placement per object and the
recovery manager re-ranks with the same function when it must move a
shard off a destroyed rack.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Optional

from repro.errors import FleetError


def rack_score(rack_id: str, path: str) -> int:
    """Keyed rendezvous score of ``rack_id`` for ``path`` (64-bit)."""
    digest = hashlib.sha256(f"{rack_id}:{path}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def rank_racks(rack_ids: Iterable[str], path: str) -> list[str]:
    """Racks by descending rendezvous score (rack id breaks ties)."""
    return sorted(rack_ids, key=lambda rack: (-rack_score(rack, path), rack))


def place(
    path: str,
    rack_sites: Mapping[str, str],
    n: int,
    site_cap: Optional[int] = None,
) -> list[str]:
    """Top-``n`` racks for ``path``, honouring the per-site shard cap.

    ``rack_sites`` maps candidate rack id -> site name.  The result is
    ordered: shard position ``i`` lives on ``result[i]``.  If the cap
    makes ``n`` unreachable (too few sites survive), the cap is relaxed
    for the remaining slots — durability degrades before availability
    does, and the next recovery pass re-spreads.
    """
    ranked = rank_racks(rack_sites, path)
    if len(ranked) < n:
        raise FleetError(
            f"placement needs {n} racks, only {len(ranked)} candidates"
        )
    chosen: list[str] = []
    if site_cap is not None:
        per_site: dict[str, int] = {}
        for rack in ranked:
            site = rack_sites[rack]
            if per_site.get(site, 0) >= site_cap:
                continue
            chosen.append(rack)
            per_site[site] = per_site.get(site, 0) + 1
            if len(chosen) == n:
                return chosen
        # Cap infeasible on this candidate set: fill remaining slots in
        # rank order from the racks the cap skipped.
        for rack in ranked:
            if rack not in chosen:
                chosen.append(rack)
                if len(chosen) == n:
                    return chosen
        return chosen
    return ranked[:n]


def balance(placements: Iterable[Iterable[str]]) -> dict[str, int]:
    """Shard count per rack over many placements (report material)."""
    counts: dict[str, int] = {}
    for placement in placements:
        for rack in placement:
            counts[rack] = counts.get(rack, 0) + 1
    return dict(sorted(counts.items()))
