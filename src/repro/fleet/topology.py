"""Fleet topology: sites, racks, and shard layouts.

A :class:`FleetTopology` names the failure domains of a geo-distributed
archive: ``sites`` machine rooms, each holding ``racks_per_site``
ROS-style optical racks.  A :class:`Layout` says how one disc image is
cut across that topology — ``k`` data shards plus ``m`` parity shards
computed with the same P/Q math as :class:`~repro.storage.raid.RAID6`
(``k=1`` degenerates to plain ``1+m`` replication, because P and Q of a
single shard are copies of it).

The durability contract the placement layer enforces: at most
``site_cap`` shards of any one object land in one site, so losing an
entire site destroys at most ``site_cap`` shards.  With the default
``site_cap = m`` a whole-site loss is always survivable — that is
invariant I8's geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Layout:
    """Erasure layout of one object: ``k`` data + ``m`` parity shards."""

    k: int = 4
    m: int = 2

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("layout needs at least one data shard")
        if not 0 <= self.m <= 2:
            raise ValueError("layout supports 0, 1 or 2 parity shards")

    @property
    def n(self) -> int:
        return self.k + self.m

    def to_dict(self) -> dict:
        return {"k": self.k, "m": self.m}


@dataclass(frozen=True)
class FleetTopology:
    """Failure-domain tree of the fleet: sites of racks."""

    sites: int = 3
    racks_per_site: int = 8
    #: max shards of one object per site (None = the layout's ``m``)
    site_cap: Optional[int] = None

    def __post_init__(self):
        if self.sites < 1:
            raise ValueError("topology needs at least one site")
        if self.racks_per_site < 1:
            raise ValueError("topology needs at least one rack per site")
        if self.site_cap is not None and self.site_cap < 1:
            raise ValueError("site_cap must be at least 1")

    # -- naming --------------------------------------------------------
    @property
    def rack_count(self) -> int:
        return self.sites * self.racks_per_site

    def site_name(self, site: int) -> str:
        return f"site-{site}"

    def site_names(self) -> list[str]:
        return [self.site_name(site) for site in range(self.sites)]

    def rack_id(self, site: int, rack: int) -> str:
        return f"s{site}.r{rack:02d}"

    def rack_ids(self) -> list[str]:
        return [
            self.rack_id(site, rack)
            for site in range(self.sites)
            for rack in range(self.racks_per_site)
        ]

    def site_of(self, rack_id: str) -> str:
        return self.site_name(int(rack_id.split(".", 1)[0][1:]))

    def rack_sites(self) -> dict[str, str]:
        """rack id -> site name, in deterministic rack-id order."""
        return {
            rack_id: self.site_of(rack_id) for rack_id in self.rack_ids()
        }

    # -- durability geometry -------------------------------------------
    def effective_site_cap(self, layout: Layout) -> int:
        return self.site_cap if self.site_cap is not None else max(
            layout.m, 1
        )

    def validate_layout(self, layout: Layout) -> None:
        """Raise if the layout cannot spread over this topology with the
        site cap honoured (distinct racks, at most ``site_cap``/site)."""
        cap = self.effective_site_cap(layout)
        if layout.n > self.rack_count:
            raise ValueError(
                f"layout {layout.k}+{layout.m} needs {layout.n} racks, "
                f"topology has {self.rack_count}"
            )
        per_site = min(cap, self.racks_per_site)
        if layout.n > per_site * self.sites:
            raise ValueError(
                f"layout {layout.k}+{layout.m} cannot honour site cap "
                f"{cap} over {self.sites} sites"
            )

    def to_dict(self) -> dict:
        return {
            "sites": self.sites,
            "racks_per_site": self.racks_per_site,
            "site_cap": self.site_cap,
        }
