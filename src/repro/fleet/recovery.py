"""Rack-loss and site-loss recovery campaigns.

The :class:`RecoveryManager` is a long-lived engine process that wakes
on the store's loss event (fired when a rack or site is *destroyed*,
not merely down), waits a detection delay, and rebuilds every lost
shard onto a surviving rack:

1. decode the object from any ``k`` surviving shards (paying real fetch
   time through the surviving racks' bandwidth lanes — recovery traffic
   genuinely competes with client reads);
2. re-derive the lost shard (data slice or P/Q parity) with the
   :mod:`repro.storage.raid` erasure math;
3. store it on the best-ranked surviving rack outside the object's
   current placement, preferring racks that keep the per-site shard cap
   intact, and repoint the catalog.

Objects whose survivors dropped below ``k`` are *unrecoverable*: the
manager counts their bytes instead of fabricating them — that count is
exactly what invariant I8 and the fleet campaign's "zero bytes lost"
verdict check.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.errors import FleetError, RackLostError, ShardUnavailableError
from repro.fleet.store import FleetStore
from repro.sim.engine import Delay, Wait


class RecoveryManager:
    """Background rebuild of destroyed shards onto surviving racks."""

    def __init__(
        self,
        store: FleetStore,
        detection_delay_s: float = 1.0,
    ):
        self.store = store
        self.engine = store.engine
        self.detection_delay_s = float(detection_delay_s)
        self._running = True
        self.stats = {
            "campaigns": 0,
            "shards_rebuilt": 0,
            "bytes_rebuilt": 0.0,
            "objects_rebuilt": 0,
            "objects_unrecoverable": 0,
            "bytes_lost": 0.0,
        }

    # ------------------------------------------------------------------
    def run(self) -> Generator:
        """The manager process: wake per loss, rebuild until clean.

        A pass that makes *no* progress (every remaining lost shard is
        unrebuildable with the racks currently up — e.g. fewer up racks
        than the layout's ``n``) parks the manager back on the loss
        event instead of retrying: nothing changes until the fleet
        changes shape, and the store fires the event on restores as
        well as losses.
        """
        while self._running:
            if self.store.lost_shards():
                yield Delay(self.detection_delay_s)
                rebuilt = yield from self.rebuild_all()
                if not self._running:
                    return
                if rebuilt and self.store.lost_shards():
                    continue  # progress made: immediately try the rest
            yield Wait(self.store.loss_event)
            if not self._running:
                return

    def stop(self) -> None:
        """Stop after the current pass; wakes a sleeping manager."""
        self._running = False
        self.store.signal_loss()

    # ------------------------------------------------------------------
    def rebuild_all(self) -> Generator:
        """One recovery campaign: re-home every currently-lost shard.

        Returns the number of shards actually rebuilt, so the manager
        loop can tell progress from a pass that found nothing actionable.
        """
        self.stats["campaigns"] += 1
        by_path: dict[str, list[int]] = {}
        for path, position in self.store.lost_shards():
            by_path.setdefault(path, []).append(position)
        total = 0
        for path in sorted(by_path):
            total += yield from self._rebuild_object(
                path, sorted(by_path[path])
            )
        return total

    def _rebuild_object(
        self, path: str, missing: list[int]
    ) -> Generator:
        store = self.store
        record = store.catalog[path]
        survivors = [
            position
            for position in store.surviving_shards(path)
            if store.racks[record.placement[position]].up
        ]
        if len(survivors) < record.k:
            # Survivors that exist but sit on down (intact) racks don't
            # help a rebuild *now*; if even the physical survivors are
            # below k the object is gone for good.
            if not store.recoverable(path):
                self.stats["objects_unrecoverable"] += 1
                self.stats["bytes_lost"] += record.size
            return 0
        fetched: dict[int, bytes] = {}
        for position in survivors:
            if len(fetched) >= record.k:
                break
            rack = store.racks[record.placement[position]]
            try:
                payload = yield from rack.fetch(path, position)
            except (RackLostError, ShardUnavailableError):
                continue
            fetched[position] = payload
        if len(fetched) < record.k:
            if not store.recoverable(path):
                self.stats["objects_unrecoverable"] += 1
                self.stats["bytes_lost"] += record.size
            return 0
        data_shards = [
            chunk.tobytes()
            for chunk in _decode_arrays(fetched, record.k)
        ]
        all_shards = _reshard(data_shards, record.m)
        rebuilt = 0
        for position in missing:
            try:
                target = store.rebuild_target(record, position)
            except FleetError:
                break
            try:
                yield from store.racks[target].store(
                    path, position, all_shards[position],
                    wire_bytes=record.shard_wire,
                )
            except RackLostError:
                continue  # target died while we streamed; next campaign
            record.placement[position] = target
            rebuilt += 1
            self.stats["shards_rebuilt"] += 1
            self.stats["bytes_rebuilt"] += record.shard_wire
        if rebuilt:
            self.stats["objects_rebuilt"] += 1
        return rebuilt

    # ------------------------------------------------------------------
    def health(self) -> dict:
        stats = dict(self.stats)
        stats["bytes_rebuilt"] = round(stats["bytes_rebuilt"], 3)
        stats["bytes_lost"] = round(stats["bytes_lost"], 3)
        stats["running"] = self._running
        return stats


def _decode_arrays(shards: dict[int, bytes], k: int) -> list[np.ndarray]:
    from repro.storage.raid import erasure_decode

    arrays = {
        position: np.frombuffer(payload, dtype=np.uint8)
        for position, payload in shards.items()
    }
    return erasure_decode(k, arrays)


def _reshard(data_shards: list[bytes], m: int) -> list[bytes]:
    """Full shard list (data + parity) from the decoded data shards."""
    from repro.storage.raid import erasure_parity

    shards = list(data_shards)
    if m:
        arrays = [
            np.frombuffer(shard, dtype=np.uint8) for shard in data_shards
        ]
        shards.extend(
            parity.tobytes() for parity in erasure_parity(arrays, m)
        )
    return shards
