"""Fleet layer: geo-distributed placement, recovery, and serving.

Scales the single-rack ROS design out to tens of racks across multiple
sites: rendezvous placement of erasure-coded disc images
(:mod:`repro.fleet.placement` / :mod:`repro.fleet.store`), rack- and
site-loss recovery campaigns (:mod:`repro.fleet.recovery`), a
locality-aware serving frontend (:mod:`repro.fleet.frontend`) and the
seed-deterministic fleet campaign (:mod:`repro.fleet.campaign`).
"""

from repro.fleet.campaign import render_text, report_to_json, run_fleet
from repro.fleet.frontend import FleetBackend, FleetFrontend
from repro.fleet.placement import balance, place, rank_racks
from repro.fleet.rack import ShardRack
from repro.fleet.recovery import RecoveryManager
from repro.fleet.store import (
    FleetStore,
    ObjectRecord,
    decode_object,
    encode_object,
)
from repro.fleet.topology import FleetTopology, Layout

__all__ = [
    "FleetBackend",
    "FleetFrontend",
    "FleetStore",
    "FleetTopology",
    "Layout",
    "ObjectRecord",
    "RecoveryManager",
    "ShardRack",
    "balance",
    "decode_object",
    "encode_object",
    "place",
    "rank_racks",
    "render_text",
    "report_to_json",
    "run_fleet",
]
