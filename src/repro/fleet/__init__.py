"""Fleet layer: geo-distributed placement, recovery, and serving.

Scales the single-rack ROS design out to tens of racks across multiple
sites: rendezvous placement of erasure-coded disc images
(:mod:`repro.fleet.placement` / :mod:`repro.fleet.store`), rack- and
site-loss recovery campaigns (:mod:`repro.fleet.recovery`), a
locality-aware serving frontend (:mod:`repro.fleet.frontend`) and the
seed-deterministic fleet campaign (:mod:`repro.fleet.campaign`).

The telemetry pipeline rides on top: per-rack agents
(:mod:`repro.fleet.telemetry`) replicate health samples into a central
:class:`~repro.tsdb.TimeSeriesStore`, the closed-loop supervisor
(:mod:`repro.fleet.supervisor`) remediates what the samples reveal, and
:mod:`repro.fleet.monitor` is the campaign that exercises the whole
loop (``python -m repro fleet-monitor``).
"""

from repro.fleet.campaign import render_text, report_to_json, run_fleet
from repro.fleet.frontend import FleetBackend, FleetFrontend
from repro.fleet.monitor import run_fleet_monitor
from repro.fleet.supervisor import FleetSupervisor, TriggerRule
from repro.fleet.telemetry import (
    CentralTelemetry,
    TelemetryAgent,
    rack_probes,
    site_probes,
)
from repro.fleet.placement import balance, place, rank_racks
from repro.fleet.rack import ShardRack
from repro.fleet.recovery import RecoveryManager
from repro.fleet.store import (
    FleetStore,
    ObjectRecord,
    decode_object,
    encode_object,
)
from repro.fleet.topology import FleetTopology, Layout

__all__ = [
    "CentralTelemetry",
    "FleetBackend",
    "FleetFrontend",
    "FleetStore",
    "FleetSupervisor",
    "FleetTopology",
    "Layout",
    "ObjectRecord",
    "RecoveryManager",
    "ShardRack",
    "TelemetryAgent",
    "TriggerRule",
    "balance",
    "decode_object",
    "encode_object",
    "place",
    "rack_probes",
    "rank_racks",
    "render_text",
    "report_to_json",
    "run_fleet",
    "run_fleet_monitor",
    "site_probes",
]
