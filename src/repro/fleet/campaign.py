"""Fleet campaigns: geo-distributed serving under rack/site loss.

``run_fleet(seed, ...)`` is the fleet-scale experiment in one call:
build a multi-site :class:`~repro.fleet.store.FleetStore` (tens of
racks), pre-populate it with erasure-coded disc images, attach one
10GbE link + one admission tenant per site, and drive 10⁵–10⁶ pooled
open-loop clients (:class:`~repro.serve.loadgen.ClientPool` aggregate
mode) through :class:`~repro.fleet.frontend.FleetBackend` adapters
while the fault injector destroys a rack and then an entire site.
The :class:`~repro.fleet.recovery.RecoveryManager` rebuilds lost
shards onto survivors concurrently with client traffic.

The audit asserts invariant I8 ("no durable image unrecoverable while
surviving shards ≥ k"), admission conservation (I5) and engine drain
(I2's fleet analogue), and the verdict demands **zero bytes lost** —
a destroyed site may cost at most ``m`` shards of any object, so every
acked image must decode back byte-identically.

Everything derives from the one seed; a campaign is a pure function of
its arguments and its JSON report is byte-reproducible — the CLI
(``python -m repro fleet``) runs it twice and fails on any diff.
"""

from __future__ import annotations

import json
from typing import Generator

from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    _result,
    check_fleet_recoverable,
    check_no_admitted_request_lost,
)
from repro.faults.plan import FaultPlan, RACK_LOSS, SITE_LOSS
from repro.fleet.frontend import FleetFrontend
from repro.fleet.placement import balance
from repro.fleet.recovery import RecoveryManager
from repro.fleet.store import FleetStore
from repro.fleet.topology import FleetTopology, Layout
from repro.serve.loadgen import ClientPool, FleetSpec
from repro.serve.network import NetworkLink
from repro.serve.session import LATENCY_BOUNDS, STATUSES, ClientSession
from repro.serve.tenancy import AdmissionController, TenantSpec
from repro.sim.engine import AllOf, Engine, Spawn
from repro.sim.rng import DeterministicRNG
from repro.sim.tracing import MetricsRegistry
from repro.workloads.generator import SIZE_PROFILES

#: in-simulation payload cap for pre-populated objects (wire sizes use
#: the declared logical size — same convention as the serve layer)
PAYLOAD_CAP = 64 * 1024


def _prepopulate(
    engine: Engine,
    store: FleetStore,
    rng: DeterministicRNG,
    objects: int,
    profile: str,
    max_file_bytes: int,
) -> list[tuple[str, int]]:
    """Seed the fleet with ``objects`` erasure-coded images; returns the
    shared read catalog ``[(path, declared_size)]`` the pools draw from."""
    mean, sigma = SIZE_PROFILES[profile]
    catalog: list[tuple[str, int]] = []

    def populate() -> Generator:
        for index in range(objects):
            size = max(1, int(min(rng.lognormal(mean, sigma),
                                  max_file_bytes)))
            payload = rng.bytes(min(size, PAYLOAD_CAP))
            path = f"/fleet/prepop/f{index:05d}.img"
            yield from store.put(path, payload, size)
            catalog.append((path, size))

    engine.run_process(populate(), "fleet-prepopulate")
    return catalog


def _tenant_summary(
    metrics: MetricsRegistry, admission: AdmissionController
) -> dict:
    """Per-site serving outcome summary (deterministic, rounded)."""
    tenants = {}
    for name in sorted(admission.tenants):
        stats = admission.stats[name]
        histogram = metrics.histogram(
            f"serve.latency_s.{name}", LATENCY_BOUNDS
        )
        counts = {
            status: int(metrics.counter(f"serve.ops.{name}.{status}").value)
            for status in STATUSES
        }
        tenants[name] = {
            "ops": sum(counts.values()),
            "outcomes": counts,
            "admitted": int(stats["admitted"]),
            "ok_bytes": round(
                metrics.counter(f"serve.bytes.{name}").value, 3
            ),
            "p50_s": round(histogram.quantile(0.50), 6),
            "p95_s": round(histogram.quantile(0.95), 6),
            "p99_s": round(histogram.quantile(0.99), 6),
        }
    return tenants


def run_fleet(
    seed: int,
    sites: int = 3,
    racks_per_site: int = 8,
    k: int = 4,
    m: int = 2,
    clients: int = 105_000,
    duration_s: float = 12.0,
    objects: int = 18,
    arrival_rate: float = 60.0,
    profile: str = "iot",
    max_file_bytes: int = 256 * 1024,
    rack_loss: bool = True,
    site_loss: bool = True,
    detection_delay_s: float = 0.5,
    read_fraction: float = 0.8,
    max_inflight: int = 32,
    flight_out: str | None = None,
) -> dict:
    """One fleet campaign; returns the (JSON-safe) report dict.

    ``clients`` is the whole fleet (split evenly across sites, remainder
    to site 0); ``arrival_rate`` is *per site* in ops/second.  With the
    defaults this serves 105 000 pooled clients over 24 racks in 3
    sites, loses one rack early and one whole site mid-run, and must
    end with every acked object decodable (I8) and zero bytes lost.

    ``flight_out`` attaches a flight recorder for the run and dumps it
    (JSONL) to that path; unset, run and report stay byte-identical to
    an unrecorded build.
    """
    engine = Engine()
    recorder = None
    if flight_out:
        from repro.obs.recorder import FlightRecorder

        recorder = FlightRecorder(engine).install()
    topology = FleetTopology(sites=sites, racks_per_site=racks_per_site)
    layout = Layout(k=k, m=m)
    store = FleetStore(engine, topology, layout)
    frontend = FleetFrontend(store)
    rng = DeterministicRNG(seed).child("fleet")

    catalog = _prepopulate(
        engine, store, rng.child("populate"), objects, profile,
        max_file_bytes,
    )

    # -- serving plumbing: one link + one tenant per site ---------------
    site_names = topology.site_names()
    links = {site: NetworkLink(engine) for site in site_names}
    admission = AdmissionController(
        engine,
        [TenantSpec(site, weight=1.0) for site in site_names],
        max_inflight=max_inflight,
    )
    metrics = MetricsRegistry()

    per_site = clients // sites
    fleets = []
    for index, site in enumerate(site_names):
        fleet_clients = per_site + (clients - per_site * sites
                                    if index == 0 else 0)
        fleets.append(
            FleetSpec(
                tenant=TenantSpec(site, weight=1.0),
                clients=max(1, fleet_clients),
                mode="open",
                arrival_rate=arrival_rate,
                read_fraction=read_fraction,
                profile=profile,
                max_file_bytes=max_file_bytes,
                pooling="aggregate",
            )
        )

    # -- fault schedule: a rack early, a whole site mid-run -------------
    serve_start = engine.now
    t_end = serve_start + duration_s
    frng = rng.child("faults")
    plan = FaultPlan()
    if rack_loss:
        plan.add(
            RACK_LOSS, at=serve_start + duration_s * frng.uniform(0.15, 0.3)
        )
    if site_loss:
        plan.add(
            SITE_LOSS, at=serve_start + duration_s * frng.uniform(0.5, 0.65)
        )
    injector = (
        FaultInjector(engine, plan, seed=seed).bind_fleet(store).install()
    )
    injector.start()

    manager = RecoveryManager(store, detection_delay_s=detection_delay_s)
    engine.spawn(manager.run(), name="fleet-recovery")

    # -- the client fleets ----------------------------------------------
    sessions: list[ClientSession] = []
    serve_rng = rng.child("serve")

    def main() -> Generator:
        pools = []
        for index, fleet in enumerate(fleets):
            site = site_names[index]
            pool = ClientPool(
                engine, fleet, serve_rng, links[site], admission,
                frontend.backend(site), metrics, catalog, t_end,
            )
            sessions.extend(pool.sessions)
            pools.append((yield Spawn(pool.run(), f"pool-{site}")))
        yield AllOf(pools)

    engine.run_process(main(), "fleet-main")
    injector.stop()
    admission.close()
    engine.run()  # let in-flight recovery campaigns finish
    manager.stop()
    engine.run()  # drain the woken manager and the closed dispatcher

    # -- audit -----------------------------------------------------------
    invariants = [
        check_fleet_recoverable(store),
        _result(
            "engine_drained",
            engine.is_idle,
            {"final_time": round(engine.now, 6)},
        ),
        check_no_admitted_request_lost(admission),
    ]
    lost_bytes = invariants[0]["detail"]["lost_bytes"]
    counts = balance(
        [record.placement for record in store.catalog.values()]
    )
    ok = all(inv["ok"] for inv in invariants) and lost_bytes == 0

    report = {
        "seed": seed,
        "duration_s": round(duration_s, 6),
        "topology": topology.to_dict(),
        "layout": layout.to_dict(),
        "clients": clients,
        "pooling": "aggregate",
        "prepopulated": len(catalog),
        "serve_start": round(serve_start, 6),
        "final_time": round(engine.now, 6),
        "plan": [spec.to_dict() for spec in plan],
        "fault_events": injector.log,
        "tenants": _tenant_summary(metrics, admission),
        "links": {
            site: {
                "requests": link.requests,
                "responses": link.responses,
                "drops": link.drops,
            }
            for site, link in sorted(links.items())
        },
        "store": store.health(),
        "recovery": manager.health(),
        "placement": {
            "racks_used": len(counts),
            "shards_min": min(counts.values()) if counts else 0,
            "shards_max": max(counts.values()) if counts else 0,
        },
        "sessions": {
            session.session_id: dict(sorted(session.outcomes.items()))
            for session in sorted(sessions, key=lambda s: s.session_id)
        },
        "invariants": invariants,
        "bytes_lost": lost_bytes,
        "ok": ok,
    }
    if recorder is not None:
        recorder.dump(flight_out)
        report["flight_dump"] = flight_out
    return report


def report_to_json(report: dict) -> str:
    """Canonical serialization — byte-comparable across identical runs."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def render_text(report: dict) -> str:
    """Human-readable campaign summary."""
    topo = report["topology"]
    layout = report["layout"]
    lines = [
        f"fleet report  seed={report['seed']}  "
        f"{topo['sites']}x{topo['racks_per_site']} racks  "
        f"layout {layout['k']}+{layout['m']}  "
        f"clients={report['clients']}",
        "",
        f"{'site':<10} {'ops':>7} {'ok':>7} {'failed':>7} "
        f"{'p50 s':>9} {'p99 s':>9}",
    ]
    lines.append("-" * len(lines[-1]))
    for name, entry in report["tenants"].items():
        lines.append(
            f"{name:<10} {entry['ops']:>7} "
            f"{entry['outcomes']['ok']:>7} "
            f"{entry['outcomes']['failed']:>7} "
            f"{entry['p50_s']:>9.4f} {entry['p99_s']:>9.4f}"
        )
    store = report["store"]
    recovery = report["recovery"]
    lines.append("")
    lines.append(
        f"store: {store['racks_up']}/{store['racks']} racks up, "
        f"{store['objects']} objects, "
        f"{store['lost_shards']} shards still lost"
    )
    lines.append(
        f"recovery: {recovery['campaigns']} campaigns, "
        f"{recovery['shards_rebuilt']} shards rebuilt, "
        f"{recovery['objects_unrecoverable']} objects unrecoverable"
    )
    for inv in report["invariants"]:
        status = "PASS" if inv["ok"] else "FAIL"
        lines.append(f"invariant {inv['invariant']}: {status}")
    lines.append(
        f"bytes lost: {report['bytes_lost']}  "
        f"verdict: {'OK' if report['ok'] else 'VIOLATION'}"
    )
    return "\n".join(lines)
