"""Monitored fleet campaigns: telemetry pipeline + closed-loop repair.

``run_fleet_monitor(seed, ...)`` is the observability experiment in one
call: a multi-site fleet serves pooled tenant traffic (the PR-6 setup)
while every rack hosts a :class:`~repro.fleet.telemetry.TelemetryAgent`
replicating health samples over the site's 10GbE link — real bytes
competing with tenant traffic — into one central
:class:`~repro.tsdb.TimeSeriesStore`.  A
:class:`~repro.fleet.supervisor.FleetSupervisor` closes the loop:
declarative trigger rules over the central store detect the injected
``rack.loss`` (the dead rack's series go stale), drain the rack out of
placement and kick :meth:`~repro.fleet.recovery.RecoveryManager.
rebuild_all` migrations until the fleet is whole again.

The audit adds invariant I9 ("remediation converges": zero acked bytes
lost *and* zero shards still missing once the supervisor has run its
course) on top of the fleet campaign's I8/I5/drain checks.  With
``telemetry=False`` the campaign degrades to the classic loss-event
driven recovery loop — same faults, no agents, no supervisor — which
is what the perf guard compares against.

Everything derives from the one seed; the report is byte-reproducible
and the CLI (``python -m repro fleet-monitor``) runs the campaign twice
and fails on any diff.
"""

from __future__ import annotations

import json
from typing import Generator, Optional

from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    _result,
    check_fleet_recoverable,
    check_no_admitted_request_lost,
    check_remediation_converges,
)
from repro.faults.plan import FaultPlan, RACK_LOSS, SITE_LOSS
from repro.fleet.campaign import PAYLOAD_CAP, _prepopulate, _tenant_summary
from repro.fleet.frontend import FleetFrontend
from repro.fleet.recovery import RecoveryManager
from repro.fleet.store import FleetStore
from repro.fleet.supervisor import FleetSupervisor, TriggerRule
from repro.fleet.telemetry import (
    CentralTelemetry,
    TelemetryAgent,
    rack_probes,
    site_probes,
)
from repro.fleet.topology import FleetTopology, Layout
from repro.obs.recorder import FlightRecorder
from repro.serve.loadgen import ClientPool, FleetSpec
from repro.serve.network import NetworkLink
from repro.serve.session import ClientSession, STATUSES
from repro.serve.tenancy import AdmissionController, TenantSpec
from repro.sim.engine import AllOf, Engine, Spawn
from repro.sim.rng import DeterministicRNG
from repro.sim.tracing import MetricsRegistry

__all__ = ["run_fleet_monitor", "report_to_json", "render_text"]

#: how long past the serving window the agents and supervisor keep
#: running — the remediation tail (stale detection + rebuild) needs it
GRACE_S = 8.0

#: staleness (seconds) after which a rack's telemetry is presumed dead;
#: > 2 flush intervals so a congested link never reads as a dead rack
STALE_AFTER_S = 3.0


def _default_rules() -> list[TriggerRule]:
    """The standard monitored-fleet rule set (see docs/fleet-telemetry.md)."""
    return [
        # A rack that stops reporting is presumed lost: drain it out of
        # placement and kick a rebuild of whatever it held.
        TriggerRule(
            name="rack-stale",
            series="fleet.rack.up",
            mode="stale",
            threshold=STALE_AFTER_S,
            clear=STALE_AFTER_S / 2,
            action="remediate_rack",
            clear_action="undrain_rack",
            cooldown_s=3.0,
            target_label="rack",
        ),
        # A rack that *is* reporting but throwing fetch errors gets
        # drained (reads deprioritize it, placements avoid it) until
        # the error rate subsides.
        TriggerRule(
            name="rack-error-rate",
            series="fleet.rack.fetch_errors",
            mode="rate",
            threshold=1.0,
            clear=0.25,
            window_s=5.0,
            action="drain_rack",
            clear_action="undrain_rack",
            cooldown_s=3.0,
            target_label="rack",
        ),
        # A site burning its SLO budget (failed tenant ops per second)
        # gets a rebuild kicked — failures at the frontend usually mean
        # shards are missing underneath.
        TriggerRule(
            name="site-slo-burn",
            series="fleet.site.ops_failed",
            mode="rate",
            threshold=0.5,
            clear=0.1,
            window_s=5.0,
            action="start_rebuild",
            cooldown_s=4.0,
            target_label="site",
        ),
    ]


def run_fleet_monitor(
    seed: int,
    sites: int = 3,
    racks_per_site: int = 4,
    k: int = 4,
    m: int = 2,
    clients: int = 24_000,
    duration_s: float = 10.0,
    objects: int = 12,
    arrival_rate: float = 40.0,
    profile: str = "iot",
    max_file_bytes: int = 256 * 1024,
    rack_loss: bool = True,
    site_loss: bool = False,
    detection_delay_s: float = 0.5,
    read_fraction: float = 0.8,
    max_inflight: int = 32,
    telemetry: bool = True,
    sample_period_s: float = 0.5,
    flush_every: int = 3,
    flight_out: Optional[str] = None,
) -> dict:
    """One monitored fleet campaign; returns the (JSON-safe) report.

    With the defaults: 24 000 pooled clients over 12 racks in 3 sites,
    one rack destroyed early, per-rack telemetry agents and the
    closed-loop supervisor detecting and repairing the loss while
    serving continues.  ``telemetry=False`` runs the identical fleet
    with the classic loss-event recovery loop instead — the baseline
    the perf guard measures agent overhead against.
    """
    engine = Engine()
    recorder = FlightRecorder(engine).install()
    topology = FleetTopology(sites=sites, racks_per_site=racks_per_site)
    layout = Layout(k=k, m=m)
    store = FleetStore(engine, topology, layout)
    frontend = FleetFrontend(store)
    rng = DeterministicRNG(seed).child("fleet-monitor")

    catalog = _prepopulate(
        engine, store, rng.child("populate"), objects, profile,
        max_file_bytes,
    )

    # -- serving plumbing: one link + one tenant per site ---------------
    site_names = topology.site_names()
    links = {site: NetworkLink(engine) for site in site_names}
    admission = AdmissionController(
        engine,
        [TenantSpec(site, weight=1.0) for site in site_names],
        max_inflight=max_inflight,
    )
    metrics = MetricsRegistry()

    per_site = clients // sites
    fleets = []
    for index, site in enumerate(site_names):
        fleet_clients = per_site + (clients - per_site * sites
                                    if index == 0 else 0)
        fleets.append(
            FleetSpec(
                tenant=TenantSpec(site, weight=1.0),
                clients=max(1, fleet_clients),
                mode="open",
                arrival_rate=arrival_rate,
                read_fraction=read_fraction,
                profile=profile,
                max_file_bytes=max_file_bytes,
                pooling="aggregate",
            )
        )

    # -- fault schedule --------------------------------------------------
    serve_start = engine.now
    t_end = serve_start + duration_s
    horizon_s = duration_s + GRACE_S
    frng = rng.child("faults")
    plan = FaultPlan()
    if rack_loss:
        plan.add(
            RACK_LOSS, at=serve_start + duration_s * frng.uniform(0.15, 0.3)
        )
    if site_loss:
        plan.add(
            SITE_LOSS, at=serve_start + duration_s * frng.uniform(0.5, 0.65)
        )
    injector = (
        FaultInjector(engine, plan, seed=seed).bind_fleet(store).install()
    )
    injector.start()

    manager = RecoveryManager(store, detection_delay_s=detection_delay_s)

    # -- telemetry pipeline + closed-loop supervisor ---------------------
    central = CentralTelemetry()
    agents: list[TelemetryAgent] = []
    supervisor: Optional[FleetSupervisor] = None
    if telemetry:
        for rack_id, rack in sorted(store.racks.items()):
            agents.append(
                TelemetryAgent(
                    engine,
                    agent_id=rack_id,
                    central=central,
                    link=links[rack.site],
                    probes=rack_probes(rack),
                    labels={"rack": rack_id, "site": rack.site},
                    sample_period_s=sample_period_s,
                    flush_every=flush_every,
                    horizon_s=horizon_s,
                    source_up=lambda r=rack: r.up,
                ).start()
            )
        for site in site_names:
            agents.append(
                TelemetryAgent(
                    engine,
                    agent_id=f"frontend.{site}",
                    central=central,
                    link=links[site],
                    probes=site_probes(site, links[site], metrics, STATUSES),
                    labels={"site": site},
                    sample_period_s=sample_period_s,
                    flush_every=flush_every,
                    horizon_s=horizon_s,
                ).start()
            )

        rebuild_state = {"active": False}

        def _kick_rebuild() -> bool:
            if rebuild_state["active"] or not store.lost_shards():
                return False
            rebuild_state["active"] = True

            def one_shot() -> Generator:
                try:
                    yield from manager.rebuild_all()
                finally:
                    rebuild_state["active"] = False

            engine.spawn(one_shot(), name="supervised-rebuild")
            return True

        def drain_rack(target: str) -> dict:
            changed = (
                store.set_drained(target, True)
                if target in store.racks else False
            )
            return {"drained": changed}

        def undrain_rack(target: str) -> dict:
            changed = (
                store.set_drained(target, False)
                if target in store.racks else False
            )
            return {"undrained": changed}

        def remediate_rack(target: str) -> dict:
            detail = drain_rack(target)
            detail["rebuild_kicked"] = _kick_rebuild()
            return detail

        def start_rebuild(target: str) -> dict:
            return {"rebuild_kicked": _kick_rebuild()}

        supervisor = FleetSupervisor(
            engine,
            central.store,
            rules=_default_rules(),
            actions={
                "drain_rack": drain_rack,
                "undrain_rack": undrain_rack,
                "remediate_rack": remediate_rack,
                "start_rebuild": start_rebuild,
            },
            eval_period_s=0.75,
            horizon_s=horizon_s,
        ).start()
    else:
        # Classic loss-event driven recovery (the PR-6 baseline).
        engine.spawn(manager.run(), name="fleet-recovery")

    # -- the client fleets ----------------------------------------------
    sessions: list[ClientSession] = []
    serve_rng = rng.child("serve")

    def main() -> Generator:
        pools = []
        for index, fleet in enumerate(fleets):
            site = site_names[index]
            pool = ClientPool(
                engine, fleet, serve_rng, links[site], admission,
                frontend.backend(site), metrics, catalog, t_end,
            )
            sessions.extend(pool.sessions)
            pools.append((yield Spawn(pool.run(), f"pool-{site}")))
        yield AllOf(pools)

    engine.run_process(main(), "fleet-monitor-main")
    injector.stop()
    admission.close()
    engine.run()  # remediation tail: agents + supervisor out to horizon
    for agent in agents:
        agent.stop()  # seal tail batches; replicators drain or abandon
    if supervisor is not None:
        supervisor.stop()
    manager.stop()
    engine.run()  # drain replicators, the parked manager, final rebuilds
    central.store.flush()  # finalize open rollup buckets for the report

    # -- audit -----------------------------------------------------------
    invariants = []
    if supervisor is not None:
        invariants.append(check_remediation_converges(store, supervisor))
    invariants.extend(
        [
            check_fleet_recoverable(store),
            _result(
                "engine_drained",
                engine.is_idle,
                {"final_time": round(engine.now, 6)},
            ),
            check_no_admitted_request_lost(admission),
        ]
    )
    lost_bytes = next(
        inv for inv in invariants if inv["invariant"] == "fleet_recoverable"
    )["detail"]["lost_bytes"]
    ok = all(inv["ok"] for inv in invariants) and lost_bytes == 0

    report = {
        "seed": seed,
        "duration_s": round(duration_s, 6),
        "topology": topology.to_dict(),
        "layout": layout.to_dict(),
        "clients": clients,
        "pooling": "aggregate",
        "prepopulated": len(catalog),
        "serve_start": round(serve_start, 6),
        "final_time": round(engine.now, 6),
        "events_issued": engine.events_issued,
        "plan": [spec.to_dict() for spec in plan],
        "fault_events": injector.log,
        "tenants": _tenant_summary(metrics, admission),
        "links": {
            site: {
                "requests": link.requests,
                "responses": link.responses,
                "drops": link.drops,
            }
            for site, link in sorted(links.items())
        },
        "store": store.health(),
        "recovery": manager.health(),
        "telemetry": _telemetry_section(central, agents, telemetry),
        "rollup": _site_rollup(store, central, telemetry),
        "slo_burn": _slo_burn(metrics, admission),
        "supervisor": (
            {"log": supervisor.log, **supervisor.health()}
            if supervisor is not None
            else None
        ),
        "remediations": len(supervisor.log) if supervisor is not None else 0,
        "flight_recorder": {
            "events": len(recorder),
            "recorded": recorder.recorded,
            "dropped": recorder.dropped,
        },
        "invariants": invariants,
        "bytes_lost": lost_bytes,
        "ok": ok,
    }
    if flight_out:
        recorder.dump(flight_out)
        report["flight_dump"] = flight_out
    return report


# ----------------------------------------------------------------------
# Report sections
# ----------------------------------------------------------------------
def _telemetry_section(
    central: CentralTelemetry, agents: list[TelemetryAgent], enabled: bool
) -> dict:
    if not enabled:
        return {"enabled": False}
    return {
        "enabled": True,
        "central": central.health(),
        "store": central.store.snapshot_stats(),
        "agents": {
            agent.agent_id: agent.health() for agent in agents
        },
    }


def _site_rollup(
    store: FleetStore, central: CentralTelemetry, enabled: bool
) -> dict:
    """Per-site health rollup as the *central store* sees the fleet —
    ground truth (`store`) and telemetry can disagree, and the gap
    (racks down vs racks merely silent) is the interesting part."""
    rollup: dict[str, dict] = {}
    for rack_id, rack in sorted(store.racks.items()):
        entry = rollup.setdefault(
            rack.site,
            {"racks": 0, "up": 0, "drained": 0, "reporting": 0,
             "reported_up": 0},
        )
        entry["racks"] += 1
        entry["up"] += 1 if rack.up else 0
        entry["drained"] += 1 if rack.drained else 0
        if not enabled:
            continue
        newest = central.store.latest(
            "fleet.rack.up", {"rack": rack_id, "site": rack.site}
        )
        if newest is None:
            continue
        entry["reporting"] += 1
        entry["reported_up"] += 1 if newest[1] >= 1.0 else 0
    return rollup


def _slo_burn(metrics: MetricsRegistry, admission: AdmissionController):
    """Per-site SLO burn rate, worst first: bad ops over total ops."""
    burns = []
    for name in sorted(admission.tenants):
        counts = {
            status: int(metrics.counter(f"serve.ops.{name}.{status}").value)
            for status in STATUSES
        }
        total = sum(counts.values())
        bad = total - counts.get("ok", 0)
        burns.append(
            {
                "site": name,
                "ops": total,
                "bad": bad,
                "burn": round(bad / total, 6) if total else 0.0,
            }
        )
    burns.sort(key=lambda entry: (-entry["burn"], entry["site"]))
    return burns


# ----------------------------------------------------------------------
def report_to_json(report: dict) -> str:
    """Canonical serialization — byte-comparable across identical runs."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def render_text(report: dict) -> str:
    """Human-readable monitored-campaign summary."""
    topo = report["topology"]
    layout = report["layout"]
    lines = [
        f"fleet-monitor report  seed={report['seed']}  "
        f"{topo['sites']}x{topo['racks_per_site']} racks  "
        f"layout {layout['k']}+{layout['m']}  "
        f"clients={report['clients']}",
        "",
        f"{'site':<10} {'racks':>5} {'up':>3} {'drained':>7} "
        f"{'reporting':>9} {'burn':>8}",
    ]
    lines.append("-" * len(lines[-1]))
    burn_by_site = {entry["site"]: entry for entry in report["slo_burn"]}
    for site, entry in sorted(report["rollup"].items()):
        burn = burn_by_site.get(site, {}).get("burn", 0.0)
        lines.append(
            f"{site:<10} {entry['racks']:>5} {entry['up']:>3} "
            f"{entry['drained']:>7} {entry['reporting']:>9} {burn:>8.4f}"
        )
    telemetry = report["telemetry"]
    if telemetry.get("enabled"):
        central = telemetry["central"]
        tsdb = telemetry["store"]
        lines.append("")
        lines.append(
            f"telemetry: {central['points_ingested']} points in "
            f"{central['batches_ingested']} batches from "
            f"{central['agents_seen']} agents; store holds "
            f"{tsdb['live_points']} points / {tsdb['series']} series "
            f"({tsdb['shards_evicted']} shards evicted)"
        )
    supervisor = report["supervisor"]
    if supervisor is not None:
        lines.append("")
        lines.append(
            f"remediation: {len(supervisor['log'])} actions "
            f"({supervisor['fired']} fired, {supervisor['refired']} "
            f"refired, {supervisor['cleared']} cleared)"
        )
        for entry in supervisor["log"][:8]:
            lines.append(
                f"  t={entry['t']:<9} {entry['rule']:<16} "
                f"{entry['action']:<16} -> {entry['target']}"
            )
        if len(supervisor["log"]) > 8:
            lines.append(f"  ... {len(supervisor['log']) - 8} more")
    store = report["store"]
    recovery = report["recovery"]
    lines.append("")
    lines.append(
        f"store: {store['racks_up']}/{store['racks']} racks up, "
        f"{store['objects']} objects, "
        f"{store['lost_shards']} shards still lost"
    )
    lines.append(
        f"recovery: {recovery['campaigns']} campaigns, "
        f"{recovery['shards_rebuilt']} shards rebuilt, "
        f"{recovery['objects_unrecoverable']} objects unrecoverable"
    )
    for inv in report["invariants"]:
        status = "PASS" if inv["ok"] else "FAIL"
        lines.append(f"invariant {inv['invariant']}: {status}")
    lines.append(
        f"bytes lost: {report['bytes_lost']}  "
        f"verdict: {'OK' if report['ok'] else 'VIOLATION'}"
    )
    return "\n".join(lines)
