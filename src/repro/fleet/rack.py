"""Coarse-grained shard racks: the fleet's unit of failure.

A :class:`ShardRack` is the TALICS³-style library model: one ROS rack
reduced to the contract the fleet layer needs — a keyed shard store
behind a shared-bandwidth lane and a fixed per-op latency.  The full
per-drive/per-roller rack (:class:`repro.olfs.filesystem.OLFS`, federated
by :class:`repro.cluster.RackCluster`) stays the model of record for
rack-internal behaviour; simulating tens of full racks per campaign
would drown the event loop in mechanics that don't change fleet-level
outcomes (placement, recovery traffic, cross-site routing).

Timing model: every shard op pays ``base_latency_s`` (index lookup +
staging, the inline-accessibility premise of the paper) and then streams
its wire bytes through the rack's processor-sharing lane, so concurrent
recovery rebuilds and client reads genuinely slow each other down.

A rack can *fail* (down, data intact — a power event) or be *destroyed*
(down, shards gone — fire, flood, the LOCKSS threat model).  Restoring a
destroyed rack models hardware replacement: it comes back empty and the
recovery manager re-homes shards onto it.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro import units
from repro.errors import RackLostError, ShardUnavailableError
from repro.sim.bandwidth import SharedBandwidth
from repro.sim.engine import Delay, Engine

#: per-shard-op fixed latency (index + staging)
DEFAULT_BASE_LATENCY_S = 0.004
#: rack lane capacity (bytes/s) — a rack's aggregate drive throughput
DEFAULT_LANE_BYTES_S = 400 * units.MB
#: logical capacity of one rack
DEFAULT_CAPACITY_BYTES = 1 * units.PB


class ShardRack:
    """One rack of the fleet: a shard store behind a bandwidth lane."""

    def __init__(
        self,
        engine: Engine,
        rack_id: str,
        site: str,
        capacity_bytes: float = DEFAULT_CAPACITY_BYTES,
        lane_bytes_s: float = DEFAULT_LANE_BYTES_S,
        base_latency_s: float = DEFAULT_BASE_LATENCY_S,
    ):
        self.engine = engine
        self.rack_id = rack_id
        self.site = site
        self.capacity_bytes = float(capacity_bytes)
        self.base_latency_s = float(base_latency_s)
        self.lane = SharedBandwidth(engine, lane_bytes_s, name=rack_id)
        #: (path, shard position) -> stored shard payload
        self.shards: dict[tuple[str, int], bytes] = {}
        #: (path, shard position) -> logical wire bytes of that shard
        self._wire: dict[tuple[str, int], float] = {}
        self.up = True
        self.destroyed = False
        #: drained racks serve reads but take no new placements — the
        #: supervisor's "reroute tenants off this rack" remediation
        self.drained = False
        #: logical (wire) bytes stored, for capacity accounting
        self.used_bytes = 0.0
        self.failures = 0
        self.destructions = 0
        # monotonic op counters: telemetry agents compute rates from
        # these instead of diffing health() dicts
        self.stores = 0
        self.store_errors = 0
        self.fetches = 0
        self.fetch_errors = 0

    # -- failure-domain state ------------------------------------------
    def fail(self, destroy: bool = False) -> int:
        """Take the rack down; ``destroy`` loses its shards.  Returns the
        number of shards destroyed (0 for a plain outage)."""
        self.up = False
        self.failures += 1
        lost = 0
        if destroy:
            self.destroyed = True
            self.destructions += 1
            lost = len(self.shards)
            self.shards.clear()
            self._wire.clear()
            self.used_bytes = 0.0
        return lost

    def restore(self) -> None:
        """Bring the rack back up.  A destroyed rack returns *empty*
        (replacement hardware); a failed one returns with data intact."""
        self.up = True
        self.destroyed = False

    # -- shard I/O -----------------------------------------------------
    def _require_up(self, verb: str, path: str) -> None:
        if not self.up:
            if verb == "store":
                self.store_errors += 1
            else:
                self.fetch_errors += 1
            raise RackLostError(
                f"{self.rack_id}: rack down, cannot {verb} {path}"
            )

    def store(
        self,
        path: str,
        position: int,
        payload: bytes,
        wire_bytes: Optional[float] = None,
    ) -> Generator:
        """Write one shard (generator).  ``wire_bytes`` is the logical
        shard size that crosses the lane; the in-simulation ``payload``
        may be capped smaller (the serve layer's 64 KiB payload cap)."""
        self._require_up("store", path)
        wire = float(wire_bytes if wire_bytes is not None else len(payload))
        yield Delay(self.base_latency_s)
        if wire > 0:
            yield from self.lane.transfer(wire)
        self._require_up("store", path)
        key = (path, position)
        previous = self._wire.pop(key, 0.0)
        self.shards[key] = payload
        self._wire[key] = wire
        self.used_bytes += wire - previous
        self.stores += 1
        return len(payload)

    def preload(
        self,
        path: str,
        position: int,
        payload: bytes,
        wire_bytes: Optional[float] = None,
    ) -> None:
        """Zero-time bootstrap write: place a shard without simulated I/O.

        Campaign setup uses this to pre-populate racks at ``t=0`` so the
        measured timeline starts with serving traffic, not a bulk-load
        prologue.  The shard is indistinguishable from one written by
        :meth:`store`."""
        wire = float(wire_bytes if wire_bytes is not None else len(payload))
        key = (path, position)
        previous = self._wire.pop(key, 0.0)
        self.shards[key] = payload
        self._wire[key] = wire
        self.used_bytes += wire - previous

    def fetch(self, path: str, position: int) -> Generator:
        """Read one shard back (generator); pays latency + lane time."""
        self._require_up("fetch", path)
        key = (path, position)
        if key not in self.shards:
            self.fetch_errors += 1
            raise ShardUnavailableError(
                f"{self.rack_id}: no shard {position} of {path}"
            )
        wire = self._wire.get(key, float(len(self.shards[key])))
        yield Delay(self.base_latency_s)
        if wire > 0:
            yield from self.lane.transfer(wire)
        self._require_up("fetch", path)
        self.fetches += 1
        return self.shards[key]

    def peek(self, path: str, position: int) -> Optional[bytes]:
        """Audit-path read: shard bytes if physically present (even on a
        down-but-intact rack), no simulated time."""
        return self.shards.get((path, position))

    def has_shard(self, path: str, position: int) -> bool:
        return (path, position) in self.shards

    def drop(self, path: str, position: int) -> None:
        """Forget one shard (placement moved it elsewhere)."""
        key = (path, position)
        if key in self.shards:
            del self.shards[key]
            self.used_bytes -= self._wire.pop(key, 0.0)

    # -- observability -------------------------------------------------
    def health(self) -> dict:
        return {
            "rack": self.rack_id,
            "site": self.site,
            "up": self.up,
            "destroyed": self.destroyed,
            "drained": self.drained,
            "shards": len(self.shards),
            "used_bytes": round(self.used_bytes, 3),
            "active_flows": self.lane.active_flows,
            # monotonic counters, alongside the gauges above
            "failures": self.failures,
            "destructions": self.destructions,
            "stores": self.stores,
            "store_errors": self.store_errors,
            "fetches": self.fetches,
            "fetch_errors": self.fetch_errors,
        }
