"""Fleet-aware serving frontend: locality routing with cross-site failover.

A :class:`FleetBackend` adapts one site's view of the
:class:`~repro.fleet.store.FleetStore` to the serve layer's backend
protocol (``execute(op)`` generator), so client pools plug into the
fleet exactly like they plug into a single rack or a
:class:`~repro.cluster.RackCluster`:

* **reads** prefer shards in the caller's site and lightly-loaded racks
  (the store's read ordering), transparently failing over to remote
  sites — with a WAN round-trip surcharge — when local racks are down;
* **writes** are erasure-coded across sites by placement, acked only
  when all ``n`` shards land;
* **stats** hit the catalog (metadata is replicated fleet-wide).

The :class:`FleetFrontend` holds one backend per site and answers
fleet-level health, which `repro.obs` rolls into monitor output.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import FleetError
from repro.fleet.store import FleetStore
from repro.sim.engine import Delay

#: catalog lookup latency for a stat (metadata is hot, SSD-resident)
STAT_LATENCY_S = 0.001


class FleetBackend:
    """One site's execution adapter over the shared fleet store."""

    def __init__(self, store: FleetStore, site: str):
        if site not in store.topology.site_names():
            raise FleetError(f"unknown site {site}")
        self.store = store
        self.site = site

    def execute(self, op) -> Generator:
        if op.kind == "write":
            declared = op.logical_size or len(op.data) or None
            yield from self.store.put(op.path, op.data, declared)
        elif op.kind == "read":
            yield from self.store.get(op.path, site=self.site)
        else:
            yield Delay(STAT_LATENCY_S)
            self.store.stat(op.path)


class FleetFrontend:
    """Per-site backends over one store, plus fleet-level health."""

    def __init__(self, store: FleetStore):
        self.store = store
        self.backends = {
            site: FleetBackend(store, site)
            for site in store.topology.site_names()
        }

    def backend(self, site: str) -> FleetBackend:
        try:
            return self.backends[site]
        except KeyError:
            raise FleetError(f"unknown site {site}") from None

    def health(self) -> dict:
        return {
            "sites": sorted(self.backends),
            "store": self.store.health(),
        }
