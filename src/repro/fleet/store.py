"""The fleet store: erasure-coded disc images over sites of racks.

``put`` cuts an image into ``k`` data shards, computes ``m`` parity
shards with the RAID-6 P/Q math from :mod:`repro.storage.raid`, and
stores all ``n = k + m`` on distinct racks chosen by rendezvous
placement with a per-site cap.  ``get`` reads back any ``k`` shards —
preferring the caller's site, then lightly-loaded racks — decodes, and
verifies the image digest, failing over across racks and sites without
the caller noticing.

The store is also the fleet's ground truth for invariant I8 ("no
durable image is unrecoverable while its surviving shards ≥ k"): every
acked ``put`` records the image's sha256, and :meth:`decode_now` is the
zero-time audit path chaos uses to prove survivors still express the
original bytes.

Payload-cap note: like the serve layer, in-simulation payloads are
capped (64 KiB) while *wire* sizes use the declared logical size —
parity math runs on real bytes, timing runs on logical bytes.
"""

from __future__ import annotations

import hashlib
from typing import Generator, Optional

import numpy as np

from repro.errors import (
    FleetError,
    ObjectUnrecoverableError,
    RackLostError,
    ShardUnavailableError,
)
from repro.fleet.placement import place, rank_racks
from repro.fleet.rack import ShardRack
from repro.fleet.topology import FleetTopology, Layout
from repro.sim.engine import AllOf, Engine, SimEvent, Spawn
from repro.storage.raid import erasure_decode, erasure_parity


class ObjectRecord:
    """Catalog entry for one stored disc image."""

    __slots__ = (
        "path", "size", "digest", "k", "m", "placement", "shard_wire",
        "pad", "acked",
    )

    def __init__(
        self,
        path: str,
        size: int,
        digest: str,
        k: int,
        m: int,
        placement: list[str],
        shard_wire: float,
        pad: int,
    ):
        self.path = path
        self.size = size            # declared logical bytes
        self.digest = digest        # sha256 of the actual payload
        self.k = k
        self.m = m
        self.placement = placement  # shard position -> rack id
        self.shard_wire = shard_wire
        self.pad = pad              # padding added to the actual payload
        self.acked = False

    @property
    def n(self) -> int:
        return self.k + self.m

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "size": self.size,
            "digest": self.digest,
            "k": self.k,
            "m": self.m,
            "placement": list(self.placement),
        }


def encode_object(data: bytes, k: int, m: int) -> tuple[list[bytes], int]:
    """Cut ``data`` into ``k`` padded data shards + ``m`` parity shards.

    Returns ``(shards, pad)`` where ``shards[i]`` is position ``i``
    (``0..k-1`` data, then P, then Q) and ``pad`` is the zero padding
    appended before splitting.
    """
    if not data:
        data = b"\0"  # zero-byte images still need one coded symbol
    shard_len = -(-len(data) // k)
    pad = shard_len * k - len(data)
    padded = data + b"\0" * pad
    arrays = [
        np.frombuffer(
            padded[i * shard_len:(i + 1) * shard_len], dtype=np.uint8
        ).copy()
        for i in range(k)
    ]
    shards = [array.tobytes() for array in arrays]
    if m:
        shards.extend(
            parity.tobytes() for parity in erasure_parity(arrays, m)
        )
    return shards, pad


def decode_object(shards: dict[int, bytes], k: int, pad: int) -> bytes:
    """Inverse of :func:`encode_object` from any ``k`` shard positions."""
    arrays = {
        position: np.frombuffer(payload, dtype=np.uint8)
        for position, payload in shards.items()
    }
    data = b"".join(
        chunk.tobytes() for chunk in erasure_decode(k, arrays)
    )
    return data[: len(data) - pad] if pad else data


def home_rack(path: str, rack_ids) -> str:
    """First-choice rack for ``path`` by rendezvous rank.

    The single-shard analogue of :func:`~repro.fleet.placement.place`:
    where the erasure-coded store spreads ``n`` shards over the top-``n``
    racks, whole-object routing (the XL serving campaign, cache homing)
    sends the object to the rank-1 rack.  Pure function of the rack set
    and the path — every shard layout computes the same home, which is
    what keeps the sharded event loop's cross-rack routing byte-stable.
    """
    return rank_racks(rack_ids, path)[0]


def shard_layout(rack_ids, shards: int) -> dict[str, int]:
    """Deterministic rack -> event-loop-shard assignment.

    Round-robin over the racks **in the order given** (callers pass a
    stable order, typically sorted ids), matching the pinning rule of
    :class:`~repro.sim.shard.ShardedEngine` so routing tables computed
    here agree with where the engine actually runs each rack's
    processes.  ``shards`` is clamped to the rack count.
    """
    rack_ids = list(rack_ids)
    if shards < 1:
        raise FleetError(f"need at least one shard, got {shards}")
    width = min(int(shards), len(rack_ids))
    return {rack: index % width for index, rack in enumerate(rack_ids)}


class FleetStore:
    """Placement, durability and failure-domain state of the fleet."""

    def __init__(
        self,
        engine: Engine,
        topology: Optional[FleetTopology] = None,
        layout: Optional[Layout] = None,
        wan_rtt_s: float = 0.06,
        **rack_kwargs,
    ):
        self.engine = engine
        self.topology = topology or FleetTopology()
        self.layout = layout or Layout()
        self.topology.validate_layout(self.layout)
        self.site_cap = self.topology.effective_site_cap(self.layout)
        self.wan_rtt_s = float(wan_rtt_s)
        self.racks: dict[str, ShardRack] = {
            rack_id: ShardRack(engine, rack_id, site, **rack_kwargs)
            for rack_id, site in self.topology.rack_sites().items()
        }
        self.catalog: dict[str, ObjectRecord] = {}
        self._loss_event: SimEvent = engine.event("fleet.loss")
        self.stats = {
            "puts": 0,
            "gets": 0,
            "remote_gets": 0,
            "failovers": 0,
            "shards_destroyed": 0,
            "drains": 0,
            "undrains": 0,
        }

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------
    def _serving_racks(self) -> dict[str, str]:
        """Racks a new shard may land on (up, not drained, in rack-id
        order).  A drained rack still serves the shards it holds."""
        return {
            rack_id: rack.site
            for rack_id, rack in sorted(self.racks.items())
            if rack.up and not rack.drained
        }

    def set_drained(self, rack_id: str, drained: bool = True) -> bool:
        """Drain (or undrain) one rack: excluded from new placements and
        rebuild targets, deprioritized on reads.  The supervisor's
        "reroute tenants off the rack" remediation.  Returns True if
        the flag actually changed."""
        if rack_id not in self.racks:
            raise FleetError(f"unknown rack {rack_id}")
        rack = self.racks[rack_id]
        if rack.drained == drained:
            return False
        rack.drained = drained
        self.stats["drains" if drained else "undrains"] += 1
        return True

    def placement_for(self, path: str) -> list[str]:
        candidates = self._serving_racks()
        if len(candidates) < self.layout.n:
            raise FleetError(
                f"only {len(candidates)} racks up, need {self.layout.n}"
            )
        return place(path, candidates, self.layout.n, self.site_cap)

    # ------------------------------------------------------------------
    # Data path (generators — run inside the engine)
    # ------------------------------------------------------------------
    def put(
        self, path: str, data: bytes, declared_size: Optional[int] = None
    ) -> Generator:
        """Store one image durably; acks only once all ``n`` shards land."""
        declared = int(declared_size if declared_size else len(data)) or 1
        shards, pad = encode_object(data, self.layout.k, self.layout.m)
        placement = self.placement_for(path)
        record = ObjectRecord(
            path=path,
            size=declared,
            digest=hashlib.sha256(data).hexdigest(),
            k=self.layout.k,
            m=self.layout.m,
            placement=placement,
            shard_wire=declared / self.layout.k,
            pad=pad,
        )
        workers = []
        for position, rack_id in enumerate(placement):
            workers.append((
                yield Spawn(
                    self.racks[rack_id].store(
                        path, position, shards[position],
                        wire_bytes=record.shard_wire,
                    ),
                    name=f"put-{rack_id}",
                )
            ))
        yield AllOf(workers)
        self.catalog[path] = record
        record.acked = True
        self.stats["puts"] += 1
        return declared

    def _read_order(
        self, record: ObjectRecord, site: Optional[str]
    ) -> list[int]:
        """Shard positions by preference: available first, local site,
        undrained before drained, then lighter lanes, then stable rack
        order."""
        candidates = []
        for position, rack_id in enumerate(record.placement):
            rack = self.racks[rack_id]
            if not rack.up or not rack.has_shard(record.path, position):
                continue
            remote = 1 if (site is not None and rack.site != site) else 0
            candidates.append(
                (remote, 1 if rack.drained else 0,
                 rack.lane.active_flows, rack_id, position)
            )
        candidates.sort()
        return [position for *_rank, position in candidates]

    def get(self, path: str, site: Optional[str] = None) -> Generator:
        """Read one image back from any ``k`` shards, verifying bytes."""
        record = self.catalog.get(path)
        if record is None:
            raise FleetError(f"unknown object {path}")
        order = self._read_order(record, site)
        if len(order) < record.k:
            raise ObjectUnrecoverableError(
                f"{path}: {len(order)} shards reachable, need {record.k}"
            )
        chosen = order[: record.k]
        remote = any(
            self.racks[record.placement[position]].site != site
            for position in chosen
        ) if site is not None else False
        if remote:
            self.stats["remote_gets"] += 1
            yield from self._wan_hop()
        fetched: dict[int, bytes] = {}

        def fetch_one(position: int) -> Generator:
            rack = self.racks[record.placement[position]]
            payload = yield from rack.fetch(path, position)
            fetched[position] = payload

        workers = []
        for position in chosen:
            workers.append(
                (yield Spawn(fetch_one(position), name=f"get-{position}"))
            )
        try:
            yield AllOf(workers)
        except (RackLostError, ShardUnavailableError):
            pass  # a rack died mid-read; fail over to the survivors below
        missing = [p for p in chosen if p not in fetched]
        if missing:
            self.stats["failovers"] += 1
            retry = [
                position
                for position in self._read_order(record, site)
                if position not in fetched
            ]
            for position in retry:
                if len(fetched) >= record.k:
                    break
                try:
                    payload = yield from self.racks[
                        record.placement[position]
                    ].fetch(path, position)
                except (RackLostError, ShardUnavailableError):
                    continue
                fetched[position] = payload
            if len(fetched) < record.k:
                raise ObjectUnrecoverableError(
                    f"{path}: {len(fetched)} shards fetched, need {record.k}"
                )
        data = decode_object(fetched, record.k, record.pad)
        if hashlib.sha256(data).hexdigest() != record.digest:
            raise FleetError(f"{path}: decoded bytes do not match digest")
        self.stats["gets"] += 1
        return data

    def _wan_hop(self) -> Generator:
        from repro.sim.engine import Delay

        yield Delay(self.wan_rtt_s)

    def stat(self, path: str) -> dict:
        record = self.catalog.get(path)
        if record is None:
            raise FleetError(f"unknown object {path}")
        return record.to_dict()

    # ------------------------------------------------------------------
    # Failure-domain events
    # ------------------------------------------------------------------
    def fail_rack(self, rack_id: str, destroy: bool = False) -> int:
        if rack_id not in self.racks:
            raise FleetError(f"unknown rack {rack_id}")
        lost = self.racks[rack_id].fail(destroy=destroy)
        self.stats["shards_destroyed"] += lost
        if destroy:
            self.signal_loss()
        return lost

    def fail_site(self, site: str, destroy: bool = False) -> int:
        racks = [r for r in self.racks.values() if r.site == site]
        if not racks:
            raise FleetError(f"unknown site {site}")
        lost = 0
        for rack in sorted(racks, key=lambda r: r.rack_id):
            lost += rack.fail(destroy=destroy)
        self.stats["shards_destroyed"] += lost
        if destroy:
            self.signal_loss()
        return lost

    def restore_rack(self, rack_id: str) -> None:
        self.racks[rack_id].restore()
        # A restore changes what the recovery manager can rebuild
        # (fresh target racks, reachable survivors): wake it.
        self.signal_loss()

    def restore_site(self, site: str) -> None:
        for rack in self.racks.values():
            if rack.site == site:
                rack.restore()
        self.signal_loss()

    @property
    def loss_event(self) -> SimEvent:
        """The event the recovery manager waits on; re-armed per fire.

        Fired on every fleet shape change — destruction *and* restore —
        plus the manager's own ``stop()``."""
        return self._loss_event

    def signal_loss(self) -> None:
        event = self._loss_event
        self._loss_event = self.engine.event("fleet.loss")
        event.succeed(None)

    # ------------------------------------------------------------------
    # Audit paths (no simulated time)
    # ------------------------------------------------------------------
    def surviving_shards(self, path: str) -> list[int]:
        """Positions whose shard bytes physically survive (rack may be
        down — data outlives an outage, not a destruction)."""
        record = self.catalog[path]
        return [
            position
            for position, rack_id in enumerate(record.placement)
            if self.racks[rack_id].peek(path, position) is not None
        ]

    def lost_shards(self) -> list[tuple[str, int]]:
        """(path, position) pairs whose shard bytes no longer exist."""
        lost = []
        for path in sorted(self.catalog):
            record = self.catalog[path]
            for position, rack_id in enumerate(record.placement):
                if self.racks[rack_id].peek(path, position) is None:
                    lost.append((path, position))
        return lost

    def recoverable(self, path: str) -> bool:
        return len(self.surviving_shards(path)) >= self.catalog[path].k

    def decode_now(self, path: str) -> bytes:
        """Audit decode from surviving shards, zero simulated time."""
        record = self.catalog[path]
        survivors = self.surviving_shards(path)
        if len(survivors) < record.k:
            raise ObjectUnrecoverableError(
                f"{path}: {len(survivors)} shards survive, need {record.k}"
            )
        shards = {
            position: self.racks[record.placement[position]].peek(
                path, position
            )
            for position in survivors[: record.k + record.m]
        }
        data = decode_object(shards, record.k, record.pad)
        if hashlib.sha256(data).hexdigest() != record.digest:
            raise FleetError(f"{path}: decoded bytes do not match digest")
        return data

    # ------------------------------------------------------------------
    # Recovery support
    # ------------------------------------------------------------------
    def rebuild_target(self, record: ObjectRecord, position: int) -> str:
        """New home for a lost shard: best-ranked up rack not already in
        the placement, preferring racks that keep the site cap intact."""
        occupied = {
            record.placement[p]
            for p in range(record.n)
            if p != position
        }
        per_site: dict[str, int] = {}
        for p, rack_id in enumerate(record.placement):
            if p == position:
                continue
            if self.racks[rack_id].peek(record.path, p) is not None:
                site = self.racks[rack_id].site
                per_site[site] = per_site.get(site, 0) + 1
        candidates = [
            rack_id
            for rack_id, rack in sorted(self.racks.items())
            if rack.up and not rack.drained and rack_id not in occupied
        ]
        if not candidates:
            raise FleetError("no rack available for rebuild")
        ranked = rank_racks(candidates, record.path)
        for rack_id in ranked:
            site = self.racks[rack_id].site
            if per_site.get(site, 0) < self.site_cap:
                return rack_id
        return ranked[0]  # every surviving site is at cap: relax it

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def health(self) -> dict:
        racks_up = sum(1 for rack in self.racks.values() if rack.up)
        per_site: dict[str, dict] = {}
        for rack in self.racks.values():
            entry = per_site.setdefault(
                rack.site, {"racks": 0, "up": 0, "shards": 0}
            )
            entry["racks"] += 1
            entry["up"] += 1 if rack.up else 0
            entry["shards"] += len(rack.shards)
        at_risk = sum(
            0 if self.recoverable(path) else 1 for path in self.catalog
        )
        return {
            "racks": len(self.racks),
            "racks_up": racks_up,
            "sites": dict(sorted(per_site.items())),
            "objects": len(self.catalog),
            "objects_unrecoverable": at_risk,
            "lost_shards": len(self.lost_shards()),
            "stats": dict(self.stats),
        }
