"""Closed-loop fleet remediation: trigger rules over central telemetry.

LOCKSS' lesson (PAPERS.md) is that long-term preservation must detect
*and repair* degradation autonomously.  The :class:`FleetSupervisor` is
that loop: a background process that evaluates declarative
:class:`TriggerRule`\\ s against the central
:class:`~repro.tsdb.TimeSeriesStore` every period and invokes named
remediation actions — drain a sick rack out of placement, kick a
rebuild migration, raise a scrub budget — with hysteresis and
per-(rule, target) cooldowns so a noisy series cannot flap an action.

Rule semantics:

* ``mode="latest"`` compares the newest point's value;
* ``mode="rate"`` compares the per-second increase of a monotonic
  counter over ``window_s`` (no rate — fewer than two points — never
  fires);
* ``mode="stale"`` compares the age of the newest point against the
  clock — how the fleet notices an agent that died with its rack.

A breach fires the rule's action once and latches it; while latched it
may re-fire only after ``cooldown_s`` (a rebuild that made no progress
gets kicked again, not spammed).  The rule unlatches when the value
crosses the ``clear`` level — hysteresis, ``clear`` strictly inside
the threshold — optionally firing ``clear_action`` (e.g. undrain).

Every action is journaled to the flight recorder under the dedicated
``supervisor.action`` / ``supervisor.clear`` event kinds and appended
to the deterministic remediation ``log`` campaign reports embed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.sim.engine import Delay, Engine
from repro.tsdb import TimeSeriesStore

#: flight-recorder event kinds for supervisor journaling
KIND_ACTION = "supervisor.action"
KIND_CLEAR = "supervisor.clear"


@dataclass(frozen=True)
class TriggerRule:
    """One declarative remediation trigger."""

    name: str
    series: str                      # metric name in the central store
    action: str                      # action fired on breach
    threshold: float
    mode: str = "latest"             # "latest" | "rate" | "stale"
    direction: str = "above"         # breach when value is above/below
    clear: Optional[float] = None    # hysteresis level (default: threshold)
    clear_action: Optional[str] = None
    window_s: float = 5.0            # rate window
    cooldown_s: float = 2.0          # min gap between re-fires while latched
    target_label: str = "rack"       # label naming the remediation target

    def __post_init__(self):
        if self.mode not in ("latest", "rate", "stale"):
            raise ValueError(f"{self.name}: unknown mode {self.mode!r}")
        if self.direction not in ("above", "below"):
            raise ValueError(
                f"{self.name}: unknown direction {self.direction!r}"
            )
        if self.clear is not None:
            if self.direction == "above" and self.clear > self.threshold:
                raise ValueError(f"{self.name}: clear above threshold")
            if self.direction == "below" and self.clear < self.threshold:
                raise ValueError(f"{self.name}: clear below threshold")

    @property
    def clear_level(self) -> float:
        return self.threshold if self.clear is None else self.clear

    def breached(self, value: float) -> bool:
        if self.direction == "above":
            return value > self.threshold
        return value < self.threshold

    def cleared(self, value: float) -> bool:
        if self.direction == "above":
            return value <= self.clear_level
        return value >= self.clear_level


#: an action takes the target id and returns a JSON-safe detail dict
Action = Callable[[str], dict]


class FleetSupervisor:
    """Evaluates trigger rules and fires remediation actions."""

    def __init__(
        self,
        engine: Engine,
        store: TimeSeriesStore,
        rules: list[TriggerRule],
        actions: dict[str, Action],
        eval_period_s: float = 1.0,
        horizon_s: Optional[float] = None,
    ):
        for rule in rules:
            if rule.action not in actions:
                raise ValueError(
                    f"rule {rule.name}: unknown action {rule.action!r}"
                )
            if rule.clear_action is not None and (
                rule.clear_action not in actions
            ):
                raise ValueError(
                    f"rule {rule.name}: unknown clear action "
                    f"{rule.clear_action!r}"
                )
        self.engine = engine
        self.store = store
        self.rules = list(rules)
        self.actions = dict(actions)
        self.eval_period_s = float(eval_period_s)
        self.horizon_s = horizon_s
        self._stopped = False
        self._process = None
        #: (rule name, target) -> {"latched": bool, "last_fire_t": float}
        self._state: dict[tuple[str, str], dict] = {}
        #: deterministic remediation journal campaign reports embed
        self.log: list[dict] = []
        self.stats = {
            "evaluations": 0,
            "fired": 0,
            "refired": 0,
            "cleared": 0,
            "suppressed_cooldown": 0,
        }

    # ------------------------------------------------------------------
    def start(self) -> "FleetSupervisor":
        if self._process is None or self._process.done:
            self._process = self.engine.spawn(
                self._run(), name="fleet-supervisor"
            )
        return self

    def stop(self) -> None:
        self._stopped = True

    def _run(self) -> Generator:
        deadline = (
            self.engine.now + self.horizon_s
            if self.horizon_s is not None
            else None
        )
        while not self._stopped:
            yield Delay(self.eval_period_s)
            if self._stopped:
                return
            if deadline is not None and self.engine.now > deadline:
                return
            self.evaluate()

    # ------------------------------------------------------------------
    def evaluate(self) -> int:
        """One pass over every rule x matching series; returns fires."""
        now = self.engine.now
        self.stats["evaluations"] += 1
        fired = 0
        for rule in self.rules:
            for series in self.store.select(rule.series):
                labels = series.labels_dict()
                target = labels.get(
                    rule.target_label, ",".join(v for _k, v in series.labels)
                )
                value = self._value(rule, series, now)
                if value is None:
                    continue
                fired += self._apply(rule, target, value, now)
        return fired

    def _value(self, rule: TriggerRule, series, now: float):
        newest = series.latest()
        if newest is None:
            return None
        if rule.mode == "latest":
            return newest[1]
        if rule.mode == "stale":
            return now - newest[0]
        return self.store.rate(
            series.name,
            series.labels_dict(),
            window_s=rule.window_s,
            now=now,
        )

    def _apply(
        self, rule: TriggerRule, target: str, value: float, now: float
    ) -> int:
        state = self._state.setdefault(
            (rule.name, target), {"latched": False, "last_fire_t": None}
        )
        if rule.breached(value):
            if state["latched"]:
                since = now - state["last_fire_t"]
                if since < rule.cooldown_s:
                    self.stats["suppressed_cooldown"] += 1
                    return 0
                self.stats["refired"] += 1
            else:
                self.stats["fired"] += 1
            state["latched"] = True
            state["last_fire_t"] = now
            self._fire(rule, rule.action, target, value, now, KIND_ACTION)
            return 1
        if state["latched"] and rule.cleared(value):
            state["latched"] = False
            self.stats["cleared"] += 1
            if rule.clear_action is not None:
                self._fire(
                    rule, rule.clear_action, target, value, now, KIND_CLEAR
                )
            else:
                self.engine.recorder.record(
                    KIND_CLEAR,
                    rule=rule.name,
                    target=target,
                    value=round(value, 6),
                )
        return 0

    def _fire(
        self,
        rule: TriggerRule,
        action_name: str,
        target: str,
        value: float,
        now: float,
        kind: str,
    ) -> None:
        detail = self.actions[action_name](target) or {}
        entry = {
            "t": round(now, 6),
            "rule": rule.name,
            "action": action_name,
            "target": target,
            "value": round(value, 6),
            "detail": detail,
        }
        self.log.append(entry)
        self.engine.recorder.record(
            kind,
            rule=rule.name,
            action=action_name,
            target=target,
            value=round(value, 6),
        )

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return {
            "rules": len(self.rules),
            "actions_logged": len(self.log),
            "latched": sorted(
                f"{rule_name}:{target}"
                for (rule_name, target), state in self._state.items()
                if state["latched"]
            ),
            **{key: int(val) for key, val in sorted(self.stats.items())},
        }
