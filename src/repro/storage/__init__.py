"""Disk tier: block devices, RAID arrays and volumes.

ROS fronts the optical library with SSDs and HDDs (§3.3): a RAID-1 SSD pair
for the metadata volume and RAID-5 HDD sets for the write buffer / read
cache.  Devices model throughput (processor-sharing), per-request latency,
capacity and failure; RAID implements real striping and parity so
reconstruction is exercised with actual bytes.
"""

from repro.storage.block import BlockDevice
from repro.storage.devices import make_hdd, make_ssd
from repro.storage.raid import RAID0, RAID1, RAID5, RAID6, RAIDArray
from repro.storage.volume import Volume
from repro.storage.scheduler import IOStreamScheduler, StreamKind

__all__ = [
    "BlockDevice",
    "IOStreamScheduler",
    "RAID0",
    "RAID1",
    "RAID5",
    "RAID6",
    "RAIDArray",
    "StreamKind",
    "Volume",
    "make_hdd",
    "make_ssd",
]
