"""Factory functions for the prototype's disk models (§5.1).

The ROS prototype uses fourteen 4 TB HDDs ("almost 150 MB/s" sequential,
§3.3) and two 240 GB SSDs for the metadata volume.
"""

from __future__ import annotations

from repro import units
from repro.sim.engine import Engine
from repro.storage.block import BlockDevice

HDD_THROUGHPUT = 150 * units.MB
HDD_LATENCY = 0.008  # seek + rotational average
HDD_CAPACITY = 4 * units.TB

SSD_THROUGHPUT = 500 * units.MB
SSD_LATENCY = 0.0001
SSD_CAPACITY = 240 * units.GB


def make_hdd(engine: Engine, name: str, capacity: int = HDD_CAPACITY) -> BlockDevice:
    """A 4 TB 7200rpm-class HDD (150 MB/s, ~8 ms access)."""
    return BlockDevice(engine, name, capacity, HDD_THROUGHPUT, HDD_LATENCY)


def make_ssd(engine: Engine, name: str, capacity: int = SSD_CAPACITY) -> BlockDevice:
    """A 240 GB SATA SSD (500 MB/s, ~0.1 ms access)."""
    return BlockDevice(engine, name, capacity, SSD_THROUGHPUT, SSD_LATENCY)
