"""GF(2^8) arithmetic for RAID-6 Q parity (Reed-Solomon style).

Standard field with the AES-adjacent polynomial 0x11d and generator 2,
vectorized over numpy byte arrays so Q-parity over 64 KiB chunks is cheap.
"""

from __future__ import annotations

import numpy as np

_POLY = 0x11D

_EXP = np.zeros(512, dtype=np.uint8)
_LOG = np.zeros(256, dtype=np.int32)


def _build_tables() -> None:
    value = 1
    for power in range(255):
        _EXP[power] = value
        _LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _POLY
    for power in range(255, 512):
        _EXP[power] = _EXP[power - 255]


_build_tables()


def gf_mul_bytes(data: np.ndarray, coefficient: int) -> np.ndarray:
    """Multiply every byte of ``data`` by ``coefficient`` in GF(256)."""
    if coefficient == 0:
        return np.zeros_like(data)
    if coefficient == 1:
        return data.copy()
    log_c = _LOG[coefficient]
    result = np.zeros_like(data)
    nonzero = data != 0
    result[nonzero] = _EXP[_LOG[data[nonzero]] + log_c]
    return result


def gf_mul(a: int, b: int) -> int:
    """Scalar GF(256) multiply."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[_LOG[a] + _LOG[b]])


def gf_div(a: int, b: int) -> int:
    """Scalar GF(256) divide (b != 0)."""
    if b == 0:
        raise ZeroDivisionError("GF(256) division by zero")
    if a == 0:
        return 0
    return int(_EXP[(_LOG[a] - _LOG[b]) % 255])


def gf_pow(base: int, exponent: int) -> int:
    """Scalar GF(256) power."""
    if base == 0:
        return 0 if exponent else 1
    return int(_EXP[(_LOG[base] * exponent) % 255])


def generator_coefficient(index: int) -> int:
    """RAID-6 coefficient for data position ``index``: g^index with g=2."""
    return gf_pow(2, index)
