"""Volumes: the timing facade OLFS charges its disk I/O against.

A volume sits on a RAID array (or a single device) and exposes stream-level
transfers with processor-sharing contention — the §4.7 effect: user writes,
parity generation reads/writes and burn staging reads all interfere when
scheduled onto one volume.

Content stays in higher layers (buckets, images, index files); the volume
tracks capacity usage and charges time.  RAID content operations remain
available through ``volume.array`` for the reconstruction paths.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import NoSpaceOLFSError, StorageError
from repro.sim.bandwidth import SharedBandwidth
from repro.sim.engine import Delay, Engine
from repro.storage.raid import RAIDArray


class Volume:
    """A named, capacity-tracked bandwidth domain over a RAID array."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        array: Optional[RAIDArray] = None,
        read_throughput: Optional[float] = None,
        write_throughput: Optional[float] = None,
        capacity: Optional[int] = None,
        access_latency: Optional[float] = None,
    ):
        if array is None and (
            read_throughput is None
            or write_throughput is None
            or capacity is None
        ):
            raise StorageError(
                "volume needs an array or explicit throughput + capacity"
            )
        self.engine = engine
        self.name = name
        self.array = array
        reads = read_throughput or array.aggregate_read_throughput()
        writes = write_throughput or array.aggregate_write_throughput()
        self.capacity = int(
            capacity if capacity is not None else array.data_capacity
        )
        if access_latency is None:
            access_latency = (
                max(d.access_latency for d in array.devices) if array else 0.001
            )
        self.access_latency = access_latency
        # One shared pipe per direction; mixed read/write streams on the
        # same spindles contend, modelled by a combined pipe sized at the
        # larger direction (reads and writes share heads in practice).
        self._pipe = SharedBandwidth(
            engine, max(reads, writes), name=f"{name}-pipe"
        )
        self._read_scale = max(reads, writes) / reads
        self._write_scale = max(reads, writes) / writes
        self.used = 0
        self.read_bytes_total = 0.0
        self.write_bytes_total = 0.0
        #: optional pressure valve: callable(bytes_needed) that frees
        #: space (e.g. the read cache evicting burned images) before an
        #: allocation is refused
        self.reclaimer = None

    @property
    def free(self) -> int:
        return self.capacity - self.used

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    def allocate(self, nbytes: int) -> None:
        if nbytes > self.free and self.reclaimer is not None:
            self.reclaimer(nbytes - self.free)
        if nbytes > self.free:
            raise NoSpaceOLFSError(
                f"volume {self.name}: {nbytes} bytes requested, "
                f"{self.free} free"
            )
        self.used += int(nbytes)

    def release(self, nbytes: int) -> None:
        if nbytes > self.used:
            raise StorageError(f"volume {self.name}: over-release")
        self.used -= int(nbytes)

    # ------------------------------------------------------------------
    # Timed transfers
    # ------------------------------------------------------------------
    def read(self, nbytes: float, weight: float = 1.0) -> Generator:
        """Charge a read of ``nbytes`` (shares bandwidth with all streams)."""
        if nbytes < 0:
            raise StorageError("negative read")
        self.read_bytes_total += nbytes
        yield Delay(self.access_latency)
        yield from self._pipe.transfer(
            nbytes * self._read_scale, weight=weight
        )

    def write(self, nbytes: float, weight: float = 1.0) -> Generator:
        """Charge a write of ``nbytes`` (shares bandwidth with all streams)."""
        if nbytes < 0:
            raise StorageError("negative write")
        self.write_bytes_total += nbytes
        yield Delay(self.access_latency)
        yield from self._pipe.transfer(
            nbytes * self._write_scale, weight=weight
        )

    def effective_read_rate(self) -> float:
        """Uncontended sequential read throughput, bytes/s."""
        return self._pipe.capacity / self._read_scale

    def effective_write_rate(self) -> float:
        """Uncontended sequential write throughput, bytes/s."""
        return self._pipe.capacity / self._write_scale

    @property
    def active_streams(self) -> int:
        return self._pipe.active_flows

    def __repr__(self) -> str:
        return f"<Volume {self.name} used={self.used}/{self.capacity}>"
