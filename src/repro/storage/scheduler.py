"""I/O-stream-to-volume scheduling (§4.7).

Four intensive stream kinds coexist in ROS: user writes landing in buckets,
parity-maker reads, parity-maker writes, and burn staging reads.  On a
single volume they interfere (processor sharing); ROS therefore configures
multiple independent RAID volumes and schedules the streams apart.  The
:class:`IOStreamScheduler` implements both policies so the ablation bench
can quantify the difference.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterable

from repro.errors import StorageError
from repro.storage.volume import Volume


class StreamKind(enum.Enum):
    USER_WRITE = "user-write"
    PARITY_READ = "parity-read"
    PARITY_WRITE = "parity-write"
    BURN_READ = "burn-read"
    USER_READ = "user-read"


class IOStreamScheduler:
    """Maps stream kinds onto buffer volumes.

    ``policy='partitioned'`` pins each kind to its own volume (round-robin
    when kinds outnumber volumes, pairing the two parity streams last);
    ``policy='shared'`` sends everything to the first volume — the baseline
    that §4.7 warns about.
    """

    POLICIES = ("partitioned", "shared")

    def __init__(self, volumes: list[Volume], policy: str = "partitioned"):
        if not volumes:
            raise StorageError("scheduler needs at least one volume")
        if policy not in self.POLICIES:
            raise StorageError(f"unknown policy {policy!r}")
        self.volumes = list(volumes)
        self.policy = policy
        #: optional MetricsRegistry; OLFS wires its own in
        self.metrics = None
        self._assignment: dict[StreamKind, Volume] = {}
        self._build_assignment()

    def _build_assignment(self) -> None:
        if self.policy == "shared":
            for kind in StreamKind:
                self._assignment[kind] = self.volumes[0]
            return
        # Partitioned: keep writer streams and reader streams apart first.
        preference = [
            StreamKind.USER_WRITE,
            StreamKind.BURN_READ,
            StreamKind.PARITY_READ,
            StreamKind.PARITY_WRITE,
            StreamKind.USER_READ,
        ]
        cycle = itertools.cycle(range(len(self.volumes)))
        for kind in preference:
            self._assignment[kind] = self.volumes[next(cycle)]

    def volume_for(self, kind: StreamKind) -> Volume:
        if self.metrics is not None:
            self.metrics.counter(f"scheduler.requests.{kind.value}").inc()
        return self._assignment[kind]

    def assignment(self) -> dict[StreamKind, str]:
        """Human-readable mapping for reports."""
        return {kind: vol.name for kind, vol in self._assignment.items()}

    def health(self) -> dict:
        """Cheap read-only snapshot for the system monitor."""
        return {
            "policy": self.policy,
            "assignment": {
                kind.value: volume.name
                for kind, volume in sorted(
                    self._assignment.items(), key=lambda item: item[0].value
                )
            },
            "volumes": [
                {
                    "name": volume.name,
                    "used": volume.used,
                    "capacity": volume.capacity,
                    "read_bytes_total": round(volume.read_bytes_total, 3),
                    "write_bytes_total": round(volume.write_bytes_total, 3),
                }
                for volume in self.volumes
            ],
        }

    def distinct_volumes(self) -> Iterable[Volume]:
        seen = []
        for volume in self._assignment.values():
            if volume not in seen:
                seen.append(volume)
        return seen
