"""Block devices: content-addressable chunk store + timing model.

A :class:`BlockDevice` does two independent jobs:

* **Timing** — transfers go through a processor-sharing
  :class:`~repro.sim.bandwidth.SharedBandwidth` plus a per-request access
  latency, so concurrent streams on one spindle slow each other down.
* **Content** — chunks of real bytes keyed by chunk index, so RAID parity
  and reconstruction operate on actual data.

Content operations are optional: the OLFS data path charges timing against
volumes while holding file content in higher-level structures; RAID
correctness tests exercise the chunk store directly.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import DeviceFailedError, StorageError
from repro.sim.bandwidth import SharedBandwidth
from repro.sim.engine import Delay, Engine

#: Chunk granularity for the content store (also the RAID stripe unit).
CHUNK_SIZE = 64 * 1024


class BlockDevice:
    """One disk (HDD or SSD): capacity, bandwidth, latency, chunk store."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        capacity: int,
        throughput: float,
        access_latency: float,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.engine = engine
        self.name = name
        self.capacity = int(capacity)
        self.throughput = float(throughput)
        self.access_latency = float(access_latency)
        self.bandwidth = SharedBandwidth(engine, throughput, name=name)
        self.failed = False
        self._chunks: dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Simulate device death; contents become unreachable."""
        self.failed = True

    def replace(self) -> None:
        """Swap in a fresh blank device of the same geometry."""
        self.failed = False
        self._chunks.clear()

    def _check(self) -> None:
        if self.failed:
            raise DeviceFailedError(f"device {self.name} has failed")

    # ------------------------------------------------------------------
    # Timing-only transfers (used by the volume layer)
    # ------------------------------------------------------------------
    def transfer(self, nbytes: float, is_write: bool = False) -> Generator:
        """Charge latency + bandwidth for moving ``nbytes``."""
        self._check()
        if nbytes < 0:
            raise StorageError(f"negative transfer: {nbytes}")
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        yield Delay(self.access_latency)
        yield from self.bandwidth.transfer(nbytes)

    # ------------------------------------------------------------------
    # Content operations (used by RAID)
    # ------------------------------------------------------------------
    def write_chunk(self, index: int, data: bytes) -> Generator:
        """Store one chunk (timed)."""
        self._check()
        if len(data) > CHUNK_SIZE:
            raise StorageError(
                f"chunk of {len(data)} bytes exceeds {CHUNK_SIZE}"
            )
        if (index + 1) * CHUNK_SIZE > self.capacity:
            raise StorageError(
                f"chunk {index} beyond device capacity {self.capacity}"
            )
        yield from self.transfer(len(data), is_write=True)
        self._chunks[index] = bytes(data)

    def read_chunk(self, index: int) -> Generator:
        """Fetch one chunk (timed); missing chunks read as zeros."""
        self._check()
        data = self._chunks.get(index, b"\x00" * CHUNK_SIZE)
        yield from self.transfer(len(data), is_write=False)
        return data

    def peek_chunk(self, index: int) -> Optional[bytes]:
        """Untimed content inspection (for tests/recovery tooling)."""
        self._check()
        return self._chunks.get(index)

    @property
    def stored_chunks(self) -> int:
        return len(self._chunks)

    def __repr__(self) -> str:
        state = "FAILED" if self.failed else "ok"
        return f"<BlockDevice {self.name} {state} {self.stored_chunks} chunks>"
